"""Focused sweep on contested panels."""
import itertools, sys
import repro.apps.analytics as an
from repro.apps.suite import workflow_suite, suite_entry
from repro.core.autotune import ExhaustiveTuner
from repro.pmem.calibration import OptaneCalibration

PANELS = [("micro-2k",8),("micro-2k",16),("gtc+readonly",8),("gtc+readonly",16),
          ("gtc+matmult",16),("gtc+matmult",24),
          ("miniamr+readonly",8),("miniamr+readonly",16),("miniamr+readonly",24),
          ("miniamr+matmult",8),("miniamr+matmult",16),("miniamr+matmult",24)]

import repro.workflow.kernels as K
from repro.apps.miniamr import miniamr_workflow, MINIAMR_OBJECTS_PER_RANK
from repro.apps.analytics import read_only_kernel, gtc_matrixmult_kernel
from repro.apps.gtc import gtc_workflow
from repro.apps.microbench import micro_workflow, SMALL_OBJECT_BYTES

def build(family, ranks, mm_dim):
    if family == "micro-2k":
        return micro_workflow(SMALL_OBJECT_BYTES, ranks)
    if family == "gtc+readonly":
        return gtc_workflow(read_only_kernel(), ranks=ranks)
    if family == "gtc+matmult":
        return gtc_workflow(gtc_matrixmult_kernel(), ranks=ranks)
    if family == "miniamr+readonly":
        return miniamr_workflow(read_only_kernel(), ranks=ranks)
    if family == "miniamr+matmult":
        k = K.PerObjectKernel(objects=MINIAMR_OBJECTS_PER_RANK,
                              seconds_per_object=5*2.0*mm_dim**3/4.0e9)
        return miniamr_workflow(k, ranks=ranks)

from repro.apps.suite import PAPER_EXPECTATIONS

for gw, pw, dim in itertools.product((1.2, 1.6, 2.0), (0.2, 0.3), (13, 16)):
    cal = OptaneCalibration().replace(mix_gamma_write=gw, poll_interference_weight=pw)
    tuner = ExhaustiveTuner(cal=cal)
    hits = 0; misses = []
    for fam, ranks in PANELS:
        spec = build(fam, ranks, dim)
        rep = tuner.tune(spec)
        win = rep.comparison.best_label
        want = PAPER_EXPECTATIONS[(fam, ranks)][0]
        if win == want: hits += 1
        else: misses.append(f"{fam}@{ranks}:{win}!={want}")
    print(f"gw={gw} pw={pw} dim={dim}: {hits}/{len(PANELS)}  misses: {', '.join(misses)}")
