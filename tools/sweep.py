"""Calibration grid sweeps over the contested suite panels.

Consolidates the old ``sweep.py`` / ``sweep2.py`` ad-hoc scripts into one
argparse CLI driven by the campaign runner (:mod:`repro.obs.campaign`), so
every sweep point is a real campaign cell: same workflow construction
(:func:`repro.apps.suite.build_workflow`), same winner rule, and — with
``--record`` — a persistent campaign per grid point that ``python -m
repro.obs campaign diff`` can compare afterwards.

Examples::

    # The old sweep.py grid: write-mix gamma x poll interference x dim.
    python tools/sweep.py \
        --grid mix_gamma_write=1.2,1.6,2.0 \
        --grid poll_interference_weight=0.2,0.3 \
        --matmul-dim 13,16

    # The old sweep2.py grid, persisted for later diffing.
    python tools/sweep.py \
        --grid mix_remote_read_boost=0.6,0.9,1.2 \
        --grid mix_write_sat_exponent=2.0,3.0 \
        --matmul-dim 10,12,14 --record campaigns-sweep

    # Quick single-point check on two panels.
    python tools/sweep.py --panels micro-2k@8 gtc+readonly@16
"""

import argparse
import itertools
import sys
from typing import Dict, List, Sequence, Tuple

from repro.apps.suite import PAPER_EXPECTATIONS
from repro.obs.campaign import parse_cell_key, run_campaign
from repro.obs.store import CampaignStore
from repro.pmem.calibration import DEFAULT_CALIBRATION

#: The panels that were hardest to reproduce — the historical sweep targets.
DEFAULT_PANELS: Tuple[str, ...] = (
    "micro-64mb@8",
    "micro-2k@8",
    "micro-2k@16",
    "micro-2k@24",
    "gtc+readonly@8",
    "gtc+readonly@16",
    "gtc+matmult@16",
    "gtc+matmult@24",
    "miniamr+readonly@8",
    "miniamr+readonly@16",
    "miniamr+readonly@24",
    "miniamr+matmult@8",
    "miniamr+matmult@16",
    "miniamr+matmult@24",
)


def parse_grid(entries: Sequence[str]) -> List[Dict[str, float]]:
    """``field=v1,v2`` entries -> the list of calibration override points."""
    axes: List[Tuple[str, List[float]]] = []
    for entry in entries:
        field, _, values = entry.partition("=")
        if not field or not values:
            raise SystemExit(f"--grid wants field=v1,v2,..., got {entry!r}")
        try:
            axes.append((field, [float(v) for v in values.split(",")]))
        except ValueError:
            raise SystemExit(f"--grid values in {entry!r} must be numbers")
    if not axes:
        return [{}]
    return [
        dict(zip([field for field, _ in axes], point))
        for point in itertools.product(*[values for _, values in axes])
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Grid-sweep calibration overrides over contested panels."
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="calibration axis (repeatable; the sweep is the cross product)",
    )
    parser.add_argument(
        "--matmul-dim",
        default=None,
        metavar="D1,D2,...",
        help="miniAMR MatrixMult dimensions to sweep (extra grid axis)",
    )
    parser.add_argument(
        "--panels",
        nargs="+",
        default=list(DEFAULT_PANELS),
        metavar="FAMILY@RANKS",
        help="suite cells to evaluate (default: the contested panels)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override every panel's iteration count (smaller = faster)",
    )
    parser.add_argument(
        "--record",
        default=None,
        metavar="DIR",
        help="persist one campaign per grid point into this store directory",
    )
    args = parser.parse_args(argv)

    cells = [parse_cell_key(panel) for panel in args.panels]
    for family, ranks in cells:
        if (family, ranks) not in PAPER_EXPECTATIONS:
            raise SystemExit(f"no paper expectation for panel {family}@{ranks}")
    dims = (
        [int(d) for d in args.matmul_dim.split(",")]
        if args.matmul_dim
        else [None]
    )
    points = parse_grid(args.grid)
    store = CampaignStore(args.record) if args.record else None

    best = (-1, "")
    for changes in points:
        cal = DEFAULT_CALIBRATION.replace(**changes) if changes else DEFAULT_CALIBRATION
        for dim in dims:
            run = run_campaign(
                suite="sweep",
                cells=cells,
                store=store,
                cal=cal,
                iterations=args.iterations,
                matmul_dim=dim,
            )
            hits, expected = run.hit_rate
            misses = [
                f"{cell.key}:{cell.winner}!={cell.paper_best}"
                for cell in run.cells
                if cell.paper_hit is False
            ]
            point = " ".join(f"{k}={v}" for k, v in changes.items()) or "default"
            if dim is not None:
                point += f" dim={dim}"
            recorded = f"  [{run.name}]" if store else ""
            print(
                f"{point}: {hits}/{expected}  misses: {', '.join(misses)}"
                f"{recorded}",
                flush=True,
            )
            if hits > best[0]:
                best = (hits, point)
    if len(points) * len(dims) > 1:
        print(f"best point: {best[1]} ({best[0]}/{len(cells)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
