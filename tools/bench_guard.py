"""Simulator-core benchmark baseline: record and guard.

Turns a pytest-benchmark JSON export (from ``benchmarks/bench_simulator.py``
and ``benchmarks/bench_headline.py``) into the committed
``BENCH_simcore.json`` baseline, and enforces it in CI:

* ``record``  — distill the raw export into the baseline schema (median
  wall seconds, events/s, solver iterations per run, memo hit rate) and
  write it.  An existing baseline's ``pre_pr_baseline`` block is carried
  forward and the speedups against it recomputed, so the headline
  "fast-path vs. original solver" ratio stays visible in the artifact.
* ``compare`` — check a fresh export against the committed baseline:
  wall-time medians must stay within ``--tolerance`` (default +/-20 %),
  events/s must stay above the baseline's absolute ``throughput_floors``
  (a ratchet recorded once and carried forward, so a slow creep across
  many PRs still trips it), and the deterministic work counters (solver
  iterations, events, memo hit rate, makespan) must not drift at all — a
  wall regression with unchanged counters is host noise or allocator
  churn, one *with* counter drift is a solver-strategy change and fails
  loudly either way.  ``--counters-only`` skips the wall and floor
  checks for lanes with different host economics (the no-numpy CI lane
  runs the pure-Python fallback, which is legitimately slower but must
  produce byte-identical work counters).

Usage::

    pytest benchmarks/bench_simulator.py benchmarks/bench_headline.py \
        --benchmark-only --benchmark-json=bench-raw.json
    python tools/bench_guard.py record bench-raw.json --out BENCH_simcore.json
    python tools/bench_guard.py compare bench-raw.json --baseline BENCH_simcore.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

#: Relative tolerance for wall-clock medians (host-speed dependent).
WALL_TOLERANCE = 0.20

#: Relative tolerance for deterministic work counters (iteration counts,
#: memo hit rates, simulated makespans).  These are properties of the
#: simulation, not the host; anything beyond float noise is a real change.
COUNTER_TOLERANCE = 1e-6

#: Counter fields carried into the baseline and guarded exactly.
COUNTER_FIELDS = (
    "solver_iterations_per_run",
    "events_per_run",
    "memo_hit_rate",
    "makespan",
)

#: Fraction of the measured events/s recorded as the absolute floor when
#: a baseline is first recorded (or a benchmark first appears).  Floors
#: are then carried forward verbatim — a ratchet, not a moving target.
FLOOR_FRACTION = 0.75


def distill(raw: Dict) -> Dict[str, Dict[str, float]]:
    """Reduce a pytest-benchmark export to the baseline's per-test schema."""
    out: Dict[str, Dict[str, float]] = {}
    for bench in raw["benchmarks"]:
        median = bench["stats"]["median"]
        extra = bench.get("extra_info", {})
        entry: Dict[str, float] = {"median_wall_seconds": median}
        if extra:
            if "events_executed" in extra:
                events = float(extra["events_executed"])
                entry["events_per_run"] = events
                entry["events_per_second"] = (
                    events / median if median > 0 else 0.0
                )
            if "solver_iterations" in extra:
                entry["solver_iterations_per_run"] = float(
                    extra["solver_iterations"]
                )
            for known in (
                "memo_hit_rate",
                "makespan",
                "solver_classes",
                "recomputes_coalesced",
            ):
                if known in extra:
                    entry[known] = float(extra[known])
            # Any other numeric extra_info rides along verbatim, so suites
            # with their own vocabulary (e.g. the service bench's
            # jobs_per_second / latency quantiles) land in the baseline
            # without this mapping growing a case per suite.  Only
            # COUNTER_FIELDS are guarded exactly; the rest is recorded.
            for key in sorted(extra):
                if key in ("events_executed", "solver_iterations"):
                    continue
                value = extra[key]
                if key not in entry and isinstance(value, (int, float)) and (
                    not isinstance(value, bool)
                ):
                    entry[key] = float(value)
        out[bench["name"]] = entry
    return out


def load_json(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def record(args: argparse.Namespace) -> int:
    benchmarks = distill(load_json(args.export))
    baseline: Dict = {"bench": args.name, "benchmarks": benchmarks}
    previous: Optional[Dict] = None
    try:
        previous = load_json(args.out)
    except (OSError, ValueError):
        pass
    pre_pr = (previous or {}).get("pre_pr_baseline")
    if pre_pr:
        baseline["pre_pr_baseline"] = pre_pr
        speedups = {}
        for name, entry in pre_pr.items():
            now = benchmarks.get(name, {}).get("median_wall_seconds")
            then = entry.get("median_wall_seconds")
            if now and then:
                speedups[name] = then / now
        baseline["speedup_vs_pre_pr"] = speedups
    # Throughput floors ratchet: existing floors survive re-recording;
    # benchmarks without one get FLOOR_FRACTION of the measured rate.
    floors = dict((previous or {}).get("throughput_floors", {}))
    for name, entry in benchmarks.items():
        rate = entry.get("events_per_second")
        if rate and name not in floors:
            floors[name] = round(rate * FLOOR_FRACTION)
    if floors:
        baseline["throughput_floors"] = floors
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} ({len(benchmarks)} benchmark(s))")
    for name, ratio in baseline.get("speedup_vs_pre_pr", {}).items():
        print(f"  {name}: {ratio:.2f}x vs pre-PR solver")
    return 0


def compare(args: argparse.Namespace) -> int:
    current = distill(load_json(args.export))
    document = load_json(args.baseline)
    baseline = document["benchmarks"]
    floors = document.get("throughput_floors", {})
    counters_only = getattr(args, "counters_only", False)
    failures = []
    for name, expected in sorted(baseline.items()):
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: missing from the current run")
            continue
        then = expected["median_wall_seconds"]
        now = measured["median_wall_seconds"]
        drift = (now - then) / then
        marker = "OK"
        if not counters_only and abs(drift) > args.tolerance:
            marker = "FAIL"
            failures.append(
                f"{name}: median wall {now * 1e3:.2f} ms vs baseline "
                f"{then * 1e3:.2f} ms ({drift:+.1%}, tolerance "
                f"+/-{args.tolerance:.0%})"
            )
        floor = floors.get(name)
        rate = measured.get("events_per_second", 0.0)
        if not counters_only and floor and rate < floor:
            marker = "FAIL"
            failures.append(
                f"{name}: {rate:.0f} events/s is below the committed "
                f"floor of {floor:.0f} — absolute throughput regression"
            )
        print(f"{marker:4} {name}: wall {now * 1e3:.2f} ms ({drift:+.1%})")
        for field in COUNTER_FIELDS:
            if field not in expected:
                continue
            want, got = expected[field], measured.get(field, 0.0)
            scale = max(abs(want), abs(got), 1.0)
            if abs(got - want) / scale > COUNTER_TOLERANCE:
                failures.append(
                    f"{name}: {field} drifted {want} -> {got}; work "
                    "counters are deterministic, so this is a solver "
                    "behaviour change, not noise"
                )
    if failures:
        print("\nbenchmark guard failures:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} benchmark(s) within guard")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="mode", required=True)

    rec = sub.add_parser("record", help="distill an export into the baseline")
    rec.add_argument("export", help="pytest-benchmark JSON export")
    rec.add_argument("--out", default="BENCH_simcore.json")
    rec.add_argument(
        "--name",
        default="simcore",
        help="suite tag written to the baseline's 'bench' field",
    )
    rec.set_defaults(func=record)

    cmp_ = sub.add_parser("compare", help="guard an export against the baseline")
    cmp_.add_argument("export", help="pytest-benchmark JSON export")
    cmp_.add_argument("--baseline", default="BENCH_simcore.json")
    cmp_.add_argument("--tolerance", type=float, default=WALL_TOLERANCE)
    cmp_.add_argument(
        "--counters-only",
        action="store_true",
        help="check only the deterministic work counters (skip wall-time "
        "and throughput-floor guards); for lanes whose host economics "
        "differ, e.g. the pure-Python no-numpy fallback",
    )
    cmp_.set_defaults(func=compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
