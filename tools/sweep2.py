import itertools
import repro.workflow.kernels as K
from repro.apps.miniamr import miniamr_workflow, MINIAMR_OBJECTS_PER_RANK
from repro.apps.analytics import read_only_kernel, gtc_matrixmult_kernel
from repro.apps.gtc import gtc_workflow
from repro.apps.microbench import micro_workflow, SMALL_OBJECT_BYTES, LARGE_OBJECT_BYTES
from repro.apps.suite import PAPER_EXPECTATIONS
from repro.core.autotune import ExhaustiveTuner
from repro.pmem.calibration import OptaneCalibration

PANELS = [("micro-64mb",8),("micro-2k",8),("micro-2k",16),("micro-2k",24),
          ("gtc+readonly",8),("gtc+readonly",16),("gtc+matmult",16),("gtc+matmult",24),
          ("miniamr+readonly",8),("miniamr+readonly",16),("miniamr+readonly",24),
          ("miniamr+matmult",8),("miniamr+matmult",16),("miniamr+matmult",24)]

def build(family, ranks, dim):
    if family == "micro-64mb": return micro_workflow(LARGE_OBJECT_BYTES, ranks)
    if family == "micro-2k": return micro_workflow(SMALL_OBJECT_BYTES, ranks)
    if family == "gtc+readonly": return gtc_workflow(read_only_kernel(), ranks=ranks)
    if family == "gtc+matmult": return gtc_workflow(gtc_matrixmult_kernel(), ranks=ranks)
    if family == "miniamr+readonly": return miniamr_workflow(read_only_kernel(), ranks=ranks)
    k = K.PerObjectKernel(objects=MINIAMR_OBJECTS_PER_RANK, seconds_per_object=5*2.0*dim**3/4.0e9)
    return miniamr_workflow(k, ranks=ranks)

best = None
for rb, wexp, dim in itertools.product((0.6, 0.9, 1.2), (2.0, 3.0), (10, 12, 14)):
    cal = OptaneCalibration().replace(mix_remote_read_boost=rb, mix_write_sat_exponent=wexp)
    tuner = ExhaustiveTuner(cal=cal)
    hits = 0; misses = []
    for fam, ranks in PANELS:
        rep = tuner.tune(build(fam, ranks, dim))
        win = rep.comparison.best_label
        want = PAPER_EXPECTATIONS[(fam, ranks)][0]
        if win == want: hits += 1
        else: misses.append(f"{fam}@{ranks}:{win}")
    print(f"rb={rb} wexp={wexp} dim={dim}: {hits}/{len(PANELS)}  miss: {', '.join(misses)}", flush=True)
