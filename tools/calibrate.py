"""Calibration harness: suite winners vs paper expectations."""
import sys
from repro.apps.suite import workflow_suite
from repro.core.configs import ALL_CONFIGS
from repro.core.autotune import ExhaustiveTuner
from repro.core.features import extract_features

tuner = ExhaustiveTuner()
hits = 0
entries = workflow_suite()
for e in entries:
    rep = tuner.tune(e.spec)
    f = extract_features(e.spec)
    win = rep.comparison.best_label
    ok = "OK " if win == e.paper_best else "XX "
    hits += win == e.paper_best
    ms = rep.comparison.makespans()
    row = "  ".join(f"{c.label}={ms[c.label]:7.2f}" for c in ALL_CONFIGS)
    print(f"{ok}{e.figure:7s} {e.spec.name:22s} paper={e.paper_best:6s} sim={win:6s} | {row} | "
          f"wSim_idx={f.sim_io_index:.2f} aIdx={f.analytics_io_index:.2f} "
          f"dutyW={f.sim_profile.duty:.2f} dutyR={f.analytics_profile.duty:.2f} "
          f"Wutil={f.write_utilization:.2f} effC={f.effective_io_concurrency:.1f}")
print(f"\n{hits}/{len(entries)} match paper")
