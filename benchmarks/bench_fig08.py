"""Benchmark: regenerate Figure 8 (miniAMR + Read-Only runtimes)."""

from repro.experiments import fig08_miniamr_readonly


def test_fig08_miniamr_readonly(run_experiment):
    # 4/5 claims: the S-LocR margin at 16 threads reproduces in direction
    # but overshoots the paper's 6 % (see EXPERIMENTS.md).
    result = run_experiment(fig08_miniamr_readonly.run, min_claims_held=4)
    assert result.data["best@8"] == "P-LocR"
    assert result.data["best@16"] == "S-LocR"
    assert result.data["best@24"] == "S-LocW"
