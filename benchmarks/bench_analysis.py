"""Benchmarks: the static-analysis passes themselves (not a paper artifact).

The analyzers run in CI on every push, so their own runtime is part of
the development feedback loop.  This file tracks the cost of building the
project model and of each whole-program pass over the full ``src/`` tree,
and enforces the hard wall guard: lint + all three dataflow families must
finish in **under 10 seconds** — an analyzer slower than the test suite
it gates would get turned off, which is worse than any false negative.

Work counters (modules, functions, diagnostics) ride along as
``extra_info`` so a wall-time move is attributable: more modules is
growth, more fixpoint rounds is an engine regression.
"""

import os

from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.project import Project
from repro.analysis.simlint import lint_paths
from repro.analysis.svc import check_service_atomicity
from repro.analysis.taint import check_determinism_taint
from repro.analysis.units_check import check_units

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: The CI wall budget for one full analysis sweep (lint + dataflow).
WALL_BUDGET_SECONDS = 10.0


def _full_sweep():
    sink = DiagnosticSink()
    lint_paths([SRC], sink=sink)
    project = Project.load([SRC])
    check_determinism_taint(project, sink=sink)
    check_service_atomicity(project, sink=sink)
    check_units(project, sink=sink)
    return project, sink.sorted()


def test_project_model_build(benchmark):
    project = benchmark.pedantic(
        Project.load, args=([SRC],), rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(project.modules) > 50
    benchmark.extra_info.update(
        {
            "modules": len(project.modules),
            "functions": len(project.functions),
        }
    )


def test_determinism_taint_pass(benchmark):
    project = Project.load([SRC])
    diagnostics = benchmark.pedantic(
        check_determinism_taint,
        args=(project,),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["diagnostics"] = len(diagnostics)


def test_full_analysis_sweep_under_wall_budget(benchmark):
    (project, diagnostics) = benchmark.pedantic(
        _full_sweep, rounds=3, iterations=1, warmup_rounds=1
    )
    median = benchmark.stats.stats.median
    assert median < WALL_BUDGET_SECONDS, (
        f"full analysis sweep took {median:.1f}s "
        f"(budget {WALL_BUDGET_SECONDS:.0f}s)"
    )
    benchmark.extra_info.update(
        {
            "modules": len(project.modules),
            "diagnostics": len(diagnostics),
        }
    )
