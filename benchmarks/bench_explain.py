"""Benchmarks: the trace-analytics engine (not a paper artifact).

``repro.obs.explain`` runs inside CI (over the committed micro
baseline), inside ``campaign diff``, and inside every service pass that
annotates regret entries — so the analytics themselves must stay cheap
relative to the simulations they explain.  This file tracks the cost of
a full explain pass (observe + critical path + buckets) on a mid-size
workflow, and the pure-analysis cost of re-walking an already-captured
trace, with a hard wall guard on the latter: blame attribution over one
run's spans must finish in **well under a second**, or attaching it to
every campaign cell at capture time stops being free.

Work counters (spans, segments, bucket count) ride along as
``extra_info`` so a wall-time move is attributable: more spans is a
bigger workflow, more segments per span is an engine regression.
"""

import os

from repro.apps.suite import build_workflow
from repro.core.configs import SchedulerConfig
from repro.obs.capture import observe_workflow
from repro.obs.explain import (
    critical_path,
    explain_observation,
    path_context,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: Wall budget for one pure-analysis pass over a captured trace.
WALL_BUDGET_SECONDS = 0.5

_SPEC = build_workflow("miniamr+matmult", ranks=16, iterations=4)
_CONFIG = SchedulerConfig.from_label("P-LocR")


def test_explain_full_pass(benchmark):
    """Observe + explain: the cost a campaign cell pays per config."""
    explanation = benchmark.pedantic(
        lambda: explain_observation(observe_workflow(_SPEC, _CONFIG)),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert explanation.segments
    benchmark.extra_info.update(
        {
            "segments": len(explanation.segments),
            "buckets": len(explanation.buckets),
        }
    )


def test_critical_path_walk_under_wall_budget(benchmark):
    """Pure analysis on a pre-captured trace — the reusable hot path."""
    observation = observe_workflow(_SPEC, _CONFIG)
    spans = observation.spans()
    makespan = observation.result.makespan
    context = path_context(_CONFIG.label)
    segments = benchmark.pedantic(
        critical_path,
        args=(spans, makespan, context),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    median = benchmark.stats.stats.median
    assert median < WALL_BUDGET_SECONDS, (
        f"critical-path walk took {median:.3f}s "
        f"(budget {WALL_BUDGET_SECONDS:.1f}s)"
    )
    assert segments[0].start == 0.0
    benchmark.extra_info.update(
        {
            "spans": len(spans),
            "segments": len(segments),
        }
    )
