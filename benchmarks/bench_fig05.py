"""Benchmark: regenerate Figure 5 (2 KB microbenchmark runtimes)."""

from repro.experiments import fig05_micro2k


def test_fig05_micro2k(run_experiment):
    # 5/6 claims: the serial-vs-parallel margin at 24 threads reproduces in
    # direction but overshoots the paper's 11.5 % (see EXPERIMENTS.md).
    result = run_experiment(fig05_micro2k.run, min_claims_held=5)
    assert result.data["best@8"] == "P-LocR"
    assert result.data["best@16"] == "P-LocR"
    assert result.data["best@24"] == "S-LocR"
