"""Benchmark: regenerate Figure 9 (miniAMR + MatrixMult runtimes).

Known deviation: at 16 ranks our simulation prefers P-LocR where the paper
reports S-LocW (documented in EXPERIMENTS.md), so this benchmark requires
all claims except that panel's winner.
"""

from repro.experiments import fig09_miniamr_matmult


def test_fig09_miniamr_matmult(run_experiment):
    result = run_experiment(fig09_miniamr_matmult.run, min_claims_held=3)
    assert result.data["best@8"] == "P-LocW"
    assert result.data["best@24"] == "S-LocW"
    # Fig 9b near-miss: the paper's pick must stay within 15 % of our best.
    assert result.data["normalized@16"]["S-LocW"] <= 1.15
