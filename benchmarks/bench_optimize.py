"""Benchmarks: the global placement optimizer (not a paper artifact).

``repro.core.optimize`` runs inside CI (``validate`` re-derives Table II
every push) and is meant to be cheap enough to call per service pass —
an optimizer that costs more than the simulations it plans is useless.
This file tracks the analytic end-to-end cost on the full 18-workflow
suite (price every candidate, solve the exact backend, enumerate the
ε-frontier) with a hard wall guard: the whole decision layer must stay
**well under a second** so only the optional simulation pricing ever
dominates a planning call.

Work counters (candidates, branch-and-bound nodes, frontier points)
ride along as ``extra_info`` so a wall-time move is attributable: more
nodes is a weaker bound, more candidates is a bigger decision space.
"""

import os

from repro.core.optimize.backends import BranchBoundOptimizer
from repro.core.optimize.cli import build_scenario
from repro.core.optimize.pareto import enumerate_frontier
from repro.units import GB

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: Wall budget for one full plan-and-frontier pass (analytic pricing).
WALL_BUDGET_SECONDS = 0.5

_SUITE_KEYS = [
    f"{family}@{ranks}"
    for family in (
        "micro-64mb",
        "micro-2k",
        "gtc+readonly",
        "gtc+matmult",
        "miniamr+readonly",
        "miniamr+matmult",
    )
    for ranks in (8, 16, 24)
]


def _full_pass():
    scenario = build_scenario(
        _SUITE_KEYS,
        pricer_name="analytic",
        allow_colocation=True,
        allow_dram=True,
        pmem_budget_bytes=int(300 * GB),
    )
    plan = BranchBoundOptimizer().solve(scenario)
    points, _truncated = enumerate_frontier(scenario, epsilon=0.02)
    return scenario, plan, points


def test_optimize_full_pass_under_wall_budget(benchmark):
    """Price + solve + frontier on the whole suite — the planning cost."""
    scenario, plan, points = benchmark.pedantic(
        _full_pass,
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    median = benchmark.stats.stats.median
    assert median < WALL_BUDGET_SECONDS, (
        f"optimizer full pass took {median:.3f}s "
        f"(budget {WALL_BUDGET_SECONDS:.1f}s)"
    )
    assert plan.feasible
    assert points
    benchmark.extra_info.update(
        {
            "workflows": len(scenario.choices),
            "candidates": sum(len(c.candidates) for c in scenario.choices),
            "bb_nodes": plan.nodes_explored,
            "frontier_points": len(points),
        }
    )
