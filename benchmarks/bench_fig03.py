"""Benchmark: regenerate Figure 3 (workflow parameter space)."""

from repro.experiments import fig03_parameter_space


def test_fig03_parameter_space(run_experiment):
    result = run_experiment(fig03_parameter_space.run)
    assert result.data["axis_values"]["object_size"] == ["large", "small"]
