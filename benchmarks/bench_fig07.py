"""Benchmark: regenerate Figure 7 (GTC + MatrixMult runtimes)."""

from repro.experiments import fig07_gtc_matmult


def test_fig07_gtc_matmult(run_experiment):
    result = run_experiment(fig07_gtc_matmult.run)
    assert result.data["best@8"] == "P-LocR"
    assert result.data["best@16"] == "P-LocR"
    assert result.data["best@24"] == "S-LocW"
