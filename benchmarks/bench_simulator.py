"""Benchmarks: raw simulator throughput (not a paper artifact).

Tracks the cost of the discrete-event substrate itself so regressions in
the flow solver or engine are visible: one medium workflow end to end, and
one solver-heavy small-object workflow.

Each simulator benchmark attaches its work counters (events, recomputes,
solver iterations, memo hit rate, makespan) as ``extra_info`` so the JSON
artifact carries the *why* behind a wall-time move — a regression with an
unchanged iteration count is allocator churn; one with a collapsed memo
hit rate is a solver-strategy bug.  ``tools/bench_guard.py`` turns the
pytest-benchmark JSON into the committed ``BENCH_simcore.json`` baseline
and enforces the +/-20 % guard in CI.
"""

from repro.apps.gtc import gtc_workflow
from repro.apps.microbench import micro_workflow
from repro.core.configs import P_LOCR, S_LOCW
from repro.metrics.timeline import render_timeline
from repro.obs.capture import observe_workflow
from repro.units import KiB
from repro.workflow.runner import run_workflow


def _attach_work_counters(benchmark, spec, config):
    """One observed (untimed) run: latch the simulator's cost signals."""
    observation = observe_workflow(spec, config)
    probes = observation.probes
    stats = observation.solver_stats
    hits = stats.get("solver_memo_hits", 0)
    misses = stats.get("solver_memo_misses", 0)
    attempts = hits + misses
    benchmark.extra_info.update(
        {
            "makespan": observation.result.makespan,
            "events_executed": probes.counter_total("engine.events_executed"),
            "flow_recomputes": probes.counter_total("flow.recomputes"),
            "solver_iterations": probes.counter_total("flow.solver_iterations"),
            "solver_classes": stats.get("solver_classes", 0),
            "memo_hit_rate": (hits / attempts) if attempts else 0.0,
            "recomputes_coalesced": stats.get("recomputes_coalesced", 0),
            "solver_components_skipped": stats.get("solver_components_skipped", 0),
            "vector_batches": stats.get("vector_batches", 0),
        }
    )


def test_simulate_gtc_workflow(benchmark):
    spec = gtc_workflow(ranks=16, iterations=5)
    result = benchmark.pedantic(
        run_workflow, args=(spec, P_LOCR), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.makespan > 0
    _attach_work_counters(benchmark, spec, P_LOCR)


def test_simulate_small_object_workflow(benchmark):
    spec = micro_workflow(2 * KiB, ranks=16, iterations=5)
    result = benchmark.pedantic(
        run_workflow, args=(spec, S_LOCW), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.makespan > 0
    _attach_work_counters(benchmark, spec, S_LOCW)


def test_render_timeline_wide(benchmark):
    """Guard for the chronological-sweep renderer: a record-heavy trace at
    a wide terminal width used to cost O(width x records) per rank."""
    spec = gtc_workflow(ranks=24, iterations=10)
    result = run_workflow(spec, P_LOCR, trace=True)
    rendered = benchmark.pedantic(
        render_timeline,
        args=(result.tracer,),
        kwargs={"width": 400},
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert rendered.count("\n") >= 2 * spec.ranks
