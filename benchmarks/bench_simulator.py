"""Benchmarks: raw simulator throughput (not a paper artifact).

Tracks the cost of the discrete-event substrate itself so regressions in
the flow solver or engine are visible: one medium workflow end to end, and
one solver-heavy small-object workflow.
"""

from repro.apps.gtc import gtc_workflow
from repro.apps.microbench import micro_workflow
from repro.core.configs import P_LOCR, S_LOCW
from repro.units import KiB, MiB
from repro.workflow.runner import run_workflow


def test_simulate_gtc_workflow(benchmark):
    spec = gtc_workflow(ranks=16, iterations=5)
    result = benchmark.pedantic(
        run_workflow, args=(spec, P_LOCR), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.makespan > 0


def test_simulate_small_object_workflow(benchmark):
    spec = micro_workflow(2 * KiB, ranks=16, iterations=5)
    result = benchmark.pedantic(
        run_workflow, args=(spec, S_LOCW), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.makespan > 0
