"""Benchmarks: raw simulator throughput (not a paper artifact).

Tracks the cost of the discrete-event substrate itself so regressions in
the flow solver or engine are visible: one medium workflow end to end, and
one solver-heavy small-object workflow.
"""

from repro.apps.gtc import gtc_workflow
from repro.apps.microbench import micro_workflow
from repro.core.configs import P_LOCR, S_LOCW
from repro.metrics.timeline import render_timeline
from repro.units import KiB, MiB
from repro.workflow.runner import run_workflow


def test_simulate_gtc_workflow(benchmark):
    spec = gtc_workflow(ranks=16, iterations=5)
    result = benchmark.pedantic(
        run_workflow, args=(spec, P_LOCR), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.makespan > 0


def test_simulate_small_object_workflow(benchmark):
    spec = micro_workflow(2 * KiB, ranks=16, iterations=5)
    result = benchmark.pedantic(
        run_workflow, args=(spec, S_LOCW), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.makespan > 0


def test_render_timeline_wide(benchmark):
    """Guard for the chronological-sweep renderer: a record-heavy trace at
    a wide terminal width used to cost O(width x records) per rank."""
    spec = gtc_workflow(ranks=24, iterations=10)
    result = run_workflow(spec, P_LOCR, trace=True)
    rendered = benchmark.pedantic(
        render_timeline,
        args=(result.tracer,),
        kwargs={"width": 400},
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert rendered.count("\n") >= 2 * spec.ranks
