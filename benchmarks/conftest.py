"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (figure or table) through the
experiment harness, exactly once per benchmark (the workloads are
deterministic discrete-event simulations — repetition adds no information,
so rounds/iterations are pinned to 1 via ``benchmark.pedantic``).

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark one experiment and verify its claims reproduced."""

    def _run(experiment_fn, min_claims_held=None):
        result = benchmark.pedantic(
            experiment_fn, args=(None,), rounds=1, iterations=1, warmup_rounds=0
        )
        held, total = result.claims_held, len(result.claims)
        threshold = total if min_claims_held is None else min_claims_held
        assert held >= threshold, (
            f"{result.experiment_id}: only {held}/{total} paper claims "
            "reproduced:\n"
            + "\n".join(
                f"  MISS {c.claim_id}: paper {c.paper_value}, measured "
                f"{c.measured_value}"
                for c in result.claims
                if not c.holds
            )
        )
        return result

    return _run
