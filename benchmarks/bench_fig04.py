"""Benchmark: regenerate Figure 4 (64 MB microbenchmark runtimes)."""

from repro.experiments import fig04_micro64mb


def test_fig04_micro64mb(run_experiment):
    result = run_experiment(fig04_micro64mb.run)
    # S-LocW wins all three panels (Fig. 4a-c).
    for ranks in (8, 16, 24):
        assert result.data[f"best@{ranks}"] == "S-LocW"
