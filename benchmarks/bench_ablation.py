"""Benchmarks: storage-stack and device-model-term ablations."""

from repro.experiments import ablation_model, ablation_stacks


def test_ablation_stacks(run_experiment):
    result = run_experiment(ablation_stacks.run)


def test_ablation_model(run_experiment):
    result = run_experiment(ablation_model.run)
    assert result.data["no_mix_best"].startswith("P")
