"""Benchmark: regenerate Figure 6 (GTC + Read-Only runtimes)."""

from repro.experiments import fig06_gtc_readonly


def test_fig06_gtc_readonly(run_experiment):
    result = run_experiment(fig06_gtc_readonly.run)
    assert result.data["best@8"] == "P-LocR"
    assert result.data["best@16"] == "S-LocR"
    assert result.data["best@24"] == "S-LocW"
