"""Benchmarks: the service's own submit→result pipeline (not the sim).

The ROADMAP's scale target talks about *service* throughput — sustained
jobs/sec and tail latency of the queue → cache → store pipeline — which is
orthogonal to simulator speed.  This bench measures exactly that on a
synthetic cache-hit burst: the cache is pre-seeded with fabricated cells
and every submitted job resolves to one of them, so a pass through
:class:`repro.service.scheduler.ServiceScheduler` exercises queue replay,
claim/done transitions, cache lookups, and store appends while simulating
nothing.  Wall time here is pure service overhead.

Latency quantiles come from the run's own telemetry
(``repro_service_submit_result_latency_seconds``), so the benchmark also
keeps the telemetry plane itself honest: if instrumenting every lifecycle
event ever becomes expensive, this wall guard catches it.

Recorded into ``BENCH_service.json`` via ``tools/bench_guard.py`` (CI
uses a wider tolerance than the simulator benches — this is queue-file
I/O, not arithmetic).
"""

import shutil
import tempfile

from repro.obs.store import StoredCell
from repro.service.cache import ResultCache
from repro.service.queue import KIND_CELL, JobQueue
from repro.service.scheduler import ServiceScheduler
from repro.service.telemetry import LATENCY_METRIC, ServiceTelemetry

#: Jobs in one synthetic burst.
BURST_JOBS = 150

#: Distinct pre-seeded cache entries the burst cycles over.
DISTINCT_CELLS = 30


def _synthetic_cell(index: int) -> StoredCell:
    return StoredCell(
        cell_id=f"{index:064x}",
        key=f"synthetic@{index}",
        deterministic={
            "configs": {"S-LocW": {"makespan": 1.0 + index}},
            "winner": "S-LocW",
        },
        host={},
        provenance={"suite": "bench_service"},
    )


def _run_burst() -> dict:
    tmp = tempfile.mkdtemp(prefix="bench-service-")
    try:
        cache = ResultCache(tmp)
        cells = [_synthetic_cell(i) for i in range(DISTINCT_CELLS)]
        for cell in cells:
            cache.put(cell)
        queue = JobQueue(tmp)
        for i in range(BURST_JOBS):
            queue.submit(
                KIND_CELL,
                {"family": "synthetic", "ranks": 1, "burst_index": i},
                cell_id=cells[i % DISTINCT_CELLS].cell_id,
            )
        telemetry = ServiceTelemetry(tmp, enabled=True)
        scheduler = ServiceScheduler(root=tmp, telemetry=telemetry)
        report = scheduler.run()
        assert report.cache_hits == BURST_JOBS, report.as_record()
        assert report.failed == 0, report.as_record()
        latency = telemetry.registry.histogram(LATENCY_METRIC)
        return {
            "jobs": BURST_JOBS,
            "wall_seconds": report.wall_seconds,
            "jobs_per_second": (
                BURST_JOBS / report.wall_seconds
                if report.wall_seconds > 0
                else 0.0
            ),
            "latency_p50_seconds": latency.quantile(0.5),
            "latency_p99_seconds": latency.quantile(0.99),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def test_service_cached_burst(benchmark):
    stats = benchmark.pedantic(
        _run_burst, rounds=3, iterations=1, warmup_rounds=1
    )
    assert stats["jobs_per_second"] > 0
    benchmark.extra_info.update(
        {
            "burst_jobs": stats["jobs"],
            "jobs_per_second": stats["jobs_per_second"],
            "latency_p50_seconds": stats["latency_p50_seconds"],
            "latency_p99_seconds": stats["latency_p99_seconds"],
        }
    )
