"""Benchmarks: regenerate Table I and Table II."""

from repro.experiments import table01_configs, table02_recommendations


def test_table01_configs(run_experiment):
    result = run_experiment(table01_configs.run)
    assert result.data["configs"] == ["S-LocW", "S-LocR", "P-LocW", "P-LocR"]


def test_table02_recommendations(run_experiment):
    result = run_experiment(table02_recommendations.run)
    assert result.data["table_hits"] == 18
