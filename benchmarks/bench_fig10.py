"""Benchmark: regenerate Figure 10 (normalized runtimes, all app workflows)."""

from repro.experiments import fig10_normalized


def test_fig10_normalized(run_experiment):
    result = run_experiment(fig10_normalized.run)
    assert len(result.data["winners"]) >= 3
