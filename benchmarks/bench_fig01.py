"""Benchmark: regenerate Figure 1 (motivation)."""

from repro.experiments import fig01_motivation


def test_fig01_motivation(run_experiment):
    result = run_experiment(fig01_motivation.run)
    assert result.data["ro_normalized_under_mm_best"] > 1.0
