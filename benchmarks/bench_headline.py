"""Benchmark: the headline up-to-69/70 % configuration-impact claim."""

from repro.experiments import headline


def test_headline_improvement(run_experiment):
    result = run_experiment(headline.run)
    assert result.data["max_improvement"] >= 0.5
