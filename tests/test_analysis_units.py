"""UNIT6xx dimension-checker tests."""

import textwrap

from repro.analysis.project import Project
from repro.analysis.units_check import check_units


def check(source, path="src/repro/sim/flow_fixture.py"):
    project = Project.from_sources({path: textwrap.dedent(source)})
    return check_units(project)


def codes(source, path="src/repro/sim/flow_fixture.py"):
    return [d.code for d in check(source, path)]


class TestUNIT601Arithmetic:
    def test_bytes_plus_seconds_flagged(self):
        # The acceptance true positive: floats add happily, the makespan
        # is silently garbage.
        assert "UNIT601" in codes(
            """
            def drain(op_bytes, setup_seconds):
                return op_bytes + setup_seconds
            """
        )

    def test_bytes_plus_bytes_clean(self):
        assert codes(
            """
            def total(op_bytes, header_bytes):
                return op_bytes + header_bytes
            """
        ) == []

    def test_dimensionless_literal_combines_freely(self):
        assert codes(
            """
            def pad(op_bytes):
                return op_bytes + 64
            """
        ) == []

    def test_unit_constant_dimensions_inferred(self):
        assert "UNIT601" in codes(
            """
            from repro.units import KiB, MILLISECOND

            def bad():
                return 4 * KiB + 2 * MILLISECOND
            """
        )

    def test_rate_times_seconds_is_bytes(self):
        assert codes(
            """
            def moved(bandwidth_bps, dt):
                moved_bytes = bandwidth_bps * dt
                return moved_bytes
            """
        ) == []

    def test_bytes_div_seconds_is_rate(self):
        assert codes(
            """
            def rate(op_bytes, elapsed):
                bw = op_bytes / elapsed
                return bw
            """
        ) == []

    def test_bytes_div_rate_is_seconds(self):
        assert codes(
            """
            def drain(op_bytes, bandwidth_bps):
                latency = op_bytes / bandwidth_bps
                return latency
            """
        ) == []

    def test_augmented_mixed_add_flagged(self):
        assert "UNIT601" in codes(
            """
            def accumulate(makespan, chunk_bytes):
                makespan += chunk_bytes
                return makespan
            """
        )


class TestUNIT602Comparison:
    def test_bytes_vs_seconds_comparison_flagged(self):
        assert "UNIT602" in codes(
            """
            def check(chunk_bytes, deadline):
                return chunk_bytes < deadline
            """
        )

    def test_same_dimension_comparison_clean(self):
        assert codes(
            """
            def check(chunk_bytes, capacity_bytes):
                return chunk_bytes < capacity_bytes
            """
        ) == []

    def test_literal_comparison_clean(self):
        assert codes(
            """
            def check(chunk_bytes):
                return chunk_bytes > 0
            """
        ) == []


class TestUNIT603Binding:
    def test_seconds_bound_to_bytes_name_flagged(self):
        assert "UNIT603" in codes(
            """
            from repro.units import MILLISECOND

            def f():
                chunk_bytes = 2.0 * MILLISECOND
                return chunk_bytes
            """
        )

    def test_rate_magnitude_idiom_allowed(self):
        # ``30.0 * GB`` meaning GB/s is the calibration-table idiom.
        assert codes(
            """
            from repro.units import GB

            def f():
                upi_bandwidth = 30.0 * GB
                return upi_bandwidth
            """
        ) == []

    def test_kwarg_dimension_mismatch_flagged(self):
        assert "UNIT603" in codes(
            """
            from repro.units import MILLISECOND

            def f(build):
                return build(op_bytes=3 * MILLISECOND)
            """
        )

    def test_return_from_suffixed_function_checked(self):
        assert "UNIT603" in codes(
            """
            from repro.units import SECOND

            def window_bytes(n):
                return n * SECOND
            """
        )

    def test_propagation_through_locals(self):
        assert "UNIT601" in codes(
            """
            from repro.units import MiB

            def f(dt):
                size = 4 * MiB
                return size + dt
            """
        )


class TestScope:
    def test_out_of_scope_module_not_checked(self):
        assert codes(
            """
            def f(op_bytes, dt):
                return op_bytes + dt
            """,
            path="src/repro/obs/export_fixture.py",
        ) == []

    def test_pmem_package_in_scope(self):
        assert "UNIT601" in codes(
            """
            def f(op_bytes, dt):
                return op_bytes + dt
            """,
            path="src/repro/pmem/device_fixture.py",
        )

    def test_platform_package_in_scope(self):
        assert "UNIT602" in codes(
            """
            def f(capacity_bytes, deadline):
                return capacity_bytes == deadline
            """,
            path="src/repro/platform/node_fixture.py",
        )

    def test_noqa_suppresses(self):
        assert codes(
            """
            def f(op_bytes, dt):
                return op_bytes + dt  # noqa: UNIT601 deliberate packing
            """
        ) == []

    def test_real_tree_is_clean(self):
        project = Project.load(["src/repro"])
        assert [d.code for d in check_units(project)] == []
