"""Job queue lifecycle: submit/claim/retry/release/drain + schema checks."""

import pytest

from repro.errors import StorageError
from repro.service.queue import (
    KIND_CELL,
    KIND_EXPERIMENT,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    JobQueue,
    validate_queue_lines,
)


@pytest.fixture()
def queue(tmp_path):
    return JobQueue(str(tmp_path / "service"))


def test_submit_assigns_sequential_content_ids(queue):
    first = queue.submit(KIND_CELL, {"family": "micro-2k", "ranks": 8})
    second = queue.submit(KIND_CELL, {"family": "micro-2k", "ranks": 8})
    assert first.job_id.startswith("job-0000-")
    assert second.job_id.startswith("job-0001-")
    # Identical payload -> identical hash fragment, distinct sequence.
    assert first.job_id.split("-")[2] == second.job_id.split("-")[2]
    assert [job.state for job in queue.load()] == [STATE_QUEUED, STATE_QUEUED]


def test_unknown_kind_and_negative_retries_rejected(queue):
    with pytest.raises(StorageError):
        queue.submit("mystery", {})
    with pytest.raises(StorageError):
        queue.submit(KIND_CELL, {}, max_retries=-1)


def test_happy_path_lifecycle_survives_reload(queue):
    job = queue.submit(KIND_EXPERIMENT, {"experiment": "fig01"})
    queue.claim(job)
    assert job.state == STATE_RUNNING
    assert job.attempts == 1
    queue.mark_done(job, {"claims": 3})
    reloaded = JobQueue(queue.root).load()
    assert [j.state for j in reloaded] == [STATE_DONE]
    assert reloaded[0].detail == {"claims": 3}
    assert reloaded[0].attempts == 1


def test_terminal_states_are_final(queue):
    job = queue.submit(KIND_CELL, {"n": 1})
    queue.claim(job)
    queue.mark_done(job)
    with pytest.raises(StorageError):
        queue.mark_failed(job)
    with pytest.raises(StorageError):
        queue.claim(job)


def test_retry_requeues_until_budget_exhausted(queue):
    job = queue.submit(KIND_CELL, {"n": 1}, max_retries=2)
    for attempt in (1, 2):
        queue.claim(job)
        queue.retry(job, {"status": "error"})
        assert job.state == STATE_QUEUED
        assert job.attempts == attempt
    queue.claim(job)
    queue.retry(job, {"status": "error"})
    assert job.state == STATE_FAILED
    assert job.detail["reason"] == "retries exhausted"
    assert job.detail["attempts"] == 3


def test_release_returns_attempt_to_budget(queue):
    job = queue.submit(KIND_CELL, {"n": 1}, max_retries=0)
    queue.claim(job)
    queue.release(job, {"reason": "drained"})
    assert job.state == STATE_QUEUED
    assert job.attempts == 0
    # The un-consumed attempt is still available: claim + fail uses it up.
    queue.claim(job)
    queue.retry(job)
    assert job.state == STATE_FAILED


def test_requeue_stale_recovers_crashed_service(queue):
    job = queue.submit(KIND_CELL, {"n": 1})
    queue.claim(job)
    # A fresh service process sees the stale running job and requeues it.
    fresh = JobQueue(queue.root)
    requeued = fresh.requeue_stale()
    assert [j.job_id for j in requeued] == [job.job_id]
    assert fresh.counts()[STATE_QUEUED] == 1
    assert fresh.load()[0].attempts == 0


def test_drain_fails_everything_queued_and_stale(queue):
    queued = queue.submit(KIND_CELL, {"n": 1})
    running = queue.submit(KIND_CELL, {"n": 2})
    done = queue.submit(KIND_CELL, {"n": 3})
    queue.claim(running)
    queue.claim(done)
    queue.mark_done(done)
    drained = queue.drain()
    assert {j.job_id for j in drained} == {queued.job_id, running.job_id}
    counts = queue.counts()
    assert counts[STATE_FAILED] == 2
    assert counts[STATE_DONE] == 1
    assert counts[STATE_QUEUED] == 0


def test_deadline_and_timeout_round_trip(queue):
    job = queue.submit(
        KIND_CELL, {"n": 1}, timeout_seconds=5.0, deadline_epoch=123.0
    )
    reloaded = JobQueue(queue.root).load()[0]
    assert reloaded.timeout_seconds == 5.0
    assert reloaded.deadline_epoch == 123.0
    assert reloaded.job_id == job.job_id


def test_validate_accepts_real_queue_file(queue):
    job = queue.submit(KIND_CELL, {"n": 1})
    queue.claim(job)
    queue.mark_done(job)
    assert queue.validate() == []


def test_validate_flags_schema_problems():
    problems = validate_queue_lines(
        [
            "not json",
            '{"record": "job", "job_id": "a", "kind": "mystery", '
            '"payload": {}, "state": "queued", "submitted_seq": 0, '
            '"schema_version": 1}',
            '{"record": "transition", "job_id": "ghost", "state": "done", '
            '"attempts": 1}',
            '{"record": "wat"}',
        ]
    )
    assert any("invalid JSON" in p for p in problems)
    assert any("unknown job kind" in p for p in problems)
    assert any("unknown job" in p for p in problems)
    assert any("unknown record type" in p for p in problems)


def test_validate_flags_transition_after_terminal(queue):
    lines = [
        '{"record": "job", "job_id": "a", "kind": "cell", "payload": {}, '
        '"state": "queued", "submitted_seq": 0, "schema_version": 1}',
        '{"record": "transition", "job_id": "a", "state": "done", "attempts": 1}',
        '{"record": "transition", "job_id": "a", "state": "running", "attempts": 2}',
    ]
    problems = validate_queue_lines(lines)
    assert any("terminal state" in p for p in problems)
