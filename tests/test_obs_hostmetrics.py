"""Host-side self-metrics: the meter, profiling, and record-shape parity."""

import pytest

from repro.core.configs import S_LOCW
from repro.errors import SimulationError
from repro.obs.capture import observe_workflow
from repro.obs.hostmetrics import (
    KIND_EMULATED,
    KIND_SIMULATED,
    HostMeter,
    HostMetrics,
    Hotspot,
    aggregate_host_metrics,
    host_metrics_from_record,
    simulated_host_metrics,
    threaded_host_metrics,
)
from repro.apps.suite import build_workflow
from repro.runtime.threaded import RealRunResult


def tiny_observation():
    return observe_workflow(build_workflow("micro-2k", 8, iterations=1), S_LOCW)


class TestHostMeter:
    def test_measures_wall_time_and_memory(self):
        with HostMeter() as meter:
            blob = [bytes(64 * 1024) for _ in range(8)]
        assert meter.wall_seconds > 0
        assert meter.peak_tracemalloc_bytes > 0
        assert blob  # keep the allocation alive through the block

    def test_not_reentrant(self):
        meter = HostMeter()
        with meter:
            with pytest.raises(SimulationError):
                meter.__enter__()

    def test_no_hotspots_without_profiling(self):
        with HostMeter() as meter:
            pass
        assert meter.hotspots() == []

    def test_profiling_captures_hotspots(self):
        with HostMeter(profile=True, profile_top=5) as meter:
            tiny_observation()
        spots = meter.hotspots()
        assert 0 < len(spots) <= 5
        # Sorted by cumulative time, labelled host-path-independently.
        assert spots[0].cumtime >= spots[-1].cumtime
        assert all("(" in spot.function for spot in spots)
        assert all("/" not in spot.function for spot in spots)


class TestSimulatedMetrics:
    def test_combines_meter_and_probe_counters(self):
        with HostMeter() as meter:
            observation = tiny_observation()
        metrics = simulated_host_metrics(meter, [observation])
        assert metrics.kind == KIND_SIMULATED
        assert metrics.runs == 1
        assert metrics.simulated_seconds == observation.result.makespan
        assert metrics.events_executed > 0
        assert metrics.flow_recomputes > 0
        assert metrics.solver_iterations > 0
        assert metrics.sim_seconds_per_wall_second > 0
        assert metrics.events_per_wall_second > 0

    def test_record_round_trip(self):
        with HostMeter(profile=True) as meter:
            observation = tiny_observation()
        metrics = simulated_host_metrics(meter, [observation])
        loaded = host_metrics_from_record(metrics.as_record())
        assert loaded.kind == metrics.kind
        assert loaded.wall_seconds == metrics.wall_seconds
        assert loaded.events_executed == metrics.events_executed
        assert [s.function for s in loaded.hotspots] == [
            s.function for s in metrics.hotspots
        ]


class TestThreadedParity:
    def result(self):
        return RealRunResult(
            config_label="P-LocR",
            makespan_seconds=1.25,
            writer_seconds=0.75,
            reader_seconds=1.25,
            iterations_completed=2,
        )

    def test_same_record_keys_as_simulated(self):
        with HostMeter() as meter:
            observation = tiny_observation()
        simulated = simulated_host_metrics(meter, [observation]).as_record()
        emulated = threaded_host_metrics(self.result()).as_record()
        assert set(simulated) == set(emulated)

    def test_emulated_values(self):
        metrics = threaded_host_metrics(self.result())
        assert metrics.kind == KIND_EMULATED
        assert metrics.wall_seconds == 1.25
        assert metrics.runs == 1
        assert metrics.sim_seconds_per_wall_second == 0.0

    def test_host_record_method_on_result(self):
        record = self.result().host_record()
        assert record["kind"] == KIND_EMULATED
        assert record["wall_seconds"] == 1.25


class TestAggregate:
    def test_sums_and_peak(self):
        a = HostMetrics(
            kind=KIND_SIMULATED,
            wall_seconds=1.0,
            simulated_seconds=10.0,
            events_executed=100,
            peak_tracemalloc_bytes=500,
            runs=4,
            hotspots=[Hotspot("f.py:1(f)", 2, 0.1, 0.4)],
        )
        b = HostMetrics(
            kind=KIND_SIMULATED,
            wall_seconds=3.0,
            simulated_seconds=30.0,
            events_executed=300,
            peak_tracemalloc_bytes=200,
            runs=4,
            hotspots=[Hotspot("f.py:1(f)", 1, 0.2, 0.3)],
        )
        total = aggregate_host_metrics([a, b])
        assert total.kind == KIND_SIMULATED
        assert total.wall_seconds == 4.0
        assert total.simulated_seconds == 40.0
        assert total.events_executed == 400
        assert total.peak_tracemalloc_bytes == 500  # max, not sum
        assert total.runs == 8
        merged = total.hotspots[0]
        assert (merged.calls, merged.tottime, merged.cumtime) == (3, 0.30000000000000004, 0.7)

    def test_mixed_kinds(self):
        a = HostMetrics(kind=KIND_SIMULATED, wall_seconds=1.0)
        b = HostMetrics(kind=KIND_EMULATED, wall_seconds=1.0)
        assert aggregate_host_metrics([a, b]).kind == "mixed"

    def test_zero_wall_rates_are_zero(self):
        metrics = HostMetrics(kind=KIND_SIMULATED, wall_seconds=0.0)
        assert metrics.sim_seconds_per_wall_second == 0.0
        assert metrics.events_per_wall_second == 0.0


class TestSolverStrategyCounters:
    """The PR's solver counters flow observation -> metrics -> records."""

    def test_captured_from_observed_run(self):
        with HostMeter() as meter:
            observation = tiny_observation()
        metrics = simulated_host_metrics(meter, [observation])
        # The fast solver is the default: classes accumulate every solve,
        # and the micro workflow's repeated identical phases hit the memo.
        assert metrics.solver_classes > 0
        assert metrics.solver_memo_hits + metrics.solver_memo_misses > 0
        assert 0.0 <= metrics.memo_hit_rate <= 1.0
        assert observation.solver_stats["solver_classes"] == metrics.solver_classes

    def test_memo_hit_rate_property(self):
        assert HostMetrics(kind=KIND_SIMULATED, wall_seconds=0.0).memo_hit_rate == 0.0
        metrics = HostMetrics(
            kind=KIND_SIMULATED,
            wall_seconds=0.0,
            solver_memo_hits=3.0,
            solver_memo_misses=1.0,
        )
        assert metrics.memo_hit_rate == 0.75

    def test_record_round_trip_includes_counters(self):
        metrics = HostMetrics(
            kind=KIND_SIMULATED,
            wall_seconds=0.0,
            solver_classes=7.0,
            solver_memo_hits=5.0,
            solver_memo_misses=2.0,
            recomputes_coalesced=11.0,
        )
        record = metrics.as_record()
        assert record["solver_classes"] == 7.0
        assert record["memo_hit_rate"] == 5.0 / 7.0
        loaded = host_metrics_from_record(record)
        assert loaded.solver_classes == 7.0
        assert loaded.solver_memo_hits == 5.0
        assert loaded.solver_memo_misses == 2.0
        assert loaded.recomputes_coalesced == 11.0

    def test_aggregate_sums_counters(self):
        a = HostMetrics(
            kind=KIND_SIMULATED,
            wall_seconds=0.0,
            solver_classes=2.0,
            solver_memo_hits=1.0,
            solver_memo_misses=3.0,
            recomputes_coalesced=4.0,
        )
        b = HostMetrics(
            kind=KIND_SIMULATED,
            wall_seconds=0.0,
            solver_classes=5.0,
            solver_memo_hits=2.0,
            solver_memo_misses=1.0,
            recomputes_coalesced=6.0,
        )
        total = aggregate_host_metrics([a, b])
        assert total.solver_classes == 7.0
        assert total.solver_memo_hits == 3.0
        assert total.solver_memo_misses == 4.0
        assert total.recomputes_coalesced == 10.0
        assert total.memo_hit_rate == 3.0 / 7.0
