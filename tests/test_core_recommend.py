"""Unit tests for the recommendation engine (Table II rules + cost model)."""

import pytest

from repro.apps.suite import workflow_suite
from repro.core.configs import ALL_CONFIGS, P_LOCR, S_LOCW
from repro.core.recommend import (
    CostModelParameters,
    RecommendationEngine,
    table2_rules,
)
from repro.errors import ConfigurationError


class TestTable2Rules:
    def test_ten_rows_in_order(self):
        rules = table2_rules()
        assert [r.row for r in rules] == list(range(1, 11))

    def test_row_configs_match_paper(self):
        """Rows 1-4 -> S-LocW, 5-7 -> S-LocR, 8 -> P-LocW, 9-10 -> P-LocR."""
        by_row = {r.row: r.config.label for r in table2_rules()}
        assert all(by_row[i] == "S-LocW" for i in (1, 2, 3, 4))
        assert all(by_row[i] == "S-LocR" for i in (5, 6, 7))
        assert by_row[8] == "P-LocW"
        assert all(by_row[i] == "P-LocR" for i in (9, 10))

    def test_every_suite_workflow_matches_some_row(self):
        engine = RecommendationEngine(strategy="table2")
        for entry in workflow_suite():
            recommendation = engine.recommend(entry.spec)
            assert recommendation.matched_rule is not None

    def test_rules_pick_paper_config_for_suite(self):
        """The literal Table II engine reproduces the paper's pick for
        every illustrative workload."""
        engine = RecommendationEngine(strategy="table2")
        for entry in workflow_suite():
            recommendation = engine.recommend(entry.spec)
            assert recommendation.config.label == entry.paper_best, entry.spec.name


class TestEngine:
    def test_invalid_strategy(self):
        with pytest.raises(ConfigurationError):
            RecommendationEngine(strategy="magic")

    def test_hybrid_prefers_table2(self):
        engine = RecommendationEngine(strategy="hybrid")
        entry = workflow_suite()[0]
        assert engine.recommend(entry.spec).strategy == "table2"

    def test_model_strategy_always_answers(self):
        engine = RecommendationEngine(strategy="model")
        for entry in workflow_suite():
            recommendation = engine.recommend(entry.spec)
            assert recommendation.config in ALL_CONFIGS
            assert recommendation.strategy == "model"
            assert recommendation.reason

    def test_model_agrees_with_paper_on_majority(self):
        """The quantified §VIII cost model is approximate but should agree
        with the paper's pick on a solid majority of the suite."""
        engine = RecommendationEngine(strategy="model")
        entries = workflow_suite()
        hits = sum(
            engine.recommend(e.spec).config.label == e.paper_best for e in entries
        )
        assert hits >= int(0.55 * len(entries))

    def test_model_picks_locw_for_bandwidth_bound(self):
        from repro.apps.microbench import micro_workflow
        from repro.units import MiB

        engine = RecommendationEngine(strategy="model")
        recommendation = engine.recommend(micro_workflow(64 * MiB, 24))
        assert recommendation.config.writer_local

    def test_model_picks_parallel_for_compute_heavy(self):
        from repro.apps.analytics import gtc_matrixmult_kernel
        from repro.apps.gtc import gtc_workflow

        engine = RecommendationEngine(strategy="model")
        recommendation = engine.recommend(
            gtc_workflow(gtc_matrixmult_kernel(), ranks=8)
        )
        assert recommendation.config.parallel

    def test_custom_cost_parameters(self):
        params = CostModelParameters(contention_theta=1.0)
        engine = RecommendationEngine(strategy="model", params=params)
        # Absurdly low theta means contention always dominates: everything
        # should be scheduled serially.
        for entry in workflow_suite()[:4]:
            assert not engine.recommend(entry.spec).config.parallel

    def test_recommendation_carries_features(self):
        engine = RecommendationEngine()
        entry = workflow_suite()[0]
        recommendation = engine.recommend(entry.spec)
        assert recommendation.features.workflow_name == entry.spec.name
