"""Fast-solver equivalence oracle: class solving + memo vs. the reference.

The PR's central promise made executable: the equivalence-class solver with
its converged-state memo must reproduce the original per-flow solver *bit
for bit* — same rates, same duties, same iteration counts, same load
objects handed to ``observe()``/hooks — all the way up to entire campaigns
(identical cell ids, byte-identical deterministic payloads) and exported
Chrome traces.  Anything weaker and "3-10x faster" silently becomes "a
different simulator".
"""

import json

import pytest

from repro.core.configs import ALL_CONFIGS
from repro.errors import SimulationError
from repro.obs.campaign import run_campaign
from repro.obs.capture import observe_workflow
from repro.obs.export import chrome_trace
from repro.obs.store import canonical_json
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.pmem.device import OptaneDeviceResource
from repro.sim.engine import Engine
from repro.sim.flow import (
    SOLVER_FAST,
    SOLVER_REFERENCE,
    CapacityResource,
    Flow,
    FlowNetwork,
    solve_flow_set,
)
from repro.storage.objects import SnapshotSpec
from repro.units import KiB
from repro.workflow.kernels import FixedWorkKernel
from repro.workflow.spec import WorkflowSpec


def fixed_resource(capacity, name="r"):
    return CapacityResource(name, lambda load: capacity)


def make_flow(nbytes=100.0, kind="write", remote=False, resources=(), **kw):
    return Flow(
        nbytes=nbytes, kind=kind, remote=remote, resources=tuple(resources), **kw
    )


def clone_flow(flow):
    """An independent Flow with identical solver-relevant inputs."""
    twin = Flow(
        nbytes=flow.nbytes,
        kind=flow.kind,
        remote=flow.remote,
        resources=flow.resources,
        self_cap=flow.self_cap,
        op_bytes=flow.op_bytes,
        label=flow.label,
        issue_weight=flow.issue_weight,
    )
    twin.duty = flow.duty
    return twin


def contended_resource(name="shared"):
    """A load-sensitive capacity curve so classes actually interact."""
    return CapacityResource(
        name, lambda load: 100.0 / (1.0 + 0.25 * load.n_total)
    )


def heterogeneous_flow_set():
    """Three equivalence classes sharing two load-sensitive resources."""
    shared = contended_resource()
    side = CapacityResource("side", lambda load: 40.0 / (1.0 + load.n_reads))
    flows = []
    for i in range(6):
        flows.append(
            make_flow(
                kind="write",
                resources=[shared],
                self_cap=30.0,
                op_bytes=64 * KiB,
                label=f"w{i}",
            )
        )
    for i in range(4):
        flows.append(
            make_flow(
                kind="read",
                remote=True,
                resources=[shared, side],
                self_cap=50.0,
                op_bytes=4 * KiB,
                label=f"r{i}",
                issue_weight=0.6,
            )
        )
    flows.append(
        make_flow(kind="read", resources=[side], label="lone", self_cap=80.0)
    )
    return flows, [shared, side]


def solve_both(flows):
    """Solve clones of *flows* under both solvers; returns the two results."""
    fast_flows = [clone_flow(f) for f in flows]
    ref_flows = [clone_flow(f) for f in flows]
    fast = solve_flow_set(fast_flows, solver=SOLVER_FAST)
    ref = solve_flow_set(ref_flows, solver=SOLVER_REFERENCE)
    return fast_flows, fast, ref_flows, ref


def assert_results_identical(fast_flows, fast, ref_flows, ref):
    """Exact (not approximate) equality of everything the solver returns."""
    assert fast.iterations == ref.iterations
    for ff, rf in zip(fast_flows, ref_flows):
        assert fast.rates[ff] == ref.rates[rf]  # exact float equality
        assert ff.duty == rf.duty
    fast_loads = {r.name: load for r, load in fast.loads.items()}
    ref_loads = {r.name: load for r, load in ref.loads.items()}
    assert set(fast_loads) == set(ref_loads)
    for name in fast_loads:
        a, b = fast_loads[name], ref_loads[name]
        for field in (
            "n_read_local",
            "n_read_remote",
            "n_write_local",
            "n_write_remote",
            "raw_read_local",
            "raw_read_remote",
            "raw_write_local",
            "raw_write_remote",
            "read_op_bytes",
            "write_op_bytes",
            "congestion_write_remote",
        ):
            assert getattr(a, field) == getattr(b, field), (name, field)


class TestByteIdentity:
    def test_heterogeneous_set_bit_identical(self):
        flows, _ = heterogeneous_flow_set()
        assert_results_identical(*solve_both(flows))

    def test_identical_flows_bit_identical(self):
        r = contended_resource()
        flows = [
            make_flow(resources=[r], self_cap=25.0, op_bytes=256 * KiB)
            for _ in range(8)
        ]
        assert_results_identical(*solve_both(flows))

    def test_optane_device_resource_bit_identical(self):
        device = OptaneDeviceResource("pmem[0]", DEFAULT_CALIBRATION)
        flows = [
            make_flow(
                kind="write",
                remote=True,
                resources=[device],
                self_cap=2e9,
                op_bytes=256 * KiB,
                issue_weight=0.5,
            )
            for _ in range(12)
        ] + [
            make_flow(
                kind="read",
                resources=[device],
                self_cap=4e9,
                op_bytes=64 * KiB,
            )
            for _ in range(6)
        ]
        assert_results_identical(*solve_both(flows))

    def test_infinite_self_cap_and_unconstrained_paths(self):
        r = fixed_resource(10.0)
        flows = [
            make_flow(resources=[r]),  # device-bound, duty -> 1
            make_flow(resources=[r]),
            make_flow(resources=(), self_cap=5.0, label="cpu-only"),
        ]
        assert_results_identical(*solve_both(flows))

    def test_unbounded_flow_rejected_by_both(self):
        flow = make_flow(resources=())
        for solver in (SOLVER_FAST, SOLVER_REFERENCE):
            with pytest.raises(SimulationError, match="unbounded"):
                solve_flow_set([clone_flow(flow)], solver=solver)

    def test_unknown_solver_rejected(self):
        with pytest.raises(SimulationError, match="unknown solver"):
            solve_flow_set([make_flow(resources=[fixed_resource(1.0)])], solver="turbo")


class TestEquivalenceClasses:
    def test_identical_flows_form_one_class(self):
        r = fixed_resource(10.0)
        flows = [make_flow(resources=[r], self_cap=20.0) for _ in range(16)]
        result = solve_flow_set(flows, solver=SOLVER_FAST)
        assert result.classes == 1

    def test_signature_fields_split_classes(self):
        r = fixed_resource(10.0)
        flows = [
            make_flow(resources=[r], self_cap=20.0),
            make_flow(resources=[r], self_cap=20.0),  # same class as above
            make_flow(resources=[r], self_cap=21.0),  # self_cap differs
            make_flow(resources=[r], kind="read"),  # kind differs
            make_flow(resources=[r], remote=True),  # remote differs
            make_flow(resources=[r], op_bytes=4 * KiB),  # op size differs
            make_flow(resources=[r], issue_weight=0.5),  # weight differs
        ]
        result = solve_flow_set(flows, solver=SOLVER_FAST)
        assert result.classes == 6

    def test_divergent_duty_splits_classes(self):
        r = fixed_resource(10.0)
        a = make_flow(resources=[r], self_cap=20.0)
        b = make_flow(resources=[r], self_cap=20.0)
        b.duty = 0.5  # warm-started differently -> different trajectory
        result = solve_flow_set([a, b], solver=SOLVER_FAST)
        assert result.classes == 2

    def test_reference_solver_reports_no_classes(self):
        r = fixed_resource(10.0)
        result = solve_flow_set(
            [make_flow(resources=[r])], solver=SOLVER_REFERENCE
        )
        assert result.classes == 0


class TestConvergedStateMemo:
    def run_twice(self, make_flows, memo):
        first = solve_flow_set(make_flows(), solver=SOLVER_FAST, memo=memo)
        second = solve_flow_set(make_flows(), solver=SOLVER_FAST, memo=memo)
        return first, second

    def test_repeat_solve_hits_and_replays(self):
        from collections import OrderedDict

        r = fixed_resource(10.0)

        def flows():
            return [make_flow(resources=[r], self_cap=20.0) for _ in range(4)]

        memo = OrderedDict()
        first, second = self.run_twice(flows, memo)
        assert first.memo_attempted and not first.memo_hit
        assert second.memo_attempted and second.memo_hit
        # The hit replays the stored cost signal and loads, not zeros.
        assert second.iterations == first.iterations > 0
        assert list(second.rates.values()) == list(first.rates.values())
        assert [r.name for r in second.loads] == [r.name for r in first.loads]

    def test_stateless_resource_state_change_invisible_but_token_seen(self):
        from collections import OrderedDict

        class Tokened(CapacityResource):
            def __init__(self):
                super().__init__("tok", lambda load: self.cap)
                self.cap = 10.0

            def solver_state_token(self):
                return (self.cap,)

        resource = Tokened()

        def flows():
            return [make_flow(resources=[resource], self_cap=20.0)]

        memo = OrderedDict()
        first, second = self.run_twice(flows, memo)
        assert second.memo_hit
        resource.cap = 5.0  # token changes -> memo key changes -> miss
        third = solve_flow_set(flows(), solver=SOLVER_FAST, memo=memo)
        assert third.memo_attempted and not third.memo_hit
        assert list(third.rates.values())[0] != list(first.rates.values())[0]

    def test_opaque_stateful_resource_bypasses_memo(self):
        from collections import OrderedDict

        class Watching(CapacityResource):
            def observe(self, now, load):  # stateful, but no token
                pass

        resource = Watching("opaque", lambda load: 10.0)
        memo = OrderedDict()
        first, second = self.run_twice(
            lambda: [make_flow(resources=[resource])], memo
        )
        assert not first.memo_attempted and not second.memo_attempted
        assert not memo

    def test_no_memo_means_no_attempt(self):
        r = fixed_resource(10.0)
        result = solve_flow_set([make_flow(resources=[r])], solver=SOLVER_FAST)
        assert not result.memo_attempted

    def test_memo_capacity_bounded(self):
        from collections import OrderedDict

        from repro.sim.flow import MEMO_CAPACITY

        r = fixed_resource(1000.0)
        memo = OrderedDict()
        for i in range(MEMO_CAPACITY + 20):
            solve_flow_set(
                [make_flow(resources=[r], self_cap=float(i + 1))],
                solver=SOLVER_FAST,
                memo=memo,
            )
        assert len(memo) <= MEMO_CAPACITY


class TestNetworkCountersAndCoalescing:
    def drive(self, **net_kwargs):
        engine = Engine()
        net = FlowNetwork(engine, **net_kwargs)
        r = fixed_resource(10.0)

        def body(label):
            yield net.transfer(
                make_flow(nbytes=50.0, resources=[r], label=label)
            )

        engine.spawn(body("a"), name="a")
        engine.spawn(body("b"), name="b")
        engine.run()
        return engine, net

    def test_same_instant_completions_coalesce(self):
        _, net = self.drive()
        # Two identical flows complete at the same instant: their two
        # completion recomputes collapse into one flush solve.
        assert net.recomputes_coalesced == 1
        # start a, start b, one coalesced completion flush.
        assert net.recompute_count == 3
        assert net.flows_completed == 2

    def test_coalescing_disabled_restores_per_event_solves(self):
        _, net = self.drive(coalesce=False)
        assert net.recomputes_coalesced == 0
        assert net.recompute_count == 4  # two starts + two completions

    def test_coalescing_preserves_completion_times(self):
        engine_on, _ = self.drive()
        engine_off, _ = self.drive(coalesce=False)
        assert engine_on.now == engine_off.now == pytest.approx(10.0)

    def test_memo_counters_surface_on_network(self):
        _, net = self.drive()
        # Two flow-carrying solves (the coalesced flush solves an empty
        # set, which attempts neither classing nor the memo): the two
        # identical flows share one class per solve, and both distinct
        # flow-set keys miss the cold memo.
        assert net.solver_classes == 2
        assert net.memo_hits == 0
        assert net.memo_misses == 2

    def test_reference_network_skips_strategy_counters(self):
        _, net = self.drive(solver=SOLVER_REFERENCE)
        assert net.solver_classes == 0
        assert net.memo_hits == net.memo_misses == 0
        assert net.solver_iterations > 0

    def test_poke_clears_memo(self):
        engine = Engine()
        net = FlowNetwork(engine)
        state = {"capacity": 10.0}
        r = CapacityResource("mutable", lambda load: state["capacity"])

        def body():
            yield net.transfer(make_flow(nbytes=100.0, resources=[r]))

        def throttle():
            state["capacity"] = 5.0
            net.poke()

        engine.spawn(body(), name="p")
        engine.schedule(2.0, throttle)
        engine.run()
        # The capacity change is invisible to the memo key; correctness
        # requires poke() to flush the memo and re-solve at the flush for
        # the poke's instant (no virtual time passes in between) — a
        # stale hit would keep the 10 B/s rate and finish at 12s.
        assert engine.now == pytest.approx(18.0)

    def test_env_variables_configure_network(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", SOLVER_REFERENCE)
        monkeypatch.setenv("REPRO_COALESCE", "0")
        net = FlowNetwork(Engine())
        assert net.solver == SOLVER_REFERENCE
        assert net.coalesce is False

    def test_bad_solver_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "turbo")
        with pytest.raises(SimulationError, match="unknown solver"):
            FlowNetwork(Engine())


def oracle_spec():
    return WorkflowSpec(
        name="oracle@4",
        ranks=4,
        iterations=3,
        snapshot=SnapshotSpec(object_bytes=64 * KiB, objects_per_snapshot=16),
        sim_compute=FixedWorkKernel(seconds=0.05),
        analytics_compute=FixedWorkKernel(seconds=0.02),
    )


class TestDeterminismOracle:
    """Fast paths on vs. ``REPRO_SOLVER=reference``: identical outputs."""

    def campaign_under(self, monkeypatch, solver):
        monkeypatch.setenv("REPRO_SOLVER", solver)
        return run_campaign(suite="micro", iterations=1)

    def test_micro_campaign_identical_cells(self, monkeypatch):
        fast = self.campaign_under(monkeypatch, SOLVER_FAST)
        ref = self.campaign_under(monkeypatch, SOLVER_REFERENCE)
        assert [c.cell_id for c in fast.cells] == [
            c.cell_id for c in ref.cells
        ]
        assert [canonical_json(c.deterministic) for c in fast.cells] == [
            canonical_json(c.deterministic) for c in ref.cells
        ]

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.label)
    def test_observed_runs_identical_makespans_and_traces(
        self, monkeypatch, config
    ):
        exports = {}
        for solver in (SOLVER_FAST, SOLVER_REFERENCE):
            monkeypatch.setenv("REPRO_SOLVER", solver)
            observation = observe_workflow(oracle_spec(), config)
            makespan = observation.result.makespan
            trace = json.dumps(
                chrome_trace([observation]), sort_keys=True
            ).encode()
            exports[solver] = (makespan.hex(), trace)
        assert exports[SOLVER_FAST] == exports[SOLVER_REFERENCE]
