"""Shared fixtures.

The expensive artifact — exhaustively tuning all 18 suite workflows — is
computed once per session and shared by the reproduction, recommendation,
and metrics integration tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.apps.suite import SuiteEntry, workflow_suite
from repro.core.autotune import ExhaustiveTuner, TuningReport
from repro.pmem.calibration import DEFAULT_CALIBRATION


@pytest.fixture(scope="session")
def cal():
    """The default first-generation Optane calibration."""
    return DEFAULT_CALIBRATION


@pytest.fixture(scope="session")
def suite_entries():
    """The 18-workflow suite with paper expectations."""
    return workflow_suite()


@pytest.fixture(scope="session")
def suite_reports(suite_entries) -> Dict[Tuple[str, int], TuningReport]:
    """Oracle (all-configuration) reports for every suite workflow."""
    tuner = ExhaustiveTuner()
    return {entry.key: tuner.tune(entry.spec) for entry in suite_entries}


@pytest.fixture(scope="session")
def suite_by_key(suite_entries) -> Dict[Tuple[str, int], SuiteEntry]:
    return {entry.key: entry for entry in suite_entries}
