"""Trace analytics: critical paths, blame attribution, explainable diffs."""

import copy
import json

import pytest

from repro.apps.suite import build_workflow
from repro.core.configs import ALL_CONFIGS, SchedulerConfig
from repro.obs.campaign import (
    _config_payload,
    campaign_from_store,
    diff_campaigns,
    run_campaign,
)
from repro.obs.capture import observe_workflow
from repro.obs.cli import main as obs_main
from repro.obs.explain import (
    BUCKETS,
    CAUSE_BUCKETS,
    attribution_from_phases,
    attribution_record,
    bucket_shift,
    campaign_bottlenecks,
    cell_bottleneck,
    config_attribution,
    critical_path,
    drift_explanation,
    explain_observation,
    explain_report,
    explain_shift,
    flip_explanation,
    path_context,
    utilization_rows,
    validate_explain_report,
    why_line,
)
from repro.obs.probes import step_fraction_above, step_time_weighted_mean
from repro.obs.spans import last_finishing_leaf, leaf_tracks
from repro.obs.store import CampaignStore
from repro.sim.engine import TIME_EPSILON


@pytest.fixture(scope="module")
def observations():
    """One observed run per Table I configuration (micro-2k@8, 2 iters)."""
    spec = build_workflow("micro-2k", ranks=8, iterations=2)
    return {
        config.label: observe_workflow(spec, config) for config in ALL_CONFIGS
    }


@pytest.fixture(scope="module")
def explanations(observations):
    return {
        label: explain_observation(obs) for label, obs in observations.items()
    }


# ----------------------------------------------------------------------
# Critical path: tiling, sum-to-makespan, gating.
# ----------------------------------------------------------------------
def test_segments_tile_makespan_for_every_config(explanations):
    for label, explanation in explanations.items():
        segments = explanation.segments
        assert segments, label
        assert segments[0].start == pytest.approx(0.0, abs=TIME_EPSILON)
        assert segments[-1].end == pytest.approx(
            explanation.makespan, abs=TIME_EPSILON
        )
        for before, after in zip(segments, segments[1:]):
            assert after.start == pytest.approx(before.end, abs=TIME_EPSILON)


def test_buckets_sum_to_makespan_within_epsilon(explanations):
    for label, explanation in explanations.items():
        total = sum(explanation.buckets.values())
        # Telescoping boundaries: the sum is exact up to float noise.
        assert abs(total - explanation.makespan) <= max(
            TIME_EPSILON, 1e-12 * explanation.makespan
        ), label
        assert set(explanation.buckets) == set(BUCKETS)
        assert all(v >= 0 for v in explanation.buckets.values()), label


def test_no_idle_on_fully_traced_runs(explanations):
    # The workflow tracks cover the whole run; any idle would mean the
    # gating chain lost time.
    for label, explanation in explanations.items():
        assert explanation.buckets["idle"] == pytest.approx(
            0.0, abs=TIME_EPSILON
        ), label


def test_critical_track_is_a_reader(explanations):
    # The makespan ends when the last reader finishes consuming.
    for label, explanation in explanations.items():
        assert explanation.critical_track.startswith("reader["), label


def test_serial_path_jumps_to_writer_track(explanations):
    # Serial readers start after writers-complete with no wait record:
    # the walk must jump the gap onto the writer track.
    components = {s.component for s in explanations["S-LocW"].segments}
    assert components == {"writer", "reader"}


def test_parallel_waits_stay_on_path_as_drain(explanations):
    for label in ("P-LocW", "P-LocR"):
        explanation = explanations[label]
        assert explanation.buckets["drain"] > 0, label
        drains = [s for s in explanation.segments if s.bucket == "drain"]
        assert drains and all(s.phase == "wait" for s in drains)
        # Drain is blamed on the channel socket's PMEM device.
        expected = f"pmem[{explanation.channel_socket}]"
        assert all(expected in s.resources for s in drains), label


def test_remote_vs_local_io_classification(explanations):
    # S-LocW: writer local (pmem), reader remote; S-LocR is the mirror.
    assert explanations["S-LocW"].buckets["pmem"] > 0
    assert explanations["S-LocW"].buckets["remote"] > 0
    for label, explanation in explanations.items():
        config = SchedulerConfig.from_label(label)
        for segment in explanation.segments:
            if segment.phase == "write":
                assert segment.bucket == (
                    "pmem" if config.writer_local else "remote"
                ), label
            if segment.phase == "read":
                assert segment.bucket == (
                    "pmem" if not config.writer_local else "remote"
                ), label


def test_gated_by_names_the_gating_span(explanations):
    segments = explanations["P-LocR"].segments
    assert segments[0].gated_by == "t=0"
    for segment in segments[1:]:
        assert segment.gated_by != "t=0"


def test_critical_path_empty_and_degenerate():
    context = path_context("S-LocW")
    assert critical_path([], 0.0, context) == []
    gaps = critical_path([], 5.0, context)
    assert len(gaps) == 1 and gaps[0].bucket == "idle"
    assert gaps[0].duration == pytest.approx(5.0)


def test_path_segment_record_roundtrip(explanations):
    record = explanations["S-LocW"].segments[0].as_record()
    assert set(record) == {
        "start",
        "end",
        "bucket",
        "component",
        "rank",
        "phase",
        "iteration",
        "resources",
        "gated_by",
    }
    assert isinstance(record["resources"], list)


# ----------------------------------------------------------------------
# Determinism.
# ----------------------------------------------------------------------
def test_explain_report_byte_identical_across_runs():
    def render():
        spec = build_workflow("micro-64mb", ranks=8, iterations=2)
        explanations = [
            explain_observation(observe_workflow(spec, config))
            for config in ALL_CONFIGS
        ]
        return json.dumps(explain_report(explanations), sort_keys=True)

    assert render() == render()


# ----------------------------------------------------------------------
# Winner re-derivation (the Table II acceptance criterion).
# ----------------------------------------------------------------------
def test_explain_rederives_winner_and_attributes_it(explanations):
    # argmin over explain's own makespans must agree with the campaign
    # winner, and each run must carry a dominant actionable bucket.
    winner = min(explanations, key=lambda label: explanations[label].makespan)
    spec = build_workflow("micro-2k", ranks=8, iterations=2)
    from repro.metrics.analysis import best_config
    from repro.workflow.runner import run_workflow

    results = [
        run_workflow(spec, config=config) for config in ALL_CONFIGS
    ]
    assert winner == best_config(results)
    for explanation in explanations.values():
        assert explanation.dominant in CAUSE_BUCKETS
        assert 0.0 < explanation.dominant_fraction <= 1.0
        assert explanation.coupling.startswith("writer->reader via pmem[")


# ----------------------------------------------------------------------
# Attribution records + phase estimator.
# ----------------------------------------------------------------------
def test_attribution_record_shape(explanations):
    record = attribution_record(explanations["P-LocW"])
    assert set(record["buckets"]) == set(BUCKETS)
    assert record["dominant"] in CAUSE_BUCKETS
    assert "estimated" not in record
    assert record["channel_socket"] == 0  # P-LocW: channel on writer socket


def test_attribution_from_phases_sums_and_flags():
    phases = {
        "writer": {"compute": 1.0, "io": 2.0, "wait": 0.5},
        "reader": {"compute": 1.5, "io": 1.0, "wait": 3.0},
    }
    record = attribution_from_phases("S-LocW", 10.0, phases)
    assert record["estimated"] is True
    assert sum(record["buckets"].values()) == pytest.approx(10.0)
    # Serial: writer wait is barrier, reader wait is drain, writer io is
    # local (pmem), reader io remote.
    assert record["buckets"]["barrier"] == pytest.approx(0.5)
    assert record["buckets"]["drain"] == pytest.approx(3.0)
    assert record["buckets"]["pmem"] == pytest.approx(2.0)
    assert record["buckets"]["remote"] == pytest.approx(1.0)
    assert record["buckets"]["idle"] == pytest.approx(1.0)
    parallel = attribution_from_phases("P-LocR", 6.0, phases)
    # Parallel: writer phases surface as reader drain, not path time.
    assert parallel["buckets"]["barrier"] == 0.0
    assert parallel["buckets"]["compute"] == pytest.approx(1.5)


def test_estimator_matches_precise_buckets_on_micro(observations):
    # Micro workflows have no compute jitter worth speaking of: the
    # estimator and the critical-path engine agree closely.
    for label, observation in observations.items():
        precise = attribution_record(explain_observation(observation))
        payload = _config_payload(observation)
        estimated = attribution_from_phases(
            label, payload["makespan"], payload["phases"]
        )
        assert estimated["dominant"] == precise["dominant"], label


def test_config_attribution_prefers_stored_falls_back_to_phases(observations):
    payload = _config_payload(observations["P-LocR"])
    stored = config_attribution(payload)
    assert stored is payload["attribution"]
    legacy = {k: v for k, v in payload.items() if k != "attribution"}
    fallback = config_attribution(legacy)
    assert fallback is not None and fallback["estimated"] is True
    assert config_attribution({"makespan": 1.0}) is None


def test_why_line_phrasing():
    assert why_line(None) == "-"
    line = why_line(
        {
            "dominant": "drain",
            "dominant_fraction": 0.382,
            "channel_socket": 1,
            "estimated": True,
        }
    )
    assert line == "drain 38.2% on pmem[1] (est.)"
    assert why_line({"dominant": "compute", "dominant_fraction": 0.9}) == (
        "compute 90.0%"
    )


# ----------------------------------------------------------------------
# Diff explanations.
# ----------------------------------------------------------------------
def _attr(**buckets):
    full = {bucket: 0.0 for bucket in BUCKETS}
    full.update(buckets)
    return {"buckets": full, "channel_socket": 1}


def test_bucket_shift_picks_largest_actionable_move():
    shift = bucket_shift(
        _attr(drain=10.0, compute=5.0), _attr(drain=14.0, compute=5.5)
    )
    assert shift == ("drain", 10.0, 14.0)


def test_bucket_shift_ignores_noise_and_idle():
    noisy = bucket_shift(
        _attr(drain=10.0), _attr(drain=10.0 + 1e-9)
    )
    assert noisy is None
    a, b = _attr(drain=10.0), _attr(drain=10.0)
    a["buckets"]["idle"], b["buckets"]["idle"] = 0.0, 5.0
    assert bucket_shift(a, b) is None


def test_explain_shift_sentence():
    sentence = explain_shift(_attr(drain=12.3), _attr(drain=17.0))
    assert sentence == "drain on pmem[1] grew 38.2% (12.3 s -> 17.0 s)"
    shrank = explain_shift(_attr(remote=4.0), _attr(remote=2.0))
    assert "shrank 50.0%" in shrank and "remote on pmem[1]" in shrank
    fresh = explain_shift(_attr(), _attr(drain=2.0))
    assert "grew to 2.0 s" in fresh
    tagged = explain_shift(
        dict(_attr(drain=1.0), estimated=True), _attr(drain=2.0)
    )
    assert tagged.endswith("[estimated]")


def test_flip_explanation_prefers_before_winner_and_falls_back():
    configs_a = {"S-LocW": {"attribution": _attr(drain=10.0)}}
    configs_b = {"S-LocW": {"attribution": _attr(drain=13.8)}}
    line = flip_explanation("S-LocW", "P-LocR", configs_a, configs_b)
    assert line.startswith("flipped because S-LocW drain on pmem[1] grew 38")
    assert (
        flip_explanation("S-LocW", "P-LocR", {}, {})
        == "no attribution recorded for either campaign"
    )


def test_drift_explanation_reads_payload_entries():
    entry_a = {"attribution": _attr(pmem=2.0)}
    entry_b = {"attribution": _attr(pmem=3.0)}
    assert "pmem on pmem[1] grew 50.0%" in drift_explanation(entry_a, entry_b)
    assert drift_explanation({}, entry_b) is None


# ----------------------------------------------------------------------
# Campaign integration: stored attribution, bottlenecks, diff lines.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def micro_campaign(tmp_path_factory):
    store = CampaignStore(str(tmp_path_factory.mktemp("camps")))
    run = run_campaign(suite="micro", name="explain-t1", store=store)
    return store, run


def test_config_payload_stores_attribution(observations):
    payload = _config_payload(observations["S-LocR"])
    attribution = payload["attribution"]
    assert set(attribution["buckets"]) == set(BUCKETS)
    assert abs(
        sum(attribution["buckets"].values()) - payload["makespan"]
    ) <= max(TIME_EPSILON, 1e-12 * payload["makespan"])


def test_cell_bottleneck_and_campaign_ranking(micro_campaign):
    _, run = micro_campaign
    for cell in run.cells:
        bottleneck = cell.bottleneck
        assert bottleneck is not None
        assert bottleneck["winner"] == cell.winner
        assert bottleneck["dominant"] in CAUSE_BUCKETS
        assert not bottleneck["estimated"]
    rows = campaign_bottlenecks(run.cells)
    assert len(rows) == len(run.cells)
    fractions = [row["fraction"] for row in rows]
    assert fractions == sorted(fractions, reverse=True)


def test_cell_bottleneck_none_without_data():
    assert cell_bottleneck({"winner": "S-LocW", "configs": {}}) is None


def test_diff_emits_explanation_for_every_flip(micro_campaign):
    store, run = micro_campaign
    before = campaign_from_store(store.read("explain-t1"))
    after = copy.deepcopy(before)
    for cell in after.cells:
        # Force a flip: inflate the winner's makespan and drain bucket.
        configs = cell.deterministic["configs"]
        entry = configs[cell.winner]
        entry["makespan"] *= 10.0
        entry["attribution"]["buckets"]["drain"] += entry["makespan"]
        losers = [label for label in configs if label != cell.winner]
        cell.deterministic["winner"] = min(
            losers, key=lambda label: configs[label]["makespan"]
        )
    diff = diff_campaigns(before, after)
    assert diff.winner_flips
    for flip in diff.winner_flips:
        assert flip.explanation
        assert "drain" in flip.explanation
    text = diff.render_text()
    assert text.count("why: ") >= len(diff.winner_flips)
    markdown = diff.render_markdown()
    assert "| why |" in markdown
    for drift in diff.drifts:
        assert drift.explanation


def test_diff_identical_campaigns_has_no_flips(micro_campaign):
    store, _ = micro_campaign
    run = campaign_from_store(store.read("explain-t1"))
    diff = diff_campaigns(run, run)
    assert not diff.winner_flips and not diff.drifts


# ----------------------------------------------------------------------
# Report schema validation.
# ----------------------------------------------------------------------
def test_validate_explain_report_accepts_real_report(explanations):
    document = explain_report(list(explanations.values()))
    assert validate_explain_report(document) == []


def test_validate_explain_report_rejects_bad_documents(explanations):
    assert validate_explain_report([]) == ["report: not a JSON object"]
    assert validate_explain_report({"record": "nope"})
    good = explain_report([explanations["S-LocW"]])

    broken = json.loads(json.dumps(good))
    broken["runs"][0]["buckets"]["compute"] += 1.0
    assert any("sum" in p for p in validate_explain_report(broken))

    unknown = json.loads(json.dumps(good))
    unknown["runs"][0]["buckets"]["swap"] = 0.0
    assert any("unknown bucket" in p for p in validate_explain_report(unknown))

    torn = json.loads(json.dumps(good))
    torn["runs"][0]["segments"][0]["end"] += 0.5
    assert any(
        "tile" in p or "ends at" in p for p in validate_explain_report(torn)
    )

    negative = json.loads(json.dumps(good))
    negative["runs"][0]["buckets"]["pmem"] = -1.0
    assert any(
        "non-negative" in p for p in validate_explain_report(negative)
    )


# ----------------------------------------------------------------------
# Utilization (summary satellite).
# ----------------------------------------------------------------------
def test_utilization_rows_fractions(observations):
    rows = utilization_rows(observations["P-LocR"])
    names = {row["name"] for row in rows}
    assert {"writer", "reader"} <= names
    assert any(row["kind"] == "resource" for row in rows)
    for row in rows:
        for field in ("busy", "wait", "idle"):
            assert 0.0 <= row[field] <= 1.0 + 1e-9, row


def test_step_fraction_helpers():
    samples = [(0.0, 1.0), (2.0, 0.0), (3.0, 2.0)]
    assert step_fraction_above(samples, 4.0, 0.0) == pytest.approx(0.75)
    assert step_fraction_above(samples, 4.0, 1.0) == pytest.approx(0.25)
    assert step_fraction_above([], 4.0, 0.0) == 0.0
    assert step_fraction_above(samples, 0.0, 0.0) == 0.0
    assert step_time_weighted_mean(samples, 4.0) == pytest.approx(1.0)
    assert step_time_weighted_mean([], 4.0) == 0.0


def test_span_track_helpers(observations):
    spans = observations["S-LocW"].spans()
    tracks = leaf_tracks(spans)
    assert list(tracks) == sorted(tracks)
    for track in tracks.values():
        starts = [span.start for span in track]
        assert starts == sorted(starts)
    last = last_finishing_leaf(spans)
    assert last is not None
    assert last.end == max(s.end for s in tracks[(last.component, last.rank)])
    assert last_finishing_leaf([]) is None


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------
def test_cli_explain_run_json_and_validate(tmp_path, capsys):
    out = tmp_path / "explain.json"
    assert (
        obs_main(
            [
                "explain",
                "run",
                "--config",
                "all",
                "--iterations",
                "2",
                "--format",
                "json",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    document = json.loads(out.read_text())
    assert validate_explain_report(document) == []
    assert len(document["runs"]) == len(ALL_CONFIGS)
    assert obs_main(["explain", "validate", str(out)]) == 0
    capsys.readouterr()
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"record": "nope"}))
    assert obs_main(["explain", "validate", str(bad)]) == 1


def test_cli_explain_run_text_segments(capsys):
    assert (
        obs_main(
            ["explain", "run", "--iterations", "2", "--segments"]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "critical path (oldest first):" in output
    assert "dominant" in output


def test_cli_explain_top_and_diff(micro_campaign, capsys):
    store, _ = micro_campaign
    assert (
        obs_main(["explain", "top", "explain-t1", "--dir", store.root]) == 0
    )
    top = capsys.readouterr().out
    assert "bottleneck" in top and "micro-2k@8" in top
    assert (
        obs_main(
            [
                "explain",
                "diff",
                "explain-t1",
                "explain-t1",
                "--dir",
                store.root,
            ]
        )
        == 0
    )
    assert "no attribution shifts" in capsys.readouterr().out


def test_cli_summary_includes_utilization(capsys):
    assert obs_main(["summary", "--iterations", "2"]) == 0
    output = capsys.readouterr().out
    assert "utilization" in output
    assert "busy" in output


# ----------------------------------------------------------------------
# Service integration.
# ----------------------------------------------------------------------
def test_regret_entry_carries_bottleneck(tmp_path):
    from repro.service.scheduler import ServiceScheduler

    scheduler = ServiceScheduler(root=str(tmp_path / "service"))
    scheduler.submit_suite(suite="micro")
    report = scheduler.run()
    assert report.regrets
    for entry in report.regrets:
        assert entry["bottleneck"] in CAUSE_BUCKETS
        assert "on pmem[" in entry["why"] or "%" in entry["why"]
    text = report.render_text()
    assert "bottleneck" in text
