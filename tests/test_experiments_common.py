"""Unit tests for the experiment-harness building blocks (no simulation)."""

import pytest

from repro.experiments.common import Claim, ExperimentResult, gap_claim
from repro.experiments.runner import _markdown_report, main


class TestGapClaim:
    def test_same_direction_and_magnitude_holds(self):
        claim = gap_claim("c", "d", paper_gap=0.25, measured_gap=0.22)
        assert claim.holds
        assert claim.paper_value == "+25.0%"
        assert claim.measured_value == "+22.0%"

    def test_wrong_direction_fails(self):
        claim = gap_claim("c", "d", paper_gap=0.25, measured_gap=-0.25)
        assert not claim.holds

    def test_abs_tolerance_saves_small_misses(self):
        claim = gap_claim(
            "c", "d", paper_gap=0.06, measured_gap=-0.01, abs_tolerance=0.08
        )
        assert claim.holds

    def test_rel_tolerance_bounds_magnitude(self):
        assert gap_claim(
            "c", "d", paper_gap=0.10, measured_gap=0.60, rel_tolerance=1.0,
            abs_tolerance=0.0,
        ).holds is False
        assert gap_claim(
            "c", "d", paper_gap=0.10, measured_gap=0.18, rel_tolerance=1.0,
            abs_tolerance=0.0,
        ).holds is True


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="figX",
            title="Title",
            description="Desc",
            artifacts=["BAR CHART"],
            claims=[
                Claim("figX.a", "claim a", "1", "1", True),
                Claim("figX.b", "claim b", "2", "3", False, note="why"),
            ],
        )

    def test_claims_held(self):
        assert self.make().claims_held == 1

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "figX" in text
        assert "BAR CHART" in text
        assert "[OK ]" in text and "[MISS]" in text
        assert "why" in text

    def test_markdown_report(self):
        report = _markdown_report([self.make()])
        assert report.startswith("# EXPERIMENTS")
        assert "1/2" in report
        assert "| claim a | 1 | 1 | reproduced |" in report
        assert "**MISS**" in report


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "table02" in out

    def test_single_experiment(self, capsys):
        assert main(["table01"]) == 0
        out = capsys.readouterr().out
        assert "S-LocW" in out

    def test_unknown_experiment(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["fig99"])

    def test_markdown_flag(self, capsys):
        assert main(["table01", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# EXPERIMENTS")
