"""Unit tests for the Optane device resource and space accounting."""

import pytest

from repro.errors import StorageError
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.pmem.device import OptaneDevice, OptaneDeviceResource
from repro.sim.flow import Flow, ResourceLoad
from repro.units import GB, GiB, MiB

CAL = DEFAULT_CALIBRATION


def device_resource():
    return OptaneDeviceResource("pmem[test]", CAL)


def flow(kind="write", remote=False, op_bytes=64 * MiB, self_cap=1e18):
    return Flow(
        nbytes=1.0,
        kind=kind,
        remote=remote,
        resources=(),
        self_cap=self_cap,
        op_bytes=op_bytes,
    )


def load(**kw):
    defaults = dict(read_op_bytes=64 * MiB, write_op_bytes=64 * MiB)
    defaults.update(kw)
    return ResourceLoad(**defaults)


class TestShares:
    def test_solo_local_writer_gets_single_thread_rate(self):
        share = device_resource().share(
            load(n_write_local=1.0, raw_write_local=1), flow("write")
        )
        assert share == pytest.approx(CAL.single_thread_write(), rel=0.01)

    def test_solo_local_reader_gets_single_thread_rate(self):
        share = device_resource().share(
            load(n_read_local=1.0, raw_read_local=1), flow("read")
        )
        assert share == pytest.approx(CAL.single_thread_read(), rel=0.01)

    def test_writers_share_capacity(self):
        l = load(n_write_local=8.0, raw_write_local=8)
        share = device_resource().share(l, flow("write"))
        assert share * 8 <= CAL.local_write_peak

    def test_reads_crushed_by_many_writers(self):
        quiet = device_resource().share(
            load(n_read_local=8.0, raw_read_local=8), flow("read")
        )
        mixed = device_resource().share(
            load(
                n_read_local=8.0,
                raw_read_local=8,
                n_write_local=24.0,
                raw_write_local=24,
            ),
            flow("read"),
        )
        assert mixed < 0.4 * quiet

    def test_remote_write_pays_thread_cap(self):
        share = device_resource().share(
            load(n_write_remote=1.0, raw_write_remote=1), flow("write", remote=True)
        )
        assert share <= CAL.remote_write_thread_cap

    def test_remote_write_knee_at_24_raw_streams(self):
        local = device_resource().share(
            load(n_write_local=24.0, raw_write_local=24), flow("write")
        )
        remote = device_resource().share(
            load(n_write_remote=24.0, raw_write_remote=24), flow("write", remote=True)
        )
        assert remote < 0.85 * local

    def test_sparse_remote_writers_escape_knee(self):
        """24 raw writers at low duty (software-bound) keep most bandwidth."""
        dense = device_resource().share(
            load(n_write_remote=24.0, raw_write_remote=24), flow("write", remote=True)
        )
        sparse = device_resource().share(
            load(n_write_remote=2.0, raw_write_remote=24), flow("write", remote=True)
        )
        # Sparse load: per-thread share is computed at low effective
        # concurrency, so it is *larger*.
        assert sparse > dense


class TestPollers:
    def test_poller_bookkeeping(self):
        resource = device_resource()
        resource.add_poller(remote=True)
        resource.add_poller(remote=False)
        assert resource.poller_count == 2
        resource.remove_poller(remote=True)
        resource.remove_poller(remote=False)
        assert resource.poller_count == 0

    def test_remove_unregistered_poller_raises(self):
        with pytest.raises(StorageError):
            device_resource().remove_poller(remote=False)

    def test_pollers_slow_writes(self):
        resource = device_resource()
        l = load(n_write_local=8.0, raw_write_local=8)
        before = resource.share(l, flow("write"))
        for _ in range(16):
            resource.add_poller(remote=True)
        after = resource.share(l, flow("write"))
        assert after < before


class TestCongestionEwma:
    def test_ewma_rises_under_sustained_remote_writes(self):
        resource = device_resource()
        l = load(n_write_remote=16.0, raw_write_remote=16)
        l.congestion_write_remote = 16.0
        resource.observe(0.0, l)
        resource.observe(5.0, l)
        assert resource.remote_write_ewma > 10.0

    def test_ewma_decays_when_idle(self):
        resource = device_resource()
        l = load(n_write_remote=16.0, raw_write_remote=16)
        l.congestion_write_remote = 16.0
        resource.observe(0.0, l)
        resource.observe(5.0, l)  # hot
        resource.observe(5.0 + 1e-9, ResourceLoad())  # writes stop
        resource.observe(20.0, ResourceLoad())  # long idle gap
        assert resource.remote_write_ewma < 1.0

    def test_idle_gap_cools_before_new_burst(self):
        """The EWMA integrates the *held* load, not the incoming one."""
        resource = device_resource()
        hot = load(n_write_remote=24.0, raw_write_remote=24)
        hot.congestion_write_remote = 24.0
        resource.observe(0.0, ResourceLoad())  # idle interval [0, 10)
        resource.observe(10.0, hot)  # burst arrives at t=10
        # The arrival observation itself must not have warmed the EWMA.
        assert resource.remote_write_ewma == pytest.approx(0.0, abs=1e-9)


class TestOptaneDevice:
    def test_capacity_accounting(self):
        device = OptaneDevice(socket_id=0, capacity_bytes=10 * GiB)
        device.allocate(4 * GiB)
        assert device.allocated_bytes == 4 * GiB
        assert device.free_bytes == 6 * GiB
        device.free(4 * GiB)
        assert device.allocated_bytes == 0

    def test_over_allocation_raises(self):
        device = OptaneDevice(socket_id=0, capacity_bytes=1 * GiB)
        with pytest.raises(StorageError, match="exhausted"):
            device.allocate(2 * GiB)

    def test_invalid_free_raises(self):
        device = OptaneDevice(socket_id=0, capacity_bytes=1 * GiB)
        with pytest.raises(StorageError):
            device.free(1)

    def test_negative_allocation_raises(self):
        device = OptaneDevice(socket_id=0, capacity_bytes=1 * GiB)
        with pytest.raises(StorageError):
            device.allocate(-1)

    def test_default_capacity_is_paper_testbed(self):
        """§V: 6 x 512 GB Optane DIMMs per socket."""
        assert OptaneDevice(socket_id=0).capacity_bytes == 6 * 512 * GiB

    def test_interleave_matches_calibration(self):
        device = OptaneDevice(socket_id=0)
        assert device.interleave.chunk_bytes == CAL.interleave_chunk
        assert device.interleave.ndimms == CAL.dimms_per_socket
