"""Service telemetry: lifecycle spans, stitched traces, byte-identity."""

import json
import os

import pytest

from repro.obs.export import validate_chrome_trace
from repro.obs.store import CampaignStore
from repro.obs.telemetry import (
    mint_trace_id,
    validate_exposition,
    validate_snapshot,
)
from repro.service.queue import JobQueue
from repro.service.scheduler import RESULTS_CAMPAIGN, ServiceScheduler
from repro.service.telemetry import (
    LATENCY_METRIC,
    TELEMETRY_FILENAME,
    ServiceTelemetry,
)


def _run_micro(root, enabled=True, jobs=1):
    telemetry = ServiceTelemetry(root, enabled=enabled)
    scheduler = ServiceScheduler(root=root, jobs=jobs, telemetry=telemetry)
    scheduler.submit_suite(suite="micro")
    report = scheduler.run()
    assert report.failed == 0
    return scheduler, telemetry, report


# ----------------------------------------------------------------------
# Lifecycle instrumentation end to end (serial path).
# ----------------------------------------------------------------------
def test_run_produces_metrics_spans_and_snapshots(tmp_path):
    root = str(tmp_path / "svc")
    scheduler, telemetry, report = _run_micro(root)
    assert report.executed == 2

    submitted = telemetry.registry.counter(
        "repro_service_jobs_submitted_total"
    )
    assert submitted.value == 2
    misses = telemetry.registry.counter("repro_service_cache_misses_total")
    assert misses.value == 2
    latency = telemetry.registry.histogram(LATENCY_METRIC)
    assert latency.count == 2
    assert latency.quantile(0.99) >= latency.quantile(0.5) >= 0.0

    by_trace = telemetry.recorder.by_trace()
    job_ids = [job.job_id for job in scheduler.queue.load()]
    assert set(by_trace) == {mint_trace_id(job_id) for job_id in job_ids}
    for trace_id, spans in by_trace.items():
        names = {span.name for span in spans}
        assert {
            "submit", "schedule", "queue-wait", "worker", "simulate",
            "cache-store", "job",
        } <= names
        root_span = next(span for span in spans if span.name == "job")
        assert root_span.span_id == f"{trace_id}/root"
        worker = next(span for span in spans if span.name == "worker")
        assert worker.parent_id == f"{trace_id}/root"
        simulate = next(span for span in spans if span.name == "simulate")
        # The worker's simulate span parents under the deterministic
        # worker span id — stitched without any cross-process round trip.
        assert simulate.parent_id == worker.span_id
        assert root_span.start <= worker.start <= worker.end <= (
            root_span.end + 1e-6
        )

    # Per-round snapshots plus the final one, all valid, appended JSONL.
    assert os.path.exists(telemetry.snapshot_path)
    with open(telemetry.snapshot_path, "r", encoding="utf-8") as handle:
        snapshots = [json.loads(line) for line in handle if line.strip()]
    assert len(snapshots) >= 2
    for snapshot in snapshots:
        assert validate_snapshot(snapshot) == []
    assert snapshots[-1]["final"] is True
    assert snapshots[-1]["report"]["record"] == "service_run"
    assert not any(snapshot["final"] for snapshot in snapshots[:-1])


def test_exposition_of_live_run_validates(tmp_path):
    root = str(tmp_path / "svc")
    _, telemetry, _ = _run_micro(root)
    text = telemetry.exposition()
    assert validate_exposition(text) == []
    assert "# TYPE repro_service_jobs_submitted_total counter" in text
    assert 'repro_service_transitions_total{state="done"} 2' in text
    assert "repro_service_submit_result_latency_seconds_bucket" in text


def test_trace_document_nests_sim_spans_inside_wall_windows(tmp_path):
    root = str(tmp_path / "svc")
    scheduler, telemetry, _ = _run_micro(root)
    document = telemetry.trace_document()
    assert validate_chrome_trace(document) == []
    jobs = document["repro"]["service"]["jobs"]
    assert len(jobs) == 2
    assert all(job["sim_spans"] > 0 for job in jobs)
    events = document["traceEvents"]
    for job in jobs:
        pid = job["pid"]
        # One simulate wall span per observed configuration; sim events
        # carry the run_id linking them to their own wall window.
        windows = {
            e["args"]["run_id"]: e for e in events
            if e.get("pid") == pid and e.get("name") == "simulate"
        }
        assert windows
        sim_events = [
            e for e in events
            if e.get("pid") == pid
            and str(e.get("cat", "")).startswith("sim-")
        ]
        assert sim_events
        for event in sim_events:
            # Virtual-time spans are rescaled into the measured simulate
            # wall window: one coherent timeline per job.
            simulate = windows[event["args"]["run_id"]]
            # 1 us slack: rescaling virtual seconds into an epoch-anchored
            # microsecond timeline rounds in the last float digits.
            assert event["ts"] >= simulate["ts"] - 1.0
            assert event["ts"] + event["dur"] <= (
                simulate["ts"] + simulate["dur"] + 1.0
            )
            assert event["args"]["trace_id"] == job["trace_id"]
        # Wall-time service spans sit on the dedicated service track.
        assert all(
            e["tid"] == 0 for e in events
            if e.get("pid") == pid and e.get("cat") == "service"
        )


def test_cache_hits_traced_on_second_pass(tmp_path):
    root = str(tmp_path / "svc")
    _run_micro(root)
    telemetry = ServiceTelemetry(root, enabled=True)
    scheduler = ServiceScheduler(root=root, telemetry=telemetry)
    scheduler.submit_suite(suite="micro")
    report = scheduler.run()
    assert report.cache_hits == 2
    hits = telemetry.registry.counter("repro_service_cache_hits_total")
    assert hits.value == 2
    span_names = {span.name for span in telemetry.recorder.spans}
    assert "cache-hit" in span_names
    assert "simulate" not in span_names
    rate = telemetry.registry.gauge("repro_service_cache_hit_rate")
    assert rate.value == 1.0


def test_parallel_workers_stitch_spans_across_processes(tmp_path):
    root = str(tmp_path / "svc")
    scheduler, telemetry, report = _run_micro(root, jobs=2)
    assert report.executed == 2
    simulate = [
        span for span in telemetry.recorder.spans if span.name == "simulate"
    ]
    # 2 cells x 4 Table I configurations, each observed in a worker.
    assert len(simulate) == 8
    parent_pid = telemetry.recorder.os_pid
    # The simulate spans were recorded inside the worker processes.
    assert all(span.os_pid != parent_pid for span in simulate)
    document = telemetry.trace_document()
    assert validate_chrome_trace(document) == []
    assert all(
        job["sim_spans"] > 0 for job in document["repro"]["service"]["jobs"]
    )


# ----------------------------------------------------------------------
# The additive guarantee: telemetry on vs. off changes no artifact bytes.
# ----------------------------------------------------------------------
def _stripped_store_lines(scheduler):
    """Store records minus the 'host' block (wall clock lives there)."""
    lines = []
    with open(scheduler.store.path(RESULTS_CAMPAIGN), encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            record.pop("host", None)
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
    return lines


def _stripped_queue_lines(root):
    """Queue log minus wall-clock fields (present with telemetry on or off)."""
    lines = []
    with open(JobQueue(root).path, encoding="utf-8") as fh:
        for line in fh:
            record = json.loads(line)
            record.pop("at", None)
            record.pop("submitted_at", None)
            if isinstance(record.get("detail"), dict):
                record["detail"].pop("wall_seconds", None)
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
    return lines


def test_artifacts_byte_identical_with_telemetry_on_and_off(tmp_path):
    results = {}
    for enabled in (True, False):
        root = str(tmp_path / ("on" if enabled else "off"))
        scheduler, telemetry, report = _run_micro(root, enabled=enabled)
        store = CampaignStore(scheduler.store.root)
        results[enabled] = {
            "store": _stripped_store_lines(scheduler),
            "queue": _stripped_queue_lines(root),
            "cell_ids": sorted(
                cell.cell_id for cell in store.read(RESULTS_CAMPAIGN).cells
            ),
            "cache_ids": sorted(scheduler.cache.list_ids()),
        }
        if not enabled:
            # Disabled telemetry writes nothing at all.
            assert not os.path.exists(
                os.path.join(root, TELEMETRY_FILENAME)
            )
            assert telemetry.recorder.spans == []
            assert telemetry.registry.instruments() == []
    # Deterministic artifacts — store payloads, content-addressed cell
    # ids, cache keys, queue transitions — are identical either way:
    # wall-clock values never leak out of the telemetry plane.
    assert results[True]["store"] == results[False]["store"]
    assert results[True]["queue"] == results[False]["queue"]
    assert results[True]["cell_ids"] == results[False]["cell_ids"]
    assert results[True]["cache_ids"] == results[False]["cache_ids"]


def test_disabled_telemetry_hooks_are_inert(tmp_path):
    root = str(tmp_path / "svc")
    telemetry = ServiceTelemetry(root, enabled=False)
    assert telemetry.write_snapshot(final=True) is None
    assert telemetry.exposition() == ""
    scheduler = ServiceScheduler(root=root, telemetry=telemetry)
    job = scheduler.submit_suite(suite="micro")[0]
    assert telemetry.worker_dispatch(job) is None
    # The dispatch payload therefore never grows a _telemetry key, so
    # worker inputs are byte-identical too.
    telemetry.cache_hit(job, "abc")
    telemetry.retry_scheduled(job, "error")
    assert telemetry.recorder.spans == []


def test_default_scheduler_has_disabled_telemetry(tmp_path):
    scheduler = ServiceScheduler(root=str(tmp_path / "svc"))
    assert scheduler.telemetry.enabled is False


# ----------------------------------------------------------------------
# Queue operator views feeding `repro-service status`.
# ----------------------------------------------------------------------
def test_stale_running_and_attempts_histogram(tmp_path):
    root = str(tmp_path / "svc")
    scheduler = ServiceScheduler(root=root)
    scheduler.submit_suite(suite="micro")
    queue = JobQueue(root)
    jobs = queue.queued()
    queue.claim(jobs[0])
    fresh = JobQueue(root)
    stale = fresh.stale_running()
    assert len(stale) == 1
    assert stale[0]["job_id"] == jobs[0].job_id
    assert stale[0]["age_seconds"] is not None
    assert stale[0]["age_seconds"] >= 0.0
    histogram = fresh.attempts_histogram()
    assert histogram == {0: 1, 1: 1}


def test_worker_utilization_and_rate_gauges(tmp_path):
    root = str(tmp_path / "svc")
    _, telemetry, _ = _run_micro(root)
    utilization = telemetry.registry.gauge("repro_service_worker_utilization")
    assert 0.0 < utilization.value <= 1.0
    rate = telemetry.registry.gauge("repro_service_jobs_per_second")
    assert rate.value > 0.0
    with pytest.raises(StopIteration):
        # No unexpected unlabelled gauge families beyond the known set.
        next(
            g for g in telemetry.registry.instruments()
            if g.kind == "gauge" and not g.labels and g.name not in (
                "repro_service_cache_hit_rate",
                "repro_service_jobs_per_second",
                "repro_service_queue_depth",
                "repro_service_worker_utilization",
            )
        )
