"""Unit tests for Semaphore and Barrier."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.resources import Barrier, Semaphore


class TestSemaphore:
    def test_acquire_when_available(self):
        engine = Engine()
        semaphore = Semaphore(engine, tokens=2)
        assert semaphore.acquire().triggered
        assert semaphore.available == 1

    def test_acquire_blocks_when_empty(self):
        engine = Engine()
        semaphore = Semaphore(engine, tokens=1)
        semaphore.acquire()
        event = semaphore.acquire()
        assert not event.triggered
        assert semaphore.waiting == 1

    def test_release_wakes_fifo(self):
        engine = Engine()
        semaphore = Semaphore(engine, tokens=0)
        first = semaphore.acquire()
        second = semaphore.acquire()
        semaphore.release()
        assert first.triggered and not second.triggered
        semaphore.release()
        assert second.triggered

    def test_release_without_waiters_increments(self):
        engine = Engine()
        semaphore = Semaphore(engine, tokens=0)
        semaphore.release()
        assert semaphore.available == 1

    def test_negative_tokens_rejected(self):
        with pytest.raises(SimulationError):
            Semaphore(Engine(), tokens=-1)

    def test_with_processes(self):
        engine = Engine()
        semaphore = Semaphore(engine, tokens=1, name="slots")
        order = []

        def worker(name, hold):
            yield semaphore.acquire()
            order.append((name, "in", engine.now))
            yield hold
            semaphore.release()
            order.append((name, "out", engine.now))

        engine.spawn(worker("a", 2.0), name="a")
        engine.spawn(worker("b", 1.0), name="b")
        engine.run()
        # release() hands the token to b synchronously, so b enters
        # before a's generator resumes to log its own exit.
        assert order == [
            ("a", "in", 0.0),
            ("b", "in", 2.0),
            ("a", "out", 2.0),
            ("b", "out", 3.0),
        ]


class TestBarrier:
    def test_releases_when_all_arrive(self):
        engine = Engine()
        barrier = Barrier(engine, parties=3)
        events = [barrier.arrive() for _ in range(2)]
        assert not any(e.triggered for e in events)
        third = barrier.arrive()
        assert third.triggered
        assert all(e.triggered for e in events)

    def test_cycles_reset(self):
        engine = Engine()
        barrier = Barrier(engine, parties=2)
        barrier.arrive()
        gen0 = barrier.arrive()
        assert gen0.value == 0
        barrier.arrive()
        gen1 = barrier.arrive()
        assert gen1.value == 1

    def test_single_party_never_blocks(self):
        engine = Engine()
        barrier = Barrier(engine, parties=1)
        for _ in range(3):
            assert barrier.arrive().triggered

    def test_zero_parties_rejected(self):
        with pytest.raises(SimulationError):
            Barrier(Engine(), parties=0)

    def test_waiting_count(self):
        engine = Engine()
        barrier = Barrier(engine, parties=3)
        barrier.arrive()
        assert barrier.waiting == 1

    def test_ranks_align_in_simulation(self):
        """Slow and fast ranks leave the barrier at the same instant."""
        engine = Engine()
        barrier = Barrier(engine, parties=2)
        leave_times = []

        def rank(compute):
            for _ in range(3):
                yield compute
                yield barrier.arrive()
                leave_times.append(engine.now)

        engine.spawn(rank(1.0), name="fast")
        engine.spawn(rank(1.5), name="slow")
        engine.run()
        # Pairs of identical leave times at 1.5, 3.0, 4.5.
        assert leave_times == [1.5, 1.5, 3.0, 3.0, 4.5, 4.5]


class TestComponentIndex:
    """Direct coverage for the readable union-find reference; the flow
    network inlines the same algorithm in its component split."""

    def make(self):
        from repro.sim.resources import ComponentIndex

        return ComponentIndex()

    def test_add_is_idempotent_singleton(self):
        index = self.make()
        index.add("a")
        index.add("a")
        assert len(index) == 1
        assert index.find("a") == "a"

    def test_union_connects_and_find_canonicalizes(self):
        index = self.make()
        root = index.union("a", "b")
        assert index.connected("a", "b")
        assert index.find("a") is index.find("b") is root
        index.add("c")
        assert not index.connected("a", "c")

    def test_transitive_chains_collapse(self):
        index = self.make()
        members = [f"m{i}" for i in range(16)]
        for left, right in zip(members, members[1:]):
            index.union(left, right)
        roots = {index.find(member) for member in members}
        assert len(roots) == 1
        assert len(index) == 16

    def test_disjoint_sets_stay_disjoint(self):
        index = self.make()
        index.union("a", "b")
        index.union("x", "y")
        assert index.connected("a", "b")
        assert index.connected("x", "y")
        assert not index.connected("a", "x")

    def test_union_by_rank_returns_stable_root(self):
        index = self.make()
        index.union("a", "b")  # rank 1 tree rooted somewhere
        root = index.union("a", "c")  # singleton joins the taller tree
        assert index.find("c") is root
