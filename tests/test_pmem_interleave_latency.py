"""Unit tests for interleaving geometry and the latency model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.pmem.interleave import InterleaveSet
from repro.pmem.latency import op_latency
from repro.units import KiB, MiB

CAL = DEFAULT_CALIBRATION


class TestInterleaveSet:
    def test_default_geometry(self):
        interleave = InterleaveSet()
        assert interleave.stripe_bytes == 24 * KiB

    def test_dimm_of_walks_round_robin(self):
        interleave = InterleaveSet(chunk_bytes=4096, ndimms=6)
        assert [interleave.dimm_of(i * 4096) for i in range(7)] == [0, 1, 2, 3, 4, 5, 0]

    def test_dimm_of_within_chunk(self):
        interleave = InterleaveSet(chunk_bytes=4096, ndimms=6)
        assert interleave.dimm_of(4095) == 0
        assert interleave.dimm_of(4096) == 1

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            InterleaveSet().dimm_of(-1)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            InterleaveSet(chunk_bytes=0)

    def test_chunks_of_spans_boundaries(self):
        interleave = InterleaveSet(chunk_bytes=4096, ndimms=6)
        chunks = interleave.chunks_of(4000, 8192)
        assert chunks == [0, 1, 2]

    def test_chunks_of_empty(self):
        assert InterleaveSet().chunks_of(0, 0) == []

    def test_histogram_counts_all_dimms(self):
        interleave = InterleaveSet(chunk_bytes=4096, ndimms=6)
        histogram = interleave.dimm_histogram([(0, 24 * KiB)])
        assert histogram == {d: 1 for d in range(6)}

    def test_imbalance_even_stripe(self):
        interleave = InterleaveSet(chunk_bytes=4096, ndimms=6)
        assert interleave.imbalance([(0, 24 * KiB)]) == pytest.approx(1.0)

    def test_imbalance_hotspot(self):
        """Random 4 KB accesses landing on one DIMM show max imbalance."""
        interleave = InterleaveSet(chunk_bytes=4096, ndimms=6)
        accesses = [(0, 4096)] * 10  # all on DIMM 0
        assert interleave.imbalance(accesses) == pytest.approx(6.0)

    def test_imbalance_empty_trace(self):
        assert InterleaveSet().imbalance([]) == 1.0

    @given(
        offset=st.integers(min_value=0, max_value=2**40),
        nbytes=st.integers(min_value=1, max_value=1 * MiB),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_chunk_count(self, offset, nbytes):
        interleave = InterleaveSet()
        chunks = interleave.chunks_of(offset, nbytes)
        expected = (offset + nbytes - 1) // 4096 - offset // 4096 + 1
        assert len(chunks) == expected


class TestLatency:
    def test_write_cheaper_than_read(self):
        """§II-B: 90 ns write vs 169 ns read (the WPQ absorbs writes)."""
        assert op_latency(CAL, "write", False, 64) < op_latency(CAL, "read", False, 64)

    def test_remote_adds_latency(self):
        assert op_latency(CAL, "read", True, 2048) > op_latency(CAL, "read", False, 2048)
        assert op_latency(CAL, "write", True, 2048) >= op_latency(
            CAL, "write", False, 2048
        )

    def test_small_read_is_one_stall(self):
        assert op_latency(CAL, "read", False, 2048) == pytest.approx(
            CAL.read_latency_local
        )

    def test_large_read_amortizes_per_chunk(self):
        per_byte_small = op_latency(CAL, "read", False, 2 * KiB) / (2 * KiB)
        per_byte_large = op_latency(CAL, "read", False, 64 * MiB) / (64 * MiB)
        assert per_byte_large < per_byte_small

    def test_write_latency_size_independent(self):
        assert op_latency(CAL, "write", False, 64) == op_latency(
            CAL, "write", False, 64 * MiB
        )
