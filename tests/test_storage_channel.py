"""Unit tests for the versioned streaming channel and snapshot specs."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.platform.builder import paper_testbed
from repro.sim.engine import Engine
from repro.storage import NVStream
from repro.storage.channel import StreamChannel
from repro.storage.objects import SnapshotSpec
from repro.units import GiB, KiB, MiB


class TestSnapshotSpec:
    def test_snapshot_bytes(self):
        spec = SnapshotSpec(object_bytes=64 * MiB, objects_per_snapshot=16)
        assert spec.snapshot_bytes == 1 * GiB

    def test_total_bytes(self):
        spec = SnapshotSpec(object_bytes=64 * MiB, objects_per_snapshot=16)
        # The paper's 80 GB at 8 ranks x 10 iterations.
        assert spec.total_bytes(8, 10) == 80 * GiB

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            SnapshotSpec(object_bytes=0, objects_per_snapshot=1)
        with pytest.raises(ConfigurationError):
            SnapshotSpec(object_bytes=1, objects_per_snapshot=0)

    def test_invalid_totals_rejected(self):
        spec = SnapshotSpec(object_bytes=1, objects_per_snapshot=1)
        with pytest.raises(ConfigurationError):
            spec.total_bytes(0, 10)

    def test_describe(self):
        spec = SnapshotSpec(object_bytes=2 * KiB, objects_per_snapshot=4)
        assert "2.0 KiB" in spec.describe()


def make_channel(n_streams=2, retained=2):
    engine = Engine()
    node = paper_testbed()
    channel = StreamChannel(
        engine=engine,
        node=node,
        pmem_socket=0,
        stack=NVStream(),
        n_streams=n_streams,
        snapshot=SnapshotSpec(object_bytes=1 * MiB, objects_per_snapshot=4),
        retained_versions=retained,
    )
    return engine, node, channel


class TestStreamChannel:
    def test_reserves_pmem_space(self):
        _, node, channel = make_channel(n_streams=3, retained=2)
        assert channel.reserved_bytes == 3 * 2 * 4 * MiB
        assert node.socket(0).pmem.allocated_bytes == channel.reserved_bytes

    def test_close_releases_space(self):
        _, node, channel = make_channel()
        channel.close()
        assert node.socket(0).pmem.allocated_bytes == 0
        channel.close()  # idempotent

    def test_publish_then_wait_is_immediate(self):
        _, _, channel = make_channel()
        channel.publish(0, 0, nbytes=10)
        assert channel.wait_version(0, 0).triggered

    def test_wait_then_publish_wakes(self):
        _, _, channel = make_channel()
        event = channel.wait_version(0, 0)
        assert not event.triggered
        channel.publish(0, 0)
        assert event.triggered
        assert event.value == 0

    def test_out_of_order_publish_rejected(self):
        _, _, channel = make_channel()
        with pytest.raises(StorageError, match="out of order"):
            channel.publish(0, 1)

    def test_republish_rejected(self):
        _, _, channel = make_channel()
        channel.publish(0, 0)
        with pytest.raises(StorageError):
            channel.publish(0, 0)

    def test_streams_independent(self):
        _, _, channel = make_channel()
        channel.publish(0, 0)
        assert channel.published_version(0) == 0
        assert channel.published_version(1) == -1

    def test_unknown_stream_rejected(self):
        _, _, channel = make_channel(n_streams=2)
        with pytest.raises(StorageError, match="out of range"):
            channel.publish(5, 0)

    def test_negative_version_rejected(self):
        _, _, channel = make_channel()
        with pytest.raises(StorageError):
            channel.wait_version(0, -1)

    def test_bytes_accounting(self):
        _, _, channel = make_channel()
        channel.publish(0, 0, nbytes=100)
        channel.publish(1, 0, nbytes=50)
        assert channel.total_bytes_published() == 150

    def test_waiting_ahead_multiple_versions(self):
        _, _, channel = make_channel()
        v2 = channel.wait_version(0, 2)
        channel.publish(0, 0)
        channel.publish(0, 1)
        assert not v2.triggered
        channel.publish(0, 2)
        assert v2.triggered

    def test_invalid_construction(self):
        engine = Engine()
        node = paper_testbed()
        snapshot = SnapshotSpec(object_bytes=1 * MiB, objects_per_snapshot=1)
        with pytest.raises(StorageError):
            StreamChannel(engine, node, 0, NVStream(), 0, snapshot)
        with pytest.raises(StorageError):
            StreamChannel(engine, node, 0, NVStream(), 1, snapshot, retained_versions=0)
