"""Three-way solver oracle and incremental-recompute strategy tests (PR-10).

The vectorized backend raises the stakes on the byte-identity contract:
``vector`` (batched numpy fixed point), ``fast`` (scalar equivalence
classes) and ``reference`` (per-flow oracle) must agree *bit for bit* on
randomized flow sets — mixed kinds, localities, shared resources, the
real Optane device model and opaque stateful resources that bypass the
memo.  The network-level tests pin the incremental strategy: untouched
connected components replay cached rates (``solver_components_skipped``),
pokes defer their solve to the end-of-timestamp flush, and the numpy-less
fallback lane produces identical simulations.
"""

import math
import random

import pytest

import repro.sim.flow as flow_module
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.pmem.device import OptaneDeviceResource
from repro.sim.engine import Engine
from repro.sim.flow import (
    SOLVER_FAST,
    SOLVER_REFERENCE,
    SOLVER_VECTOR,
    CapacityResource,
    Flow,
    FlowNetwork,
    default_solver,
    numpy_available,
    solve_flow_set,
)
from repro.units import KiB
from tests.test_solver_equivalence import (
    assert_results_identical,
    clone_flow,
    make_flow,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable; vector backend dormant"
)


class _OpaqueStateful(CapacityResource):
    """Overrides ``observe`` without a token protocol: memo must bypass."""

    def observe(self, now, load):
        pass


def random_flow_set(seed):
    """A seeded mixed workload over shared, device and opaque resources."""
    rng = random.Random(seed)
    shared = CapacityResource(
        "shared", lambda load: 120.0 / (1.0 + 0.3 * load.n_total)
    )
    side = CapacityResource(
        "side", lambda load: 50.0 / (1.0 + 0.5 * load.n_reads)
    )
    device = OptaneDeviceResource("pmem[0]", DEFAULT_CALIBRATION)
    opaque = _OpaqueStateful(
        "opaque", lambda load: 80.0 / (1.0 + 0.1 * load.n_writes)
    )
    pools = [
        (shared,),
        (side,),
        (shared, side),
        (device,),
        (shared, opaque),
    ]
    flows = []
    for i in range(rng.randrange(8, 28)):
        flow = make_flow(
            nbytes=rng.uniform(1.0, 1e6),
            kind=rng.choice(("read", "write")),
            remote=rng.random() < 0.4,
            resources=rng.choice(pools),
            self_cap=rng.choice((math.inf, 2e9, 4e9, 40.0)),
            op_bytes=rng.choice((256.0, 4 * KiB, 64 * KiB, 256 * KiB)),
            issue_weight=rng.choice((1.0, 1.0, 0.6)),
            label=f"f{i}",
        )
        if rng.random() < 0.3:  # some flows resume mid-transfer
            flow.duty = rng.uniform(0.05, 1.0)
        flows.append(flow)
    return flows


class TestThreeWayByteIdentity:
    @needs_numpy
    @pytest.mark.parametrize("seed", range(12))
    def test_vector_fast_reference_bit_identical(self, seed, monkeypatch):
        # Force the batched path even on small class counts: the cutover
        # is a dispatch decision, never a semantics one.
        monkeypatch.setattr(flow_module, "VECTOR_MIN_CLASSES", 0)
        flows = random_flow_set(seed)
        vec_flows = [clone_flow(f) for f in flows]
        fast_flows = [clone_flow(f) for f in flows]
        ref_flows = [clone_flow(f) for f in flows]
        vec = solve_flow_set(vec_flows, solver=SOLVER_VECTOR)
        fast = solve_flow_set(fast_flows, solver=SOLVER_FAST)
        ref = solve_flow_set(ref_flows, solver=SOLVER_REFERENCE)
        assert_results_identical(vec_flows, vec, ref_flows, ref)
        assert_results_identical(fast_flows, fast, ref_flows, ref)

    @needs_numpy
    def test_cutover_is_pure_dispatch(self, monkeypatch):
        """Rates agree bitwise on both sides of VECTOR_MIN_CLASSES."""
        flows = random_flow_set(99)
        monkeypatch.setattr(flow_module, "VECTOR_MIN_CLASSES", 0)
        batched = [clone_flow(f) for f in flows]
        low = solve_flow_set(batched, solver=SOLVER_VECTOR)
        monkeypatch.setattr(flow_module, "VECTOR_MIN_CLASSES", 10_000)
        scalar = [clone_flow(f) for f in flows]
        high = solve_flow_set(scalar, solver=SOLVER_VECTOR)
        for bf, sf in zip(batched, scalar):
            assert low.rates[bf] == high.rates[sf]
            assert bf.duty == sf.duty


class TestNumpyFallback:
    def test_vector_without_numpy_matches_fast(self, monkeypatch):
        monkeypatch.setattr(flow_module, "_np", None)
        assert not numpy_available()
        flows = random_flow_set(3)
        vec_flows = [clone_flow(f) for f in flows]
        fast_flows = [clone_flow(f) for f in flows]
        vec = solve_flow_set(vec_flows, solver=SOLVER_VECTOR)
        fast = solve_flow_set(fast_flows, solver=SOLVER_FAST)
        assert vec.iterations == fast.iterations
        for vf, ff in zip(vec_flows, fast_flows):
            assert vec.rates[vf] == fast.rates[ff]
            assert vf.duty == ff.duty

    def test_default_solver_downgrades_without_numpy(self, monkeypatch):
        monkeypatch.delenv(flow_module.SOLVER_ENV, raising=False)
        monkeypatch.setattr(flow_module, "_np", None)
        assert default_solver() == SOLVER_FAST

    @needs_numpy
    def test_default_solver_prefers_vector(self, monkeypatch):
        monkeypatch.delenv(flow_module.SOLVER_ENV, raising=False)
        assert default_solver() == SOLVER_VECTOR


class TestVectorBatches:
    @needs_numpy
    def test_batches_counted_on_network(self, monkeypatch):
        monkeypatch.setattr(flow_module, "VECTOR_MIN_CLASSES", 0)
        engine = Engine()
        net = FlowNetwork(engine, solver=SOLVER_VECTOR)
        r = CapacityResource("r", lambda load: 10.0)

        def body(nbytes):
            yield net.transfer(make_flow(nbytes=nbytes, resources=[r]))

        for i in range(4):
            engine.spawn(body(10.0 * (i + 1)), name=f"p{i}")
        engine.run()
        assert net.vector_batches > 0

    def test_scalar_network_reports_no_batches(self):
        engine = Engine()
        net = FlowNetwork(engine, solver=SOLVER_FAST)
        r = CapacityResource("r", lambda load: 10.0)

        def body():
            yield net.transfer(make_flow(nbytes=20.0, resources=[r]))

        engine.spawn(body(), name="p")
        engine.run()
        assert net.vector_batches == 0


class TestDirtyComponents:
    def test_untouched_component_replays_cached_rates(self):
        """A completion in one component must not re-solve the other."""
        engine = Engine()
        net = FlowNetwork(engine)
        ra = CapacityResource("a", lambda load: 10.0)
        rb = CapacityResource("b", lambda load: 10.0)
        done = {}

        def body(name, resource, nbytes):
            yield net.transfer(
                make_flow(nbytes=nbytes, resources=[resource], label=name)
            )
            done[name] = engine.now

        engine.spawn(body("a", ra, 50.0), name="a")
        engine.spawn(body("b1", rb, 30.0), name="b1")
        engine.spawn(body("b2", rb, 80.0), name="b2")
        engine.run()
        # When "a" finishes at t=5, component {rb} saw no membership or
        # token change: its rates replay from the cache.
        assert net.solver_components_skipped > 0
        assert done["a"] == pytest.approx(5.0)
        assert done["b1"] == pytest.approx(6.0)  # 30 B at 5 B/s
        assert done["b2"] == pytest.approx(11.0)  # 30 B at 5 + 50 B at 10

    def test_targeted_poke_leaves_other_component_alone(self):
        """poke(resource) invalidates only the named resource's component."""
        engine = Engine()
        net = FlowNetwork(engine)
        state = {"capacity": 10.0}
        ra = CapacityResource("steady", lambda load: 10.0)
        rb = CapacityResource("mutable", lambda load: state["capacity"])
        done = {}

        def body(name, resource, nbytes):
            yield net.transfer(
                make_flow(nbytes=nbytes, resources=[resource], label=name)
            )
            done[name] = engine.now

        def throttle():
            state["capacity"] = 5.0
            net.poke(rb)

        engine.spawn(body("steady", ra, 100.0), name="steady")
        engine.spawn(body("victim", rb, 100.0), name="victim")
        engine.schedule(2.0, throttle)
        engine.run()
        # The steady component's solve is skipped at the poke's flush.
        assert net.solver_components_skipped > 0
        assert done["steady"] == pytest.approx(10.0)
        assert done["victim"] == pytest.approx(18.0)  # 20 B at 10 + 80 at 5


class TestGtcReuse:
    def test_gtc_workflow_reuses_solver_work(self):
        """The historical GTC pathology — memo hit rate pinned at 0.0 —
        is fixed: read-only phases memo-hit across the congestion EWMA's
        drift under the default solver."""
        from repro.apps.gtc import gtc_workflow
        from repro.core.configs import P_LOCR
        from repro.obs.capture import observe_workflow

        observation = observe_workflow(
            gtc_workflow(ranks=4, iterations=2), P_LOCR
        )
        stats = observation.solver_stats
        reused = stats.get("solver_memo_hits", 0) + stats.get(
            "solver_components_skipped", 0
        )
        assert reused > 0
        hits = stats.get("solver_memo_hits", 0)
        attempts = hits + stats.get("solver_memo_misses", 0)
        assert attempts > 0 and hits / attempts > 0


class TestPokeDeferral:
    def test_poke_defers_solve_to_flush(self):
        """Same-instant poke bursts cost one solve, not one per poke."""
        engine = Engine()
        net = FlowNetwork(engine)
        state = {"capacity": 10.0}
        r = CapacityResource("mutable", lambda load: state["capacity"])

        def body():
            yield net.transfer(make_flow(nbytes=100.0, resources=[r]))

        recorded = {}

        def burst():
            state["capacity"] = 5.0
            before = net.recompute_count
            coalesced = net.recomputes_coalesced
            for _ in range(3):
                net.poke()
            recorded["solved_inline"] = net.recompute_count - before
            recorded["absorbed"] = net.recomputes_coalesced - coalesced

        engine.spawn(body(), name="p")
        engine.schedule(2.0, burst)
        engine.run()
        assert recorded["solved_inline"] == 0  # deferred to the flush
        assert recorded["absorbed"] == 2  # pokes 2 and 3 fold into 1
        assert engine.now == pytest.approx(18.0)

    def test_uncoalesced_poke_solves_inline(self):
        """With coalescing off, poke() keeps the synchronous semantics."""
        engine = Engine()
        net = FlowNetwork(engine, coalesce=False)
        state = {"capacity": 10.0}
        r = CapacityResource("mutable", lambda load: state["capacity"])

        def body():
            yield net.transfer(make_flow(nbytes=100.0, resources=[r]))

        recorded = {}

        def throttle():
            state["capacity"] = 5.0
            before = net.recompute_count
            net.poke()
            recorded["solved_inline"] = net.recompute_count - before

        engine.spawn(body(), name="p")
        engine.schedule(2.0, throttle)
        engine.run()
        assert recorded["solved_inline"] == 1
        assert engine.now == pytest.approx(18.0)
