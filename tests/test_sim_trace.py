"""Unit tests for the tracer."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.trace import TraceRecord, Tracer


class TestTraceRecord:
    def test_duration(self):
        record = TraceRecord("writer", 0, "write", 1.0, 3.5)
        assert record.duration == 2.5

    def test_detail_payload(self):
        record = TraceRecord("writer", 0, "write", 0.0, 1.0, detail={"bytes": 42})
        assert record.detail["bytes"] == 42


class TestTracer:
    def make_tracer(self):
        tracer = Tracer()
        tracer.record("writer", 0, "compute", 0.0, 1.0, iteration=0)
        tracer.record("writer", 0, "write", 1.0, 1.5, iteration=0, bytes=100)
        tracer.record("writer", 1, "write", 1.0, 2.0, iteration=0)
        tracer.record("reader", 0, "read", 1.5, 2.5, iteration=0)
        return tracer

    def test_by_component(self):
        tracer = self.make_tracer()
        assert len(tracer.by_component("writer")) == 3
        assert len(tracer.by_component("reader")) == 1

    def test_by_phase(self):
        assert len(self.make_tracer().by_phase("write")) == 2

    def test_total_time(self):
        tracer = self.make_tracer()
        assert tracer.total_time("writer") == 2.5
        assert tracer.total_time("writer", "write") == 1.5

    def test_span(self):
        tracer = self.make_tracer()
        assert tracer.span("writer") == (0.0, 2.0)
        assert tracer.span() == (0.0, 2.5)

    def test_span_empty(self):
        assert Tracer().span("writer") == (0.0, 0.0)

    def test_iter_intervals_sorted(self):
        tracer = self.make_tracer()
        intervals = list(tracer.iter_intervals("writer", 0))
        assert [r.phase for r in intervals] == ["compute", "write"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record("writer", 0, "write", 0.0, 1.0)
        assert tracer.records == []


class TestRecordValidation:
    def test_backwards_interval_rejected(self):
        with pytest.raises(SimulationError, match="backwards"):
            Tracer().record("writer", 0, "write", 2.0, 1.0)

    def test_rounding_jitter_tolerated(self):
        # end < start within TIME_EPSILON is solver rounding, not a bug.
        tracer = Tracer()
        tracer.record("writer", 0, "write", 1.0, 1.0 - 1e-12)
        assert len(tracer.records) == 1

    def test_zero_duration_allowed(self):
        tracer = Tracer()
        tracer.record("writer", 0, "write", 1.0, 1.0)
        assert tracer.records[0].duration == 0.0

    @pytest.mark.parametrize(
        "start, end",
        [
            (math.nan, 1.0),
            (0.0, math.nan),
            (math.inf, math.inf),
            (0.0, -math.inf),
        ],
    )
    def test_non_finite_timestamps_rejected(self, start, end):
        with pytest.raises(SimulationError, match="finite"):
            Tracer().record("writer", 0, "write", start, end)

    def test_disabled_tracer_skips_validation(self):
        # The disabled path must stay zero-cost: no checks, no records.
        tracer = Tracer(enabled=False)
        tracer.record("writer", 0, "write", math.nan, -math.inf)
        assert tracer.records == []
