"""Unit tests for the Table I configuration objects."""

import pytest

from repro.core.configs import (
    ALL_CONFIGS,
    P_LOCR,
    P_LOCW,
    S_LOCR,
    S_LOCW,
    ExecutionMode,
    Placement,
    SchedulerConfig,
)


class TestTableI:
    def test_four_configs(self):
        assert len(ALL_CONFIGS) == 4
        assert len({c.label for c in ALL_CONFIGS}) == 4

    def test_labels_match_paper(self):
        assert [c.label for c in ALL_CONFIGS] == [
            "S-LocW",
            "S-LocR",
            "P-LocW",
            "P-LocR",
        ]

    def test_semantics(self):
        assert S_LOCW.writer_local and not S_LOCW.reader_local
        assert S_LOCR.reader_local and not S_LOCR.writer_local
        assert not S_LOCW.parallel
        assert P_LOCR.parallel

    def test_placement_values_match_paper_table(self):
        assert Placement.LOCAL_WRITE.value == "local-write-remote-read"
        assert Placement.LOCAL_READ.value == "remote-write-local-read"

    def test_mode_shorthand(self):
        assert ExecutionMode.SERIAL.short == "S"
        assert ExecutionMode.PARALLEL.short == "P"

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.label)
    def test_from_label_roundtrip(self, config):
        assert SchedulerConfig.from_label(config.label) == config

    def test_from_label_case_insensitive(self):
        assert SchedulerConfig.from_label("s_locw") == S_LOCW
        assert SchedulerConfig.from_label(" p-locr ") == P_LOCR

    def test_from_label_unknown(self):
        with pytest.raises(ValueError, match="unknown configuration"):
            SchedulerConfig.from_label("X-LocQ")

    def test_str(self):
        assert str(P_LOCW) == "P-LocW"

    def test_hashable_and_comparable(self):
        assert SchedulerConfig(ExecutionMode.SERIAL, Placement.LOCAL_WRITE) == S_LOCW
        assert len({S_LOCW, S_LOCR, P_LOCW, P_LOCR}) == 4
