"""Unit tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import SimEvent


class TestProcessLifecycle:
    def test_return_value_becomes_result(self):
        engine = Engine()

        def body():
            yield 1.0
            return "done"

        process = engine.spawn(body(), name="p")
        engine.run()
        assert process.finished
        assert process.result == "done"

    def test_non_generator_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError, match="generator"):
            engine.spawn(lambda: None, name="p")

    def test_yield_numeric_is_timeout(self):
        engine = Engine()
        times = []

        def body():
            yield 2
            times.append(engine.now)
            yield 0.5
            times.append(engine.now)

        engine.spawn(body(), name="p")
        engine.run()
        assert times == [2.0, 2.5]

    def test_yield_event_receives_value(self):
        engine = Engine()
        event = SimEvent("e")
        received = []

        def waiter():
            value = yield event
            received.append(value)

        engine.spawn(waiter(), name="w")
        engine.schedule(1.0, lambda: event.succeed("payload"))
        engine.run()
        assert received == ["payload"]

    def test_yield_process_waits_for_completion(self):
        engine = Engine()
        order = []

        def child():
            yield 2.0
            order.append("child")
            return 7

        def parent():
            child_process = engine.spawn(child(), name="child")
            value = yield child_process
            order.append(("parent", value, engine.now))

        engine.spawn(parent(), name="parent")
        engine.run()
        assert order == ["child", ("parent", 7, 2.0)]

    def test_exception_in_body_fails_completed_event(self):
        engine = Engine()

        def body():
            yield 1.0
            raise ValueError("inner")

        process = engine.spawn(body(), name="p")
        engine.run()
        assert process.finished
        with pytest.raises(ValueError, match="inner"):
            _ = process.result

    def test_failed_event_raises_inside_generator(self):
        engine = Engine()
        event = SimEvent("e")
        caught = []

        def body():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        engine.spawn(body(), name="p")
        engine.schedule(1.0, lambda: event.fail(RuntimeError("boom")))
        engine.run()
        assert caught == ["boom"]

    def test_unsupported_yield_fails_process(self):
        engine = Engine()

        def body():
            yield object()

        process = engine.spawn(body(), name="p")
        engine.run(check_deadlock=False)
        with pytest.raises(SimulationError, match="unsupported request"):
            _ = process.result

    def test_two_processes_interleave(self):
        engine = Engine()
        order = []

        def ticker(name, period):
            for _ in range(3):
                yield period
                order.append((name, engine.now))

        engine.spawn(ticker("a", 1.0), name="a")
        engine.spawn(ticker("b", 1.5), name="b")
        engine.run()
        # At t=3.0 both fire; b's timer was scheduled first (at t=1.5),
        # so the deterministic tie-break runs b before a.
        assert order == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]
