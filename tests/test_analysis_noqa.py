"""Shared noqa-parser tests, including the PR-1 parser's fixed bugs."""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.noqa import ALL_CODES, filter_noqa, is_suppressed, noqa_lines
from repro.analysis.simlint import lint_source


def diag(code, line):
    return Diagnostic(code=code, message="m", path="p.py", line=line)


class TestNoqaParsing:
    def test_bare_noqa(self):
        assert noqa_lines("x = 1  # noqa\n") == {1: {ALL_CODES}}

    def test_single_code(self):
        assert noqa_lines("x = 1  # noqa: SIM104\n") == {1: {"SIM104"}}

    def test_multi_rule_comma_list(self):
        assert noqa_lines("x = 1  # noqa: SIM104,SIM111\n") == {
            1: {"SIM104", "SIM111"}
        }

    def test_multi_rule_with_spaces(self):
        assert noqa_lines("x = 1  # noqa: SIM104, SVC401\n") == {
            1: {"SIM104", "SVC401"}
        }

    def test_trailing_prose_not_parsed_as_codes(self):
        # PR-1 bug: every trailing word became a "code".
        assert noqa_lines(
            "x = 1  # noqa: SIM104,SIM111 shared ring buffer\n"
        ) == {1: {"SIM104", "SIM111"}}

    def test_second_comment_on_line(self):
        # PR-1 bug: the partition at the first colon broke this.
        assert noqa_lines("x = f()  # type: ignore  # noqa\n") == {
            1: {ALL_CODES}
        }

    def test_case_insensitive(self):
        assert noqa_lines("x = 1  # NOQA: sim104\n") == {1: {"SIM104"}}

    def test_multiple_noqa_union(self):
        assert noqa_lines("x = 1  # noqa: SIM104  # noqa: SVC401\n") == {
            1: {"SIM104", "SVC401"}
        }

    def test_line_without_comment_ignored(self):
        assert noqa_lines("x = 1\ny = 2  # plain comment\n") == {}

    def test_word_containing_noqa_not_matched(self):
        assert noqa_lines("x = 1  # noqable idea\n") == {}


class TestSuppression:
    def test_bare_suppresses_everything(self):
        suppressed = {3: {ALL_CODES}}
        assert is_suppressed(diag("SIM201", 3), suppressed)

    def test_listed_code_suppressed(self):
        suppressed = {3: {"SIM201"}}
        assert is_suppressed(diag("SIM201", 3), suppressed)
        assert not is_suppressed(diag("SVC401", 3), suppressed)

    def test_other_line_not_suppressed(self):
        assert not is_suppressed(diag("SIM201", 4), {3: {ALL_CODES}})

    def test_filter_noqa(self):
        source = "a = 1  # noqa: X100\nb = 2\n"
        kept = filter_noqa([diag("X100", 1), diag("X100", 2)], source)
        assert [d.line for d in kept] == [2]


class TestLintIntegration:
    def test_multi_rule_suppression_in_lint(self):
        # The satellite bug: ``# noqa: SIM104,SIM111`` must suppress both.
        source = (
            "def f(acc=[]):  # noqa: SIM104,SIM103 shared accumulator\n"
            "    return acc\n"
        )
        diagnostics = lint_source(
            source,
            path="src/repro/sim/fixture.py",
            module="repro.sim.fixture",
        )
        assert diagnostics == []

    def test_unlisted_code_still_fires(self):
        source = "def f(acc=[]):  # noqa: SIM106\n    return acc\n"
        diagnostics = lint_source(
            source,
            path="src/repro/sim/fixture.py",
            module="repro.sim.fixture",
        )
        assert [d.code for d in diagnostics] == ["SIM104"]
