"""Campaign runner acceptance tests.

The PR's acceptance criteria made executable:

* re-running the same campaign yields byte-identical deterministic
  payloads and identical cell ids (wall-clock fields excluded);
* the store round-trips and stays append-only;
* diffing a campaign against itself reports zero regressions;
* a perturbed-calibration campaign reports the induced winner flips,
  claim changes and drift;
* the markdown dashboard is golden-stable for a synthetic campaign;
* the ``python -m repro.obs campaign`` CLI works end to end in a tmp dir.
"""

import json

import pytest

from repro.core.configs import ALL_CONFIGS, P_LOCR, S_LOCW
from repro.errors import ConfigurationError
from repro.obs.campaign import (
    SUITE_PRESETS,
    CampaignRun,
    CellResult,
    bench_record,
    campaign_from_store,
    campaign_report,
    cell_key,
    diff_campaigns,
    parse_cell_key,
    run_campaign,
    run_cell,
)
from repro.obs.cli import main as obs_main
from repro.obs.hostmetrics import HostMetrics, KIND_SIMULATED
from repro.obs.store import CampaignStore, canonical_json
from repro.pmem.calibration import DEFAULT_CALIBRATION

TWO_CONFIGS = (S_LOCW, P_LOCR)

#: The calibration perturbation used to induce winner flips: collapsing
#: local write bandwidth makes write-placement matter far more.
PERTURBED = DEFAULT_CALIBRATION.replace(
    local_write_peak=DEFAULT_CALIBRATION.local_write_peak * 0.15
)


def tiny_cell(cal=DEFAULT_CALIBRATION):
    return run_cell(
        "micro-2k", 8, configs=TWO_CONFIGS, cal=cal, iterations=1
    )


class TestCellKeys:
    def test_round_trip(self):
        assert parse_cell_key(cell_key("gtc+readonly", 16)) == (
            "gtc+readonly",
            16,
        )

    def test_malformed_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_cell_key("no-ranks")


class TestSuitePresets:
    def test_micro_is_ci_sized(self):
        preset = SUITE_PRESETS["micro"]
        assert len(preset.cells) == 2
        assert all(ranks == 8 for _, ranks in preset.cells)
        assert preset.iterations == 2

    def test_full_is_the_paper_suite(self):
        assert len(SUITE_PRESETS["full"].cells) == 18

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(suite="nope")


class TestRunCell:
    def test_cell_payload_shape(self):
        cell = tiny_cell()
        assert cell.key == "micro-2k@8"
        deterministic = cell.deterministic
        assert set(deterministic["configs"]) == {"S-LocW", "P-LocR"}
        for entry in deterministic["configs"].values():
            assert entry["makespan"] > 0
            assert entry["pmem_bytes"]["write"] > 0
            assert entry["pmem_bytes"]["read"] > 0
            assert "writer" in entry["phases"] and "reader" in entry["phases"]
            assert "git_sha" not in entry["manifest"]
        assert deterministic["winner"] in deterministic["configs"]
        assert deterministic["paper_best"] == "P-LocR"
        assert cell.host.kind == KIND_SIMULATED
        assert cell.host.runs == 2
        assert set(cell.provenance) == {
            "git_sha",
            "repro_version",
            "python_version",
        }

    def test_deterministic_payload_byte_identical_across_reruns(self):
        a, b = tiny_cell(), tiny_cell()
        assert a.cell_id == b.cell_id
        assert canonical_json(a.deterministic) == canonical_json(b.deterministic)

    def test_calibration_changes_cell_id_not_key(self):
        a, b = tiny_cell(), tiny_cell(cal=PERTURBED)
        assert a.key == b.key
        assert a.cell_id != b.cell_id

    def test_no_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cell("micro-2k", 8, configs=())


class TestRunCampaign:
    def test_persists_and_rehydrates(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        run = run_campaign(
            suite="micro", store=store, configs=TWO_CONFIGS, iterations=1
        )
        assert run.name == "micro-001"
        assert store.validate(run.name) == []
        loaded = campaign_from_store(store.read(run.name))
        assert [c.cell_id for c in loaded.cells] == [
            c.cell_id for c in run.cells
        ]
        assert diff_campaigns(run, loaded).regressions == 0

    def test_rerun_is_deterministic(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        kwargs = dict(store=store, configs=TWO_CONFIGS, iterations=1)
        a = run_campaign(suite="micro", **kwargs)
        b = run_campaign(suite="micro", **kwargs)
        assert a.name != b.name  # append-only: a new campaign per run
        assert [
            canonical_json(c.deterministic) for c in a.cells
        ] == [canonical_json(c.deterministic) for c in b.cells]

    def test_cells_override(self):
        run = run_campaign(
            suite="sweep",
            cells=[("micro-2k", 8)],
            configs=TWO_CONFIGS,
            iterations=1,
        )
        assert [c.key for c in run.cells] == ["micro-2k@8"]

    def test_bench_record_shape(self):
        run = run_campaign(
            suite="sweep",
            cells=[("micro-2k", 8)],
            configs=TWO_CONFIGS,
            iterations=1,
        )
        record = bench_record(run)
        assert record["bench"] == "campaign"
        assert record["cells"] == 1
        assert record["runs"] == 2
        assert record["wall_seconds_total"] > 0
        assert record["sim_seconds_per_wall_second"] > 0


class TestDiff:
    def test_identical_campaigns_have_zero_regressions(self):
        run = run_campaign(
            suite="micro", configs=TWO_CONFIGS, iterations=1
        )
        diff = diff_campaigns(run, run)
        assert diff.regressions == 0
        assert diff.identical_cells == len(run.cells)
        assert "0 regression(s)" in diff.render_text()

    def test_perturbed_calibration_reports_flips_and_drift(self):
        base = run_campaign(suite="micro", configs=ALL_CONFIGS)
        perturbed = run_campaign(
            suite="micro", configs=ALL_CONFIGS, cal=PERTURBED
        )
        diff = diff_campaigns(base, perturbed)
        assert diff.winner_flips  # the induced flip is detected
        assert diff.drifts  # collapsing write bandwidth moves makespans
        assert diff.claim_changes
        assert set(diff.calibration_changed) == {c.key for c in base.cells}
        assert diff.regressions > 0
        text = diff.render_text()
        assert "winner" in text and "makespan" in text
        markdown = diff.render_markdown()
        assert "## Winner flips" in markdown
        assert "## Makespan drift" in markdown

    def test_coverage_changes_reported(self):
        run = run_campaign(
            suite="sweep",
            cells=[("micro-2k", 8)],
            configs=TWO_CONFIGS,
            iterations=1,
        )
        empty = CampaignRun(name="empty", suite="sweep")
        diff = diff_campaigns(run, empty)
        assert diff.only_in_a == ["micro-2k@8"]
        assert diff.regressions == 0  # coverage loss is visible, not a flip


def synthetic_run():
    """A handcrafted campaign with fixed host metrics for golden tests."""
    run = CampaignRun(name="golden-001", suite="micro")
    run.cells.append(
        CellResult(
            key="micro-2k@8",
            family="micro-2k",
            ranks=8,
            cell_id="feedc0de00000001",
            deterministic={
                "family": "micro-2k",
                "ranks": 8,
                "configs": {
                    "S-LocW": {"makespan": 12.0},
                    "P-LocR": {"makespan": 8.0},
                },
                "winner": "P-LocR",
                "paper_best": "P-LocR",
                "paper_hit": True,
            },
            host=HostMetrics(
                kind=KIND_SIMULATED,
                wall_seconds=2.0,
                simulated_seconds=20.0,
                events_executed=640,
                flow_recomputes=640,
                solver_iterations=2788,
                peak_tracemalloc_bytes=1000,
                runs=2,
            ),
            provenance={},
        )
    )
    return run


GOLDEN_MARKDOWN = """\
# Campaign `golden-001` (micro suite)

1 cell(s); paper-winner hit rate **1/1**.

## Runtime heatmap (normalized to each cell's best config)

| cell | S-LocW | P-LocR | winner | paper |
|---|---|---|---|---|
| micro-2k@8 | 1.50 | **1.00** | P-LocR | P-LocR ✓ |

## Host cost

| metric | value |
|---|---|
| wall seconds (total) | 2.00 |
| simulated seconds (total) | 20.00 |
| sim-seconds / wall-second | 10.0 |
| engine events | 640 |
| events / wall-second | 320 |
| flow recomputations | 640 |
| solver iterations | 2788 |
| solver classes (summed) | 0 |
| memo hit rate | 0.0% (0/0) |
| recomputes coalesced | 0 |
| components skipped | 0 |
| vector batches | 0 |
| peak tracemalloc bytes | 1000 |
"""


class TestReport:
    def test_markdown_golden(self):
        assert campaign_report(synthetic_run(), markdown=True) == GOLDEN_MARKDOWN

    def test_terminal_render(self):
        text = campaign_report(synthetic_run(), markdown=False)
        assert "golden-001" in text
        assert "hit rate: 1/1" in text
        assert "P-LocR" in text

    def test_memo_hit_rate_in_header_and_gtc_warning(self):
        run = synthetic_run()
        cell = run.cells[0]
        cell.host.solver_memo_hits = 30.0
        cell.host.solver_memo_misses = 10.0
        for markdown in (True, False):
            text = campaign_report(run, markdown=markdown)
            assert "solver memo hit rate 75.0% (30/40)" in text
            assert "Warning" not in text and "WARNING" not in text
        # A GTC-class cell where the solver reuses *nothing* — no memo
        # hits and no skipped components — gets called out loudly.
        cell.key = "gtc-8@8"
        cell.host.solver_memo_hits = 0.0
        cell.host.solver_components_skipped = 0.0
        markdown_text = campaign_report(run, markdown=True)
        assert "> **Warning:** gtc-8@8: solver reused no work" in markdown_text
        terminal_text = campaign_report(run, markdown=False)
        assert "WARNING: gtc-8@8: solver reused no work" in terminal_text

    def test_gtc_warning_demoted_by_any_reuse_signal(self):
        """Memo hits *or* skipped components both count as the fast path
        working; either one silences the GTC call-out."""
        for field in ("solver_memo_hits", "solver_components_skipped"):
            run = synthetic_run()
            cell = run.cells[0]
            cell.key = "gtc-8@8"
            cell.host.solver_memo_misses = 40.0
            setattr(cell.host, field, 5.0)
            for markdown in (True, False):
                text = campaign_report(run, markdown=markdown)
                assert "Warning" not in text and "WARNING" not in text, field

    def test_memo_line_omitted_without_lookups(self):
        # synthetic_run has no memo counters: the header stays clean.
        assert "solver memo hit rate" not in campaign_report(
            synthetic_run(), markdown=True
        ).splitlines()[2]


class TestCli:
    def run_cli(self, *argv):
        return obs_main(list(argv))

    def test_end_to_end(self, tmp_path, capsys):
        store_dir = str(tmp_path / "campaigns")
        common = ["campaign", "run", "--dir", store_dir, "--iterations", "1"]
        assert self.run_cli(*common, "--suite", "micro") == 0
        assert (
            self.run_cli(
                *common,
                "--suite",
                "micro",
                "--cal-set",
                f"local_write_peak={DEFAULT_CALIBRATION.local_write_peak * 0.15}",
                "--profile",
            )
            == 0
        )
        assert self.run_cli("campaign", "list", "--dir", store_dir) == 0
        assert self.run_cli("campaign", "validate", "--dir", store_dir) == 0
        assert (
            self.run_cli("campaign", "show", "micro-001", "--dir", store_dir)
            == 0
        )
        # The perturbation flips winners -> diff exits 1 under --fail-on flips.
        assert (
            self.run_cli(
                "campaign", "diff", "micro-001", "micro-002", "--dir", store_dir
            )
            == 1
        )
        assert (
            self.run_cli(
                "campaign",
                "diff",
                "micro-001",
                "micro-001",
                "--dir",
                store_dir,
                "--fail-on",
                "regressions",
            )
            == 0
        )
        report_path = tmp_path / "report.md"
        assert (
            self.run_cli(
                "campaign",
                "report",
                "micro-001",
                "--dir",
                store_dir,
                "--out",
                str(report_path),
            )
            == 0
        )
        assert "## Runtime heatmap" in report_path.read_text(encoding="utf-8")
        capsys.readouterr()  # drain

    def test_bench_out(self, tmp_path):
        store_dir = str(tmp_path / "campaigns")
        bench_path = tmp_path / "BENCH_campaign.json"
        assert (
            self.run_cli(
                "campaign",
                "run",
                "--dir",
                store_dir,
                "--suite",
                "micro",
                "--iterations",
                "1",
                "--config",
                "S-LocW",
                "--bench-out",
                str(bench_path),
            )
            == 0
        )
        record = json.loads(bench_path.read_text(encoding="utf-8"))
        assert record["bench"] == "campaign"
        assert record["cells"] == 2

    def test_bad_cal_set_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            self.run_cli(
                "campaign",
                "run",
                "--dir",
                str(tmp_path),
                "--cal-set",
                "nonsense",
            )
