"""Worker pool: inline/parallel execution, crash, timeout, and drain."""

import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.service.pool import (
    STATUS_CRASH,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    TaskSpec,
    WorkerPool,
)


# Module-level so worker processes can resolve them by reference.
def _double(payload):
    return payload["value"] * 2


def _boom(payload):
    raise ValueError(f"boom {payload['value']}")


def _crash_or_double(payload):
    if payload.get("crash"):
        os._exit(13)
    return payload["value"] * 2


def _sleep(payload):
    time.sleep(payload["seconds"])
    return "slept"


def _specs(count):
    return [TaskSpec(task_id=f"t{i}", payload={"value": i}) for i in range(count)]


def test_jobs_must_be_positive():
    with pytest.raises(ConfigurationError):
        WorkerPool(_double, jobs=0)


def test_inline_success_and_error():
    pool = WorkerPool(_double, jobs=1)
    outcomes = pool.run(_specs(3))
    assert [o.status for o in outcomes] == [STATUS_DONE] * 3
    assert [o.result for o in outcomes] == [0, 2, 4]

    outcomes = WorkerPool(_boom, jobs=1).run(_specs(2))
    assert all(o.status == STATUS_ERROR for o in outcomes)
    assert "boom 1" in outcomes[1].error
    assert all(o.retryable for o in outcomes)


def test_inline_drain_skips_remaining():
    calls = []

    def stop_after_first():
        return bool(calls)

    def on_outcome(outcome):
        calls.append(outcome.task_id)

    outcomes = WorkerPool(_double, jobs=1).run(
        _specs(3), should_stop=stop_after_first, on_outcome=on_outcome
    )
    assert outcomes[0].status == STATUS_DONE
    assert [o.status for o in outcomes[1:]] == [STATUS_SKIPPED] * 2
    assert not outcomes[1].retryable


def test_parallel_preserves_submission_order():
    pool = WorkerPool(_double, jobs=2)
    outcomes = pool.run(_specs(5))
    assert [o.task_id for o in outcomes] == [f"t{i}" for i in range(5)]
    assert [o.result for o in outcomes] == [0, 2, 4, 6, 8]
    assert all(o.wall_seconds >= 0 for o in outcomes)


def test_parallel_worker_exception_is_contained():
    outcomes = WorkerPool(_boom, jobs=2).run(_specs(3))
    assert all(o.status == STATUS_ERROR for o in outcomes)
    assert all("boom" in o.error for o in outcomes)


def test_worker_crash_reported_and_pool_recovers():
    specs = [
        TaskSpec(task_id="ok-a", payload={"value": 1}),
        TaskSpec(task_id="dead", payload={"value": 2, "crash": True}),
        TaskSpec(task_id="ok-b", payload={"value": 3}),
    ]
    outcomes = WorkerPool(_crash_or_double, jobs=2).run(specs)
    by_id = {o.task_id: o for o in outcomes}
    assert by_id["dead"].status == STATUS_CRASH
    assert by_id["dead"].retryable
    # The pool rebuilt itself; tasks dispatched after the crash completed.
    # (Tasks in flight *with* the crasher may be collateral crashes — the
    # queue's retry budget handles those — but not every task may fail.)
    done = [o for o in outcomes if o.status == STATUS_DONE]
    assert done
    for outcome in done:
        assert outcome.result in (2, 6)


def test_timeout_kills_overdue_task_and_spares_innocents():
    specs = [
        TaskSpec(task_id="slow", payload={"seconds": 30.0}, timeout_seconds=0.3),
        TaskSpec(task_id="fast", payload={"seconds": 0.01}),
    ]
    t0 = time.perf_counter()
    outcomes = WorkerPool(_sleep, jobs=2).run(specs)
    elapsed = time.perf_counter() - t0
    by_id = {o.task_id: o for o in outcomes}
    assert by_id["slow"].status == STATUS_TIMEOUT
    assert "timeout" in by_id["slow"].error
    assert by_id["fast"].status == STATUS_DONE
    assert elapsed < 20.0  # nowhere near the 30s sleep
