"""Baseline-suppression tests: only new findings fail."""

import json

import pytest

from repro.analysis.baseline import Baseline, finding_key
from repro.analysis.diagnostics import Diagnostic


def diag(code="SVC401", path="src/repro/obs/a.py", message="shared state", line=10):
    return Diagnostic(code=code, message=message, path=path, line=line)


class TestMatching:
    def test_split_partitions_new_and_accepted(self):
        accepted = diag()
        fresh = diag(code="SIM201", message="clock taint")
        baseline = Baseline.from_diagnostics([accepted])
        new, old = baseline.split([accepted, fresh])
        assert [d.code for d in new] == ["SIM201"]
        assert [d.code for d in old] == ["SVC401"]

    def test_matching_is_line_independent(self):
        baseline = Baseline.from_diagnostics([diag(line=10)])
        moved = diag(line=99)
        assert moved in baseline

    def test_path_separators_normalized(self):
        baseline = Baseline.from_diagnostics(
            [diag(path="src/repro/obs/a.py")]
        )
        windows = diag(path="src\\repro\\obs\\a.py")
        assert windows in baseline

    def test_different_message_is_new(self):
        baseline = Baseline.from_diagnostics([diag(message="shared state")])
        assert diag(message="other finding") not in baseline

    def test_unused_entries_reported(self):
        baseline = Baseline.from_diagnostics([diag(), diag(code="SIM203")])
        assert baseline.unused([diag()]) == [finding_key(diag(code="SIM203"))]


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        original = Baseline.from_diagnostics([diag(), diag(code="SIM202")])
        original.dump(path)
        loaded = Baseline.load(path)
        assert loaded.keys == original.keys

    def test_file_is_sorted_and_versioned(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        Baseline.from_diagnostics(
            [diag(code="UNIT601"), diag(code="SIM201")]
        ).dump(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["version"] == 1
        codes = [entry["code"] for entry in payload["findings"]]
        assert codes == sorted(codes)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))

    def test_non_baseline_file_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            Baseline.load(str(path))
