"""Export acceptance tests: schema, reconciliation, determinism, CLI.

These are the PR's acceptance criteria made executable:

* a small S-LocW run exports valid Chrome trace JSON (``ph`` / ``ts`` /
  ``pid``/``tid`` schema-checked);
* counter totals reconcile exactly with :meth:`Tracer.total_time`, the
  metrics-layer :class:`RunResult`, and the workflow spec's data volume —
  for **every** Table I configuration;
* two identical runs export byte-identical trace JSON.
"""

import dataclasses
import json

import pytest

from repro.apps.microbench import SMALL_OBJECT_BYTES, micro_workflow
from repro.core.configs import ALL_CONFIGS, S_LOCW
from repro.obs.capture import capture_runs, observe_workflow
from repro.obs.cli import main as obs_main
from repro.obs.export import (
    READER_TID_OFFSET,
    chrome_trace,
    metrics_records,
    span_records,
    to_json,
    to_jsonl,
    trace_makespans,
    validate_chrome_trace,
)
from repro.obs.spans import leaf_spans
from repro.units import MICROSECOND


def small_spec(ranks=4, iterations=2):
    return micro_workflow(SMALL_OBJECT_BYTES, ranks=ranks, iterations=iterations)


@pytest.fixture(scope="module")
def observed():
    """One small observed S-LocW run shared by the schema tests."""
    return observe_workflow(small_spec(), S_LOCW)


@pytest.fixture(scope="module")
def document(observed):
    return chrome_trace([observed])


class TestChromeTraceSchema:
    def test_document_validates(self, document):
        assert validate_chrome_trace(document) == []

    def test_events_have_required_fields(self, document):
        for event in document["traceEvents"]:
            assert event["ph"] in ("X", "C", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_process_and_thread_metadata(self, document):
        names = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        spec = small_spec()
        for rank in range(spec.ranks):
            assert (1, rank, f"writer {rank}") in names
            assert (1, READER_TID_OFFSET + rank, f"reader {rank}") in names
        process = next(
            e
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        )
        assert "[S-LocW]" in process["args"]["name"]

    def test_timestamps_are_microseconds(self, observed, document):
        writes = [s for s in leaf_spans(observed.spans()) if s.name == "write"]
        first = min(writes, key=lambda s: (s.start, s.rank))
        matches = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X"
            and e["name"] == "write"
            and e["ts"] == first.start / MICROSECOND
        ]
        assert matches
        assert matches[0]["dur"] == pytest.approx(first.duration / MICROSECOND)

    def test_counter_tracks_present(self, document):
        counter_names = {
            e["name"] for e in document["traceEvents"] if e["ph"] == "C"
        }
        assert "engine.queue_depth" in counter_names
        assert "flow.active" in counter_names
        assert "channel.versions_published" in counter_names
        assert any(name.startswith("resource.bytes_moved") for name in counter_names)

    def test_validator_rejects_broken_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": -1, "pid": 0, "tid": 0}]}
        ) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "Q", "ts": 0, "pid": 0, "tid": 0}]}
        ) != []
        assert validate_chrome_trace(
            {
                "traceEvents": [],
                "repro": {"runs": [{"makespan": 1.0}]},
            }
        ) != []


class TestReconciliation:
    """Counter totals must agree exactly with the metrics layer and spec."""

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.label)
    def test_payload_bytes_match_spec_all_table01_configs(self, config):
        spec = small_spec()
        obs = observe_workflow(spec, config)
        socket = 0 if config.writer_local else 1
        probes = obs.probes
        expected = float(spec.total_data_bytes())
        assert probes.counter_total(
            "pmem.payload_bytes", socket=socket, direction="write"
        ) == expected
        assert probes.counter_total(
            "pmem.payload_bytes", socket=socket, direction="read"
        ) == expected
        # Nothing was attributed to the other socket.
        assert probes.counter_total(
            "pmem.payload_bytes", socket=1 - socket
        ) == 0.0
        assert obs.result.bytes_written == expected
        assert obs.result.bytes_read == expected

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.label)
    def test_makespans_in_export_match_results(self, config):
        spec = small_spec()
        obs = observe_workflow(spec, config)
        document = chrome_trace([obs])
        makespans = trace_makespans(document)
        assert makespans == {f"{spec.name}|{config.label}": obs.result.makespan}
        run = document["repro"]["runs"][0]
        assert run["writer_runtime"] == obs.result.writer_runtime
        assert run["reader_runtime"] == obs.result.reader_runtime

    def test_channel_counters_match_spec(self, observed):
        spec = small_spec()
        probes = observed.probes
        versions = float(spec.ranks * spec.iterations)
        assert probes.counter_total("channel.versions_published") == versions
        assert probes.counter_total("channel.versions_consumed") == versions
        assert probes.counter_total("channel.bytes_published") == float(
            spec.total_data_bytes()
        )

    def test_span_durations_match_tracer_total_time(self, observed):
        tracer = observed.tracer
        totals = {}
        for span in leaf_spans(observed.spans()):
            key = (span.component, span.name)
            totals[key] = totals.get(key, 0.0) + span.duration
        for (component, phase), total in totals.items():
            assert total == pytest.approx(
                tracer.total_time(component, phase), rel=1e-12
            )
        run_span = observed.spans()[0]
        assert run_span.end == observed.result.makespan

    def test_engine_counters_latched(self, observed):
        probes = observed.probes
        events = probes.counter_total("engine.events_executed")
        scheduled = probes.counter_total("engine.timers_scheduled")
        assert events > 0
        assert scheduled >= events


class TestDeterminism:
    def test_identical_runs_export_byte_identical_json(self):
        spec = small_spec()
        first = to_json(chrome_trace([observe_workflow(spec, S_LOCW)]))
        second = to_json(chrome_trace([observe_workflow(spec, S_LOCW)]))
        assert first == second

    def test_jsonl_dumps_deterministic(self):
        spec = small_spec()
        a = observe_workflow(spec, S_LOCW)
        b = observe_workflow(spec, S_LOCW)
        assert to_jsonl(span_records([a])) == to_jsonl(span_records([b]))
        assert to_jsonl(metrics_records([a])) == to_jsonl(metrics_records([b]))


class TestCaptureContext:
    def test_capture_observes_every_run(self):
        from repro.workflow.runner import run_workflow

        spec = small_spec()
        with capture_runs() as session:
            for config in ALL_CONFIGS:
                run_workflow(spec, config)
        assert len(session.finalized) == len(ALL_CONFIGS)
        labels = [obs.manifest.config for obs in session.finalized]
        assert labels == [config.label for config in ALL_CONFIGS]
        document = chrome_trace(session.finalized)
        assert validate_chrome_trace(document) == []
        assert len(document["repro"]["runs"]) == len(ALL_CONFIGS)
        assert len({run["pid"] for run in document["repro"]["runs"]}) == len(
            ALL_CONFIGS
        )

    def test_runs_outside_capture_are_unobserved(self):
        from repro.workflow.runner import run_workflow

        result = run_workflow(small_spec(), S_LOCW)
        assert result.observation is None
        assert result.tracer is None


class TestCli:
    def test_export_validate_diff_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        spans = tmp_path / "spans.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        manifest = tmp_path / "manifest.json"
        # micro-2k@8 with 1 iteration keeps the CLI test fast.
        argv = [
            "export",
            "--config",
            "S-LocW",
            "--iterations",
            "1",
            "--out",
            str(trace),
            "--spans-out",
            str(spans),
            "--metrics-out",
            str(metrics),
            "--manifest-out",
            str(manifest),
        ]
        assert obs_main(argv) == 0
        assert obs_main(["validate", str(trace)]) == 0
        document = json.loads(trace.read_text())
        assert validate_chrome_trace(document) == []
        assert [json.loads(line) for line in spans.read_text().splitlines()]
        assert [json.loads(line) for line in metrics.read_text().splitlines()]
        manifests = json.loads(manifest.read_text())
        assert manifests[0]["config"] == "S-LocW"

        assert obs_main(["diff", str(trace), str(trace)]) == 0
        out = capsys.readouterr().out
        assert "identical" in out

    def test_validate_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        assert obs_main(["validate", str(bad)]) == 1

    def test_summary_prints_hot_phases(self, capsys):
        assert obs_main(["summary", "--config", "S-LocW", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "writer;write" in out
        assert "makespan" in out
