"""SIM2xx analyzer tests: one true positive PR-1 rules cannot see, plus
sanctioned-path negatives, for each rule."""

import textwrap

from repro.analysis.project import Project
from repro.analysis.taint import check_determinism_taint


def check(sources):
    project = Project.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )
    return check_determinism_taint(project)


def codes(sources):
    return [d.code for d in check(sources)]


class TestSIM201HostClock:
    def test_clock_through_helper_into_store_record(self):
        # The acceptance true positive: SIM109 sees nothing here (the
        # clock call is plain) but the value lands in a StoredCell.
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import time
                from repro.obs.store import StoredCell

                def _stamp():
                    return time.time()

                def record(store, key):
                    cell = StoredCell(
                        cell_id="c", key=key, deterministic={"t": _stamp()}
                    )
                    store.append_cell("results", cell)
                """
            }
        )
        assert "SIM201" in found

    def test_cross_module_helper_chain(self):
        found = codes(
            {
                "src/repro/service/helpers.py": """
                import time

                def wall_stamp():
                    return time.time()
                """,
                "src/repro/obs/fixture.py": """
                from repro.service.helpers import wall_stamp

                def publish(tracer):
                    tracer.record("event", wall_stamp())
                """,
            }
        )
        assert "SIM201" in found

    def test_hostmetrics_module_is_sanctioned(self):
        found = codes(
            {
                "src/repro/obs/hostmetrics.py": """
                import time

                def read_clock():
                    return time.time()
                """,
                "src/repro/obs/fixture.py": """
                from repro.obs.hostmetrics import read_clock

                def publish(tracer):
                    tracer.record("event", read_clock())
                """,
            }
        )
        assert found == []

    def test_runtime_package_is_sanctioned(self):
        found = codes(
            {
                "src/repro/runtime/threaded.py": """
                import time
                from repro.obs.store import StoredCell

                def snapshot():
                    return StoredCell(cell_id="c", key=time.time())
                """
            }
        )
        assert found == []

    def test_host_kwarg_is_exempt_by_design(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import time
                from repro.obs.store import StoredCell

                def record(metrics):
                    return StoredCell(
                        cell_id="c",
                        key="k",
                        deterministic={},
                        host={"wall": time.time()},
                    )
                """
            }
        )
        assert found == []

    def test_manifest_provenance_kwargs_exempt(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import subprocess

                def build(sha, RunManifest):
                    return RunManifest(git_sha=sha, workflow="w")
                """
            }
        )
        assert found == []

    def test_clock_into_manifest_kwarg_flagged(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import time

                def build(build_manifest):
                    return build_manifest(workflow="w", stamp=time.time())
                """
            }
        )
        assert "SIM201" in found


class TestSIM202Entropy:
    def test_uuid_into_cell_id_hash(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import uuid
                from repro.obs.store import cell_id_from_manifests

                def make_id():
                    return cell_id_from_manifests([{"run": str(uuid.uuid4())}])
                """
            }
        )
        assert "SIM202" in found

    def test_seeded_random_module_alias(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import random

                def jitter(tracer):
                    tracer.record("event", random.random())
                """
            }
        )
        assert "SIM202" in found

    def test_getpid_into_store(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import os
                from repro.obs.store import StoredCell

                def record():
                    return StoredCell(cell_id="c", key=os.getpid())
                """
            }
        )
        assert "SIM202" in found


class TestSIM203IterOrder:
    def test_listdir_order_into_trace(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import os

                def emit(tracer, root):
                    names = []
                    for name in os.listdir(root):
                        names.append(name)
                    tracer.record("files", names)
                """
            }
        )
        assert "SIM203" in found

    def test_sorted_listdir_is_clean(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import os

                def emit(tracer, root):
                    names = []
                    for name in sorted(os.listdir(root)):
                        names.append(name)
                    tracer.record("files", names)
                """
            }
        )
        assert found == []

    def test_set_iteration_into_dict_is_clean(self):
        # canonical_json serializes with sort_keys=True: dict stores
        # forget iteration order by construction.
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                def emit(tracer, results):
                    payload = {}
                    for name in set(results):
                        payload[name] = 1
                    tracer.record("done", payload)
                """
            }
        )
        assert found == []


class TestSuppression:
    def test_noqa_suppresses_taint_finding(self):
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import time

                def publish(tracer):
                    tracer.record("event", time.time())  # noqa: SIM201 startup marker
                """
            }
        )
        assert found == []

    def test_hotpath_marker_does_not_suppress_taint(self):
        # ``# simlint: hotpath`` feeds SIM111 only; dataflow findings on
        # the same function still fire.
        found = codes(
            {
                "src/repro/obs/fixture.py": """
                import time

                def publish(tracer):  # simlint: hotpath
                    tracer.record("event", time.time())
                """
            }
        )
        assert "SIM201" in found
