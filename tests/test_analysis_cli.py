"""Tests for the ``python -m repro.analysis`` CLI and repo cleanliness."""

import json
import os

import pytest

from repro.analysis.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


class TestCli:
    def test_repo_tree_is_clean(self, capsys):
        """The acceptance gate: the shipped tree has zero violations."""
        assert main([SRC]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main([SRC, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["diagnostics"] == []

    def test_violating_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\nCHUNK = 4096\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM101" in out and "SIM106" in out

    def test_select_restricts_codes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\nCHUNK = 4096\n")
        assert main([str(bad), "--select", "SIM106"]) == 1
        out = capsys.readouterr().out
        assert "SIM106" in out and "SIM101" not in out

    def test_ignore_suppresses_codes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("CHUNK = 4096\n")
        assert main([str(bad), "--ignore", "SIM106"]) == 0

    def test_unknown_code_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--select", "NOPE1"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM101", "SIM106", "SPEC201", "PLAT301"):
            assert code in out

    def test_platform_only(self, capsys):
        assert main(["--platform-only"]) == 0
