"""Tests for the ``python -m repro.analysis`` CLI and repo cleanliness."""

import json
import os
import time

import pytest

from repro.analysis.cli import main
from repro.analysis.sarif import validate_sarif

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


class TestCli:
    def test_repo_tree_is_clean(self, capsys):
        """The acceptance gate: the shipped tree has zero violations."""
        assert main([SRC]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main([SRC, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["diagnostics"] == []

    def test_violating_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\nCHUNK = 4096\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM101" in out and "SIM106" in out

    def test_select_restricts_codes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\nCHUNK = 4096\n")
        assert main([str(bad), "--select", "SIM106"]) == 1
        out = capsys.readouterr().out
        assert "SIM106" in out and "SIM101" not in out

    def test_ignore_suppresses_codes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("CHUNK = 4096\n")
        assert main([str(bad), "--ignore", "SIM106"]) == 0

    def test_unknown_code_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--select", "NOPE1"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM101", "SIM106", "SPEC201", "PLAT301"):
            assert code in out

    def test_platform_only(self, capsys):
        assert main(["--platform-only"]) == 0


class TestDataflowWiring:
    def test_select_dataflow_families(self, capsys):
        # The DESIGN quick-start invocation must work end to end.
        assert main([SRC, "--select", "SIM2,SVC4,UNIT6"]) == 0

    def test_taint_finding_fails_run(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "obs" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n\n"
            "def f(tracer):\n"
            "    tracer.record('event', time.time())\n"
        )
        assert main([str(tmp_path), "--select", "SIM2"]) == 1
        assert "SIM201" in capsys.readouterr().out

    def test_no_dataflow_skips_taint(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "obs" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n\n"
            "def f(tracer):\n"
            "    tracer.record('event', time.time())\n"
        )
        assert main([str(tmp_path), "--select", "SIM2", "--no-dataflow"]) == 0


class TestSarifFormat:
    def test_sarif_output_validates(self, capsys):
        assert main([SRC, "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert validate_sarif(document) == []

    def test_sarif_carries_findings(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("CHUNK = 4096\n")
        assert main([str(bad), "--format", "sarif", "--no-baseline"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert validate_sarif(document) == []
        assert document["runs"][0]["results"][0]["ruleId"] == "SIM106"


class TestBaselineFlow:
    def _write_bad(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nstamp = time.time()\n")
        return bad

    def test_baseline_accepts_existing_findings(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline", "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert main([str(bad), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_new_finding_still_fails(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline", "--baseline", str(baseline)]) == 0
        bad.write_text(bad.read_text() + "CHUNK = 4096\n")
        assert main([str(bad), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "SIM106" in out and "SIM101" not in out

    def test_no_baseline_shows_everything(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline", "--baseline", str(baseline)]) == 0
        assert (
            main([str(bad), "--baseline", str(baseline), "--no-baseline"]) == 1
        )

    def test_committed_baseline_matches_tree(self):
        # analysis-baseline.json is committed; regenerating it from the
        # current tree must be a no-op (no stale or missing entries).
        from repro.analysis.baseline import Baseline
        from repro.analysis.diagnostics import DiagnosticSink
        from repro.analysis.cli import _run_dataflow
        from repro.analysis.simlint import lint_paths

        sink = DiagnosticSink()
        lint_paths([SRC], sink=sink)
        _run_dataflow([SRC], sink)
        current = Baseline.from_diagnostics(sink.sorted())
        committed = Baseline.load(os.path.join(REPO_ROOT, "analysis-baseline.json"))
        normalize = lambda keys: {
            (code, path.replace(REPO_ROOT.replace(os.sep, "/") + "/", ""), msg)
            for code, path, msg in keys
        }
        assert normalize(current.keys) == normalize(committed.keys)


class TestFixFlag:
    def test_fix_rewrites_then_passes(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("CHUNK = 4096\n")
        assert main([str(tmp_path), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "fixed 1 magic literal(s)" in out
        assert "KiB" in bad.read_text()


class TestAnalysisRuntime:
    def test_full_tree_analysis_under_ten_seconds(self):
        """The CI wall guard: lint + all dataflow passes over src/."""
        from repro.analysis.cli import _run_dataflow
        from repro.analysis.diagnostics import DiagnosticSink
        from repro.analysis.simlint import lint_paths

        start = time.perf_counter()
        sink = DiagnosticSink()
        lint_paths([SRC], sink=sink)
        _run_dataflow([SRC], sink)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, f"analysis took {elapsed:.1f}s (budget 10s)"
