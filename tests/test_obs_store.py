"""Campaign store semantics: cell ids, append-only, schema validation."""

import json

import pytest

from repro.errors import StorageError
from repro.obs.store import (
    CELL_ID_LENGTH,
    PROVENANCE_FIELDS,
    STORE_SCHEMA_VERSION,
    CampaignStore,
    StoredCell,
    canonical_json,
    cell_id_from_manifests,
    manifest_determinism_payload,
    validate_campaign_lines,
    validate_record,
)


def manifest(config="S-LocW", **overrides):
    base = {
        "schema_version": 1,
        "workflow": "micro-2k@8",
        "config": config,
        "ranks": 8,
        "iterations": 2,
        "calibration_sha256": "abc123",
        "git_sha": "deadbeef",
        "repro_version": "0.1.0",
        "python_version": "3.11.0",
    }
    base.update(overrides)
    return base


def cell(cell_id="0" * CELL_ID_LENGTH, key="micro-2k@8"):
    return StoredCell(
        cell_id=cell_id,
        key=key,
        deterministic={
            "family": "micro-2k",
            "ranks": 8,
            "configs": {"S-LocW": {"makespan": 1.0}},
            "winner": "S-LocW",
        },
        host={"kind": "simulated", "wall_seconds": 0.5},
    )


class TestCellIds:
    def test_deterministic_across_calls(self):
        manifests = [manifest("S-LocW"), manifest("P-LocR")]
        assert cell_id_from_manifests(manifests) == cell_id_from_manifests(
            manifests
        )

    def test_config_order_irrelevant(self):
        forward = [manifest("S-LocW"), manifest("P-LocR")]
        assert cell_id_from_manifests(forward) == cell_id_from_manifests(
            list(reversed(forward))
        )

    def test_provenance_fields_excluded(self):
        a = [manifest(git_sha="aaa", repro_version="1", python_version="x")]
        b = [manifest(git_sha="bbb", repro_version="2", python_version="y")]
        assert cell_id_from_manifests(a) == cell_id_from_manifests(b)

    def test_calibration_changes_id(self):
        a = [manifest(calibration_sha256="aaa")]
        b = [manifest(calibration_sha256="bbb")]
        assert cell_id_from_manifests(a) != cell_id_from_manifests(b)

    def test_spec_changes_id(self):
        assert cell_id_from_manifests(
            [manifest(iterations=2)]
        ) != cell_id_from_manifests([manifest(iterations=3)])

    def test_length_and_charset(self):
        cell_id = cell_id_from_manifests([manifest()])
        assert len(cell_id) == CELL_ID_LENGTH
        assert set(cell_id) <= set("0123456789abcdef")

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            cell_id_from_manifests([])

    def test_determinism_payload_strips_provenance(self):
        payload = manifest_determinism_payload(manifest())
        assert not set(PROVENANCE_FIELDS) & set(payload)
        assert payload["config"] == "S-LocW"


class TestAppendOnly:
    def test_create_refuses_overwrite(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.create("camp", {"suite": "micro"})
        with pytest.raises(StorageError):
            store.create("camp", {"suite": "micro"})

    def test_append_requires_existing_campaign(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        with pytest.raises(StorageError):
            store.append_cell("missing", cell())

    def test_duplicate_cell_id_rejected(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.create("camp", {"suite": "micro"})
        store.append_cell("camp", cell())
        with pytest.raises(StorageError):
            store.append_cell("camp", cell())

    def test_round_trip(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.create("camp", {"suite": "micro", "extra": 7})
        store.append_cell("camp", cell("a" * 16))
        store.append_cell("camp", cell("b" * 16, key="micro-64mb@8"))
        loaded = store.read("camp")
        assert loaded.header["suite"] == "micro"
        assert loaded.header["extra"] == 7
        assert [c.cell_id for c in loaded.cells] == ["a" * 16, "b" * 16]
        assert loaded.cells_by_key["micro-2k@8"].deterministic["winner"] == "S-LocW"

    def test_next_name_skips_existing(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        assert store.next_name("micro") == "micro-001"
        store.create("micro-001", {"suite": "micro"})
        assert store.next_name("micro") == "micro-002"

    def test_bad_names_rejected(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        for bad in ("", ".hidden", "a/b"):
            with pytest.raises(StorageError):
                store.path(bad)


class TestSchemaValidation:
    def test_valid_file_passes(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.create("camp", {"suite": "micro"})
        store.append_cell("camp", cell())
        assert store.validate("camp") == []

    def test_missing_header_detected(self):
        lines = [canonical_json(cell().as_record("camp"))]
        problems = validate_campaign_lines(lines)
        assert any("no campaign header" in p for p in problems)

    def test_duplicate_cell_detected(self):
        record = canonical_json(cell().as_record("camp"))
        header = canonical_json(
            {
                "record": "campaign",
                "schema_version": STORE_SCHEMA_VERSION,
                "campaign": "camp",
                "suite": "micro",
            }
        )
        problems = validate_campaign_lines([header, record, record])
        assert any("duplicate cell_id" in p for p in problems)

    def test_winner_must_be_among_configs(self):
        record = cell().as_record("camp")
        record["deterministic"]["winner"] = "nope"
        assert any(
            "winner" in p for p in validate_record(record)
        )

    def test_invalid_json_detected(self):
        problems = validate_campaign_lines(["{not json"])
        assert any("invalid JSON" in p for p in problems)

    def test_unknown_record_type_detected(self):
        problems = validate_record({"record": "mystery"})
        assert any("unknown record type" in p for p in problems)

    def test_stored_lines_are_canonical_json(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.create("camp", {"suite": "micro"})
        store.append_cell("camp", cell())
        with open(store.path("camp"), encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                assert canonical_json(record) == line.rstrip("\n")
