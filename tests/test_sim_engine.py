"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine
from repro.sim.events import SimEvent, Timeout


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_callbacks_run_in_time_order(self):
        engine = Engine()
        seen = []
        engine.schedule(2.0, lambda: seen.append("late"))
        engine.schedule(1.0, lambda: seen.append("early"))
        engine.run()
        assert seen == ["early", "late"]
        assert engine.now == 2.0

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        seen = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(3.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.0]

    def test_cancelled_timer_does_not_fire(self):
        engine = Engine()
        seen = []
        timer = engine.schedule(1.0, lambda: seen.append("x"))
        timer.cancel()
        engine.run()
        assert seen == []

    def test_peak_queue_depth_tracked(self):
        engine = Engine()
        assert engine.peak_queue_depth == 0
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        assert engine.peak_queue_depth == 5
        engine.run()
        # The high-water mark persists after the queue drains.
        assert engine.peak_queue_depth == 5

    def test_cancel_is_idempotent(self):
        timer = Engine().schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert timer.cancelled

    def test_run_until_stops_clock_exactly(self):
        engine = Engine()
        engine.schedule(10.0, lambda: None)
        engine.run(until=4.0)
        assert engine.now == 4.0
        # The remaining event still fires afterwards.
        engine.run()
        assert engine.now == 10.0

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []
        engine.schedule(
            1.0, lambda: engine.schedule(1.0, lambda: seen.append(engine.now))
        )
        engine.run()
        assert seen == [2.0]

    def test_determinism_across_runs(self):
        def build():
            engine = Engine()
            order = []
            for i, d in enumerate((3.0, 1.0, 2.0, 1.0)):
                engine.schedule(d, lambda i=i: order.append(i))
            engine.run()
            return order

        assert build() == build()


class TestProcessesViaEngine:
    def test_spawn_runs_generator(self):
        engine = Engine()
        seen = []

        def body():
            yield Timeout(1.0)
            seen.append(engine.now)
            yield 0.5
            seen.append(engine.now)

        engine.spawn(body(), name="p")
        engine.run()
        assert seen == [1.0, 1.5]

    def test_spawn_delay(self):
        engine = Engine()
        seen = []

        def body():
            seen.append(engine.now)
            yield 0.0

        engine.spawn(body(), name="p", delay=2.0)
        engine.run()
        assert seen == [2.0]

    def test_deadlock_detection(self):
        engine = Engine()

        def blocked():
            yield SimEvent("never")

        engine.spawn(blocked(), name="blocked")
        with pytest.raises(DeadlockError, match="blocked"):
            engine.run()

    def test_deadlock_check_disabled(self):
        engine = Engine()

        def blocked():
            yield SimEvent("never")

        engine.spawn(blocked(), name="blocked")
        engine.run(check_deadlock=False)  # no exception

    def test_timeout_event_helper(self):
        engine = Engine()
        event = engine.timeout_event(1.5, value="done")
        engine.run(check_deadlock=False)
        assert event.value == "done"

    def test_alive_processes(self):
        engine = Engine()

        def body():
            yield 1.0

        process = engine.spawn(body(), name="p")
        assert not process.alive  # not yet started
        engine.step()  # start
        assert process.alive
        engine.run()
        assert not process.alive


class TestCancelledSkipAccounting:
    """The single-pop dispatch path counts skipped timers exactly once.

    ``step()`` and ``run()`` share ``_dispatch``, so the
    ``timers_cancelled_skipped`` total must be identical however the two
    are interleaved — this is the regression guard for the old double
    heap-inspection loop, which could count (or miss) a cancelled head
    depending on which entry point observed it.
    """

    def build(self):
        engine = Engine()
        seen = []
        timers = [
            engine.schedule(float(i + 1), lambda i=i: seen.append(i))
            for i in range(6)
        ]
        for i in (0, 2, 4):
            timers[i].cancel()
        return engine, seen

    def test_run_counts_all_skips(self):
        engine, seen = self.build()
        engine.run()
        assert seen == [1, 3, 5]
        assert engine.timers_cancelled_skipped == 3
        assert engine.events_executed == 3

    def test_step_matches_run_accounting(self):
        engine, seen = self.build()
        steps = 0
        while engine.step():
            steps += 1
        assert steps == 3
        assert seen == [1, 3, 5]
        assert engine.timers_cancelled_skipped == 3
        assert engine.events_executed == 3

    def test_mixed_step_then_run_accounting(self):
        engine, seen = self.build()
        assert engine.step()
        engine.run()
        assert seen == [1, 3, 5]
        assert engine.timers_cancelled_skipped == 3
        assert engine.events_executed == 3

    def test_cancel_after_pop_window(self):
        engine = Engine()
        fired = []
        victim = engine.schedule(2.0, lambda: fired.append("victim"))
        engine.schedule(1.0, victim.cancel)
        engine.run()
        assert fired == []
        assert engine.timers_cancelled_skipped == 1
        assert engine.events_executed == 1


class TestFlushHooks:
    def test_hook_fires_before_clock_advances(self):
        engine = Engine()
        log = []
        dirty = [False]

        def hook():
            if dirty[0]:
                dirty[0] = False
                log.append(("flush", engine.now))
                return True
            return False

        engine.add_flush_hook(hook)

        def mark():
            dirty[0] = True
            log.append(("mark", engine.now))

        engine.schedule(1.0, mark)
        engine.schedule(2.0, lambda: log.append(("later", engine.now)))
        engine.run()
        # The flush runs at t=1, before the clock moves to t=2.
        assert log == [("mark", 1.0), ("flush", 1.0), ("later", 2.0)]

    def test_hook_fires_on_queue_drain(self):
        engine = Engine()
        log = []
        dirty = [True]

        def hook():
            if dirty[0]:
                dirty[0] = False
                log.append("flush")
                return True
            return False

        engine.add_flush_hook(hook)
        engine.run()
        assert log == ["flush"]

    def test_hook_scheduled_timer_reexamined_before_pop(self):
        engine = Engine()
        order = []
        dirty = [True]

        def hook():
            if dirty[0]:
                dirty[0] = False
                # Deferred work lands *earlier* than the pending head; the
                # loop must re-examine the queue rather than pop t=5 first.
                engine.schedule(1.0, lambda: order.append(("hooked", engine.now)))
                return True
            return False

        engine.add_flush_hook(hook)
        engine.schedule(5.0, lambda: order.append(("head", engine.now)))
        engine.run()
        assert order == [("hooked", 1.0), ("head", 5.0)]

    def test_idle_hook_does_not_block_progress(self):
        engine = Engine()
        engine.add_flush_hook(lambda: False)
        engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.now == 1.0
        assert engine.events_executed == 1

    def test_hooks_run_in_registration_order(self):
        engine = Engine()
        order = []
        pending = {"a": True, "b": True}

        def make(name):
            def hook():
                if pending[name]:
                    pending[name] = False
                    order.append(name)
                    return True
                return False

            return hook

        engine.add_flush_hook(make("a"))
        engine.add_flush_hook(make("b"))
        engine.run()
        assert order == ["a", "b"]
