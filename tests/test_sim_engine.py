"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine
from repro.sim.events import SimEvent, Timeout


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_callbacks_run_in_time_order(self):
        engine = Engine()
        seen = []
        engine.schedule(2.0, lambda: seen.append("late"))
        engine.schedule(1.0, lambda: seen.append("early"))
        engine.run()
        assert seen == ["early", "late"]
        assert engine.now == 2.0

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        seen = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(3.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.0]

    def test_cancelled_timer_does_not_fire(self):
        engine = Engine()
        seen = []
        timer = engine.schedule(1.0, lambda: seen.append("x"))
        timer.cancel()
        engine.run()
        assert seen == []

    def test_peak_queue_depth_tracked(self):
        engine = Engine()
        assert engine.peak_queue_depth == 0
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        assert engine.peak_queue_depth == 5
        engine.run()
        # The high-water mark persists after the queue drains.
        assert engine.peak_queue_depth == 5

    def test_cancel_is_idempotent(self):
        timer = Engine().schedule(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert timer.cancelled

    def test_run_until_stops_clock_exactly(self):
        engine = Engine()
        engine.schedule(10.0, lambda: None)
        engine.run(until=4.0)
        assert engine.now == 4.0
        # The remaining event still fires afterwards.
        engine.run()
        assert engine.now == 10.0

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []
        engine.schedule(
            1.0, lambda: engine.schedule(1.0, lambda: seen.append(engine.now))
        )
        engine.run()
        assert seen == [2.0]

    def test_determinism_across_runs(self):
        def build():
            engine = Engine()
            order = []
            for i, d in enumerate((3.0, 1.0, 2.0, 1.0)):
                engine.schedule(d, lambda i=i: order.append(i))
            engine.run()
            return order

        assert build() == build()


class TestProcessesViaEngine:
    def test_spawn_runs_generator(self):
        engine = Engine()
        seen = []

        def body():
            yield Timeout(1.0)
            seen.append(engine.now)
            yield 0.5
            seen.append(engine.now)

        engine.spawn(body(), name="p")
        engine.run()
        assert seen == [1.0, 1.5]

    def test_spawn_delay(self):
        engine = Engine()
        seen = []

        def body():
            seen.append(engine.now)
            yield 0.0

        engine.spawn(body(), name="p", delay=2.0)
        engine.run()
        assert seen == [2.0]

    def test_deadlock_detection(self):
        engine = Engine()

        def blocked():
            yield SimEvent("never")

        engine.spawn(blocked(), name="blocked")
        with pytest.raises(DeadlockError, match="blocked"):
            engine.run()

    def test_deadlock_check_disabled(self):
        engine = Engine()

        def blocked():
            yield SimEvent("never")

        engine.spawn(blocked(), name="blocked")
        engine.run(check_deadlock=False)  # no exception

    def test_timeout_event_helper(self):
        engine = Engine()
        event = engine.timeout_event(1.5, value="done")
        engine.run(check_deadlock=False)
        assert event.value == "done"

    def test_alive_processes(self):
        engine = Engine()

        def body():
            yield 1.0

        process = engine.spawn(body(), name="p")
        assert not process.alive  # not yet started
        engine.step()  # start
        assert process.alive
        engine.run()
        assert not process.alive
