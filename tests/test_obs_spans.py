"""Unit tests for span building and the run manifest."""

import dataclasses

from repro.obs.manifest import (
    SCHEMA_VERSION,
    build_manifest,
    calibration_hash,
)
from repro.obs.spans import ROOT_SPAN_ID, build_spans, leaf_spans
from repro.apps.microbench import SMALL_OBJECT_BYTES, micro_workflow
from repro.core.configs import S_LOCW
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.sim.trace import Tracer


def make_tracer():
    tracer = Tracer()
    tracer.record("writer", 0, "compute", 0.0, 1.0, iteration=0)
    tracer.record("writer", 0, "write", 1.0, 1.5, iteration=0, bytes=100)
    tracer.record("writer", 0, "compute", 1.5, 2.5, iteration=1)
    tracer.record("writer", 1, "write", 1.0, 2.0, iteration=0)
    tracer.record("reader", 0, "setup", 0.0, 0.5)  # iteration -1
    tracer.record("reader", 0, "read", 1.5, 2.5, iteration=0)
    return tracer


class TestBuildSpans:
    def test_root_span_covers_run(self):
        spans = build_spans(make_tracer(), run_name="demo", makespan=3.0)
        root = spans[0]
        assert root.span_id == ROOT_SPAN_ID
        assert root.parent_id is None
        assert root.category == "run"
        assert root.name == "demo"
        assert root.start == 0.0
        assert root.end == 3.0  # extended to the makespan

    def test_rank_spans_parented_to_root(self):
        spans = build_spans(make_tracer())
        ranks = [s for s in spans if s.category == "rank"]
        assert {s.name for s in ranks} == {"writer[0]", "writer[1]", "reader[0]"}
        assert all(s.parent_id == ROOT_SPAN_ID for s in ranks)
        writer0 = next(s for s in ranks if s.name == "writer[0]")
        assert (writer0.start, writer0.end) == (0.0, 2.5)

    def test_iteration_spans_group_phases(self):
        spans = build_spans(make_tracer())
        iterations = [
            s
            for s in spans
            if s.category == "iteration" and s.component == "writer" and s.rank == 0
        ]
        assert [s.name for s in iterations] == ["iteration 0", "iteration 1"]
        phase_parents = {
            s.name: s.parent_id
            for s in spans
            if s.category == "phase" and s.component == "writer" and s.rank == 0
        }
        assert phase_parents["write"] == iterations[0].span_id

    def test_outside_iteration_attaches_to_rank(self):
        spans = build_spans(make_tracer())
        setup = next(s for s in spans if s.name == "setup")
        rank = next(s for s in spans if s.name == "reader[0]")
        assert setup.parent_id == rank.span_id
        assert setup.iteration == -1

    def test_detail_becomes_attributes(self):
        spans = build_spans(make_tracer())
        write = next(
            s for s in spans if s.name == "write" and s.rank == 0
        )
        assert write.attributes == {"bytes": 100}

    def test_span_ids_deterministic(self):
        first = build_spans(make_tracer())
        second = build_spans(make_tracer())
        assert [(s.span_id, s.parent_id, s.name) for s in first] == [
            (s.span_id, s.parent_id, s.name) for s in second
        ]

    def test_leaf_spans_are_phases(self):
        spans = build_spans(make_tracer())
        leaves = leaf_spans(spans)
        assert len(leaves) == 6
        assert all(s.category == "phase" for s in leaves)


class TestManifest:
    def spec(self):
        return micro_workflow(SMALL_OBJECT_BYTES, ranks=8, iterations=2)

    def test_fields(self):
        manifest = build_manifest(self.spec(), S_LOCW, DEFAULT_CALIBRATION)
        assert manifest.schema_version == SCHEMA_VERSION
        assert manifest.config == "S-LocW"
        assert manifest.ranks == 8
        assert manifest.iterations == 2
        assert manifest.stack == "nvstream"
        assert manifest.calibration_sha256 == calibration_hash(DEFAULT_CALIBRATION)
        assert len(manifest.calibration_sha256) == 64

    def test_no_wall_clock_fields(self):
        # Byte-identical exports forbid timestamps/hostnames in the manifest.
        data = build_manifest(self.spec(), S_LOCW, DEFAULT_CALIBRATION).as_dict()
        for key in data:
            assert "time" not in key
            assert "date" not in key
            assert "host" not in key

    def test_calibration_hash_sensitivity(self):
        base = calibration_hash(DEFAULT_CALIBRATION)
        tweaked = dataclasses.replace(
            DEFAULT_CALIBRATION,
            read_ramp_scale=DEFAULT_CALIBRATION.read_ramp_scale + 1.0,
        )
        assert calibration_hash(tweaked) != base
        assert calibration_hash(DEFAULT_CALIBRATION) == base

    def test_to_json_deterministic(self):
        manifest = build_manifest(self.spec(), S_LOCW, DEFAULT_CALIBRATION)
        again = build_manifest(self.spec(), S_LOCW, DEFAULT_CALIBRATION)
        assert manifest.to_json() == again.to_json()
