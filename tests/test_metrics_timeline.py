"""Tests for the ASCII timeline renderer.

The renderer was rewritten from an O(width x records) per-rank scan to a
single chronological sweep; the brute-force reference implementation here
pins down that the output is unchanged.
"""

import pytest

from repro.apps.microbench import SMALL_OBJECT_BYTES, micro_workflow
from repro.core.configs import P_LOCR, S_LOCW
from repro.errors import ConfigurationError
from repro.metrics.timeline import PHASE_GLYPHS, render_timeline
from repro.sim.trace import Tracer
from repro.workflow.runner import run_workflow


def reference_render(tracer, width=100, components=("writer", "reader")):
    """The pre-optimization algorithm: first-match scan per column."""
    start, end = tracer.span()
    span = end - start
    column_seconds = span / width
    lines = [
        f"timeline: {span:.2f}s total, one column = {column_seconds * 1000:.1f} ms "
        f"({', '.join(f'{glyph}={phase}' for phase, glyph in PHASE_GLYPHS.items())})"
    ]
    for component in components:
        ranks = sorted({r.rank for r in tracer.by_component(component)})
        for rank in ranks:
            intervals = list(tracer.iter_intervals(component, rank))
            row = []
            for column in range(width):
                t = start + (column + 0.5) * column_seconds
                glyph = " "
                for record in intervals:
                    if record.start <= t < record.end:
                        glyph = PHASE_GLYPHS.get(record.phase, "?")
                        break
                row.append(glyph)
            lines.append(f"{component[:6]:>6}[{rank:2d}] {''.join(row)}")
    return "\n".join(lines)


def small_run(config, ranks=4, iterations=3):
    spec = micro_workflow(SMALL_OBJECT_BYTES, ranks=ranks, iterations=iterations)
    return run_workflow(spec, config, trace=True)


class TestSweepEquivalence:
    @pytest.mark.parametrize("config", [S_LOCW, P_LOCR], ids=lambda c: c.label)
    @pytest.mark.parametrize("width", [10, 37, 100, 253])
    def test_matches_reference_on_real_traces(self, config, width):
        tracer = small_run(config).tracer
        assert render_timeline(tracer, width=width) == reference_render(
            tracer, width=width
        )

    def test_matches_reference_on_overlapping_intervals(self):
        # Overlaps and shared start times exercise the "first record in
        # sorted order wins" tie-break the sweep must preserve.
        tracer = Tracer()
        tracer.record("writer", 0, "compute", 0.0, 4.0)
        tracer.record("writer", 0, "write", 0.0, 2.0)
        tracer.record("writer", 0, "wait", 1.0, 6.0)
        tracer.record("writer", 0, "write", 5.0, 5.5)
        tracer.record("reader", 0, "read", 2.0, 3.0)
        for width in (10, 33, 64):
            assert render_timeline(tracer, width=width) == reference_render(
                tracer, width=width
            )

    def test_idle_gaps_are_blank(self):
        tracer = Tracer()
        tracer.record("writer", 0, "write", 0.0, 1.0)
        tracer.record("writer", 0, "write", 9.0, 10.0)
        rendered = render_timeline(tracer, width=10)
        row = rendered.splitlines()[1]
        assert row.endswith("W        W")


class TestRenderTimelineValidation:
    def test_narrow_width_rejected(self):
        tracer = Tracer()
        tracer.record("writer", 0, "write", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            render_timeline(tracer, width=5)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            render_timeline(Tracer())

    def test_unknown_phase_renders_question_mark(self):
        tracer = Tracer()
        tracer.record("writer", 0, "mystery", 0.0, 1.0)
        assert "?" in render_timeline(tracer, width=10)
