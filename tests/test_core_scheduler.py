"""Unit tests for the tuner, pinning, and the end-to-end scheduler."""

import pytest

from repro.apps.microbench import micro_workflow
from repro.apps.gtc import gtc_workflow
from repro.core.autotune import ExhaustiveTuner
from repro.core.configs import ALL_CONFIGS, P_LOCR, S_LOCW, SchedulerConfig
from repro.core.pinning import plan_pinning
from repro.core.scheduler import WorkflowScheduler
from repro.errors import ConfigurationError, PlacementError
from repro.platform.builder import paper_testbed, single_socket_node
from repro.units import MiB


@pytest.fixture(scope="module")
def small_spec():
    return micro_workflow(16 * MiB, ranks=4, iterations=3)


class TestExhaustiveTuner:
    def test_tunes_all_configs(self, small_spec):
        report = ExhaustiveTuner().tune(small_spec)
        assert set(report.results) == {c.label for c in ALL_CONFIGS}

    def test_best_is_minimum(self, small_spec):
        report = ExhaustiveTuner().tune(small_spec)
        best = report.best_result.makespan
        assert all(best <= r.makespan for r in report.results.values())

    def test_regret_of_best_is_zero(self, small_spec):
        report = ExhaustiveTuner().tune(small_spec)
        assert report.regret_of(report.best_config) == pytest.approx(0.0)

    def test_regret_of_unevaluated_raises(self, small_spec):
        tuner = ExhaustiveTuner(configs=[S_LOCW])
        report = tuner.tune(small_spec)
        with pytest.raises(ConfigurationError):
            report.makespan_of(P_LOCR)

    def test_empty_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            ExhaustiveTuner(configs=[])


class TestPinning:
    def test_plan_shape(self, small_spec):
        node = paper_testbed()
        plan = plan_pinning(small_spec, S_LOCW, node)
        assert plan.writer_socket == 0
        assert plan.reader_socket == 1
        assert plan.channel_socket == 0
        assert len(plan.writer_cores) == small_spec.ranks
        assert len(plan.reader_cores) == small_spec.ranks

    def test_locr_channel_on_reader_socket(self, small_spec):
        plan = plan_pinning(small_spec, P_LOCR, paper_testbed())
        assert plan.channel_socket == plan.reader_socket
        assert not plan.writer_local

    def test_plan_releases_cores(self, small_spec):
        node = paper_testbed()
        plan_pinning(small_spec, S_LOCW, node)
        assert node.socket(0).cores.available == 28

    def test_single_socket_rejected(self, small_spec):
        with pytest.raises(PlacementError, match="two sockets"):
            plan_pinning(small_spec, S_LOCW, single_socket_node())

    def test_oversubscription_rolls_back(self):
        spec = micro_workflow(16 * MiB, ranks=4, iterations=2)
        node = paper_testbed()
        node.socket(1).cores.allocate(26, owner="other")  # only 2 left
        with pytest.raises(PlacementError):
            plan_pinning(spec, S_LOCW, node)
        # Writer-side allocation must have been rolled back.
        assert node.socket(0).cores.available == 28

    def test_rank_core_lookup(self, small_spec):
        plan = plan_pinning(small_spec, S_LOCW, paper_testbed())
        assert plan.rank_core("writer", 0) == plan.writer_cores[0]
        with pytest.raises(PlacementError):
            plan.rank_core("reader", 99)

    def test_as_dict_is_json_friendly(self, small_spec):
        import json

        plan = plan_pinning(small_spec, S_LOCW, paper_testbed())
        assert json.loads(json.dumps(plan.as_dict()))["channel_socket"] == 0


class TestWorkflowScheduler:
    def test_schedule_without_execution(self, small_spec):
        outcome = WorkflowScheduler().schedule(small_spec, execute=False)
        assert outcome.result is None
        assert outcome.config in ALL_CONFIGS
        assert outcome.regret is None

    def test_schedule_with_oracle_reports_regret(self, small_spec):
        outcome = WorkflowScheduler().schedule(small_spec, with_oracle=True)
        assert outcome.regret is not None
        assert outcome.regret >= 0.0

    def test_oracle_strategy_has_zero_regret(self, small_spec):
        outcome = WorkflowScheduler(strategy="oracle").schedule(
            small_spec, with_oracle=True
        )
        assert outcome.regret == pytest.approx(0.0)

    def test_gtc_recommendation_is_low_regret(self):
        spec = gtc_workflow(ranks=16, iterations=4)
        outcome = WorkflowScheduler().schedule(spec, with_oracle=True)
        assert outcome.regret <= 0.10

    def test_executed_result_uses_recommended_config(self, small_spec):
        outcome = WorkflowScheduler().schedule(small_spec)
        assert outcome.result.config_label == outcome.config.label
