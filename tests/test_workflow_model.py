"""Unit tests for kernels, components, specs, and the analytic profile."""

import pytest

from repro.errors import ConfigurationError
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.storage.objects import SnapshotSpec
from repro.units import GiB, KiB, MiB
from repro.workflow.component import ComponentSpec
from repro.workflow.iteration import component_iteration_profile
from repro.workflow.kernels import (
    FixedWorkKernel,
    MatrixMultKernel,
    NullKernel,
    ParticlePushKernel,
    PerObjectKernel,
    StencilKernel,
)
from repro.workflow.spec import WorkflowSpec

CAL = DEFAULT_CALIBRATION


class TestKernels:
    def test_null_kernel(self):
        kernel = NullKernel()
        assert kernel.iteration_seconds() == 0.0
        assert kernel.is_null

    def test_fixed_kernel(self):
        assert FixedWorkKernel(seconds=1.5).iteration_seconds() == 1.5

    def test_fixed_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedWorkKernel(seconds=-1)

    def test_matrix_mult_flops(self):
        kernel = MatrixMultKernel(multiplies=1000, dim=10, gflops=2.0)
        assert kernel.iteration_seconds() == pytest.approx(
            1000 * 2 * 1000 / 2e9
        )

    def test_per_object_kernel(self):
        kernel = PerObjectKernel(objects=100, seconds_per_object=0.01)
        assert kernel.iteration_seconds() == pytest.approx(1.0)

    def test_particle_push(self):
        kernel = ParticlePushKernel(particles=1_000_000, flops_per_particle=400, gflops=4.0)
        assert kernel.iteration_seconds() == pytest.approx(0.1)

    def test_stencil(self):
        kernel = StencilKernel(blocks=10, cells_per_block=100, flops_per_cell=8, gflops=4.0)
        assert kernel.iteration_seconds() == pytest.approx(8000 / 4e9)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: MatrixMultKernel(multiplies=-1, dim=2),
            lambda: MatrixMultKernel(multiplies=1, dim=0),
            lambda: PerObjectKernel(objects=-1, seconds_per_object=1),
            lambda: ParticlePushKernel(particles=-1),
            lambda: StencilKernel(blocks=1, cells_per_block=1, gflops=0),
        ],
    )
    def test_invalid_kernels_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            factory()


class TestComponentSpec:
    def make(self, role="simulation", **kw):
        defaults = dict(
            role=role,
            ranks=8,
            iterations=10,
            snapshot=SnapshotSpec(object_bytes=1 * MiB, objects_per_snapshot=4),
            compute=NullKernel(),
        )
        defaults.update(kw)
        return ComponentSpec(**defaults)

    def test_io_kind(self):
        assert self.make("simulation").io_kind == "write"
        assert self.make("analytics").io_kind == "read"

    def test_invalid_role(self):
        with pytest.raises(ConfigurationError):
            self.make(role="transform")

    def test_invalid_counts(self):
        with pytest.raises(ConfigurationError):
            self.make(ranks=0)
        with pytest.raises(ConfigurationError):
            self.make(iterations=0)

    def test_total_payload(self):
        assert self.make().total_payload_bytes() == 8 * 10 * 4 * MiB


class TestWorkflowSpec:
    def make(self, **kw):
        defaults = dict(
            name="test@8",
            ranks=8,
            iterations=10,
            snapshot=SnapshotSpec(object_bytes=1 * MiB, objects_per_snapshot=4),
        )
        defaults.update(kw)
        return WorkflowSpec(**defaults)

    def test_components_share_snapshot(self):
        spec = self.make()
        assert spec.writer.snapshot == spec.reader.snapshot
        assert spec.writer.ranks == spec.reader.ranks

    def test_with_ranks_weak_scales(self):
        spec = self.make().with_ranks(24)
        assert spec.ranks == 24
        assert spec.name == "test@8@24"
        assert spec.snapshot.snapshot_bytes == 4 * MiB  # per-rank constant

    def test_with_stack(self):
        assert self.make().with_stack("novafs").stack_name == "novafs"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(name="")

    def test_total_data(self):
        assert self.make().total_data_bytes() == 8 * 10 * 4 * MiB


class TestIterationProfile:
    def writer(self, object_bytes, objects, ranks=8, compute=None):
        return ComponentSpec(
            role="simulation",
            ranks=ranks,
            iterations=10,
            snapshot=SnapshotSpec(object_bytes=object_bytes, objects_per_snapshot=objects),
            compute=compute or NullKernel(),
        )

    def test_io_only_component_has_unit_io_index(self):
        profile = component_iteration_profile(self.writer(64 * MiB, 16))
        assert profile.io_index == pytest.approx(1.0)

    def test_compute_heavy_component_has_low_io_index(self):
        profile = component_iteration_profile(
            self.writer(64 * MiB, 16, compute=FixedWorkKernel(60.0))
        )
        assert profile.io_index < 0.1

    def test_large_objects_device_bound(self):
        profile = component_iteration_profile(self.writer(64 * MiB, 16))
        assert profile.duty > 0.95

    def test_small_objects_software_bound(self):
        """§VIII: small objects -> high software overhead -> low effective
        PMEM concurrency."""
        profile = component_iteration_profile(self.writer(2 * KiB, 524288, ranks=24))
        assert profile.duty < 0.3
        assert profile.effective_concurrency < 8

    def test_remote_never_faster(self):
        local = component_iteration_profile(self.writer(64 * MiB, 16))
        remote = component_iteration_profile(self.writer(64 * MiB, 16), remote=True)
        assert remote.io_seconds >= local.io_seconds

    def test_nova_slower_than_nvstream_for_small_objects(self):
        writer = self.writer(2 * KiB, 524288)
        nvs = component_iteration_profile(writer, stack="nvstream")
        nova = component_iteration_profile(writer, stack="novafs")
        assert nova.io_seconds > nvs.io_seconds
