"""SARIF emitter + structural-validator tests."""

import json

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import all_rules
from repro.analysis.sarif import (
    SARIF_VERSION,
    render_sarif,
    sarif_document,
    validate_sarif,
)


def sample_diagnostics():
    return [
        Diagnostic(
            code="SIM201",
            message="host-clock taint reaches trace record",
            severity=Severity.ERROR,
            path="src/repro/obs/fixture.py",
            line=12,
            col=4,
            hint="route through hostmetrics",
        ),
        Diagnostic(
            code="UNIT603",
            message="mismatched binding",
            severity=Severity.WARNING,
            path="src/repro/sim/flow.py",
            line=3,
            col=0,
        ),
    ]


class TestEmitter:
    def test_document_is_valid(self):
        assert validate_sarif(sarif_document(sample_diagnostics())) == []

    def test_empty_run_is_valid(self):
        assert validate_sarif(sarif_document([])) == []

    def test_render_roundtrips_through_json(self):
        payload = json.loads(render_sarif(sample_diagnostics()))
        assert payload["version"] == SARIF_VERSION
        assert len(payload["runs"]) == 1

    def test_every_registered_rule_listed(self):
        document = sarif_document([])
        listed = {r["id"] for r in document["runs"][0]["tool"]["driver"]["rules"]}
        assert listed == {rule.code for rule in all_rules()}

    def test_result_fields(self):
        document = sarif_document(sample_diagnostics())
        result = document["runs"][0]["results"][0]
        assert result["ruleId"] == "SIM201"
        assert result["level"] == "error"
        assert "hostmetrics" in result["message"]["text"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 12
        assert region["startColumn"] == 5  # SARIF columns are 1-based

    def test_rule_index_points_at_rule(self):
        document = sarif_document(sample_diagnostics())
        run = document["runs"][0]
        for result in run["results"]:
            rule = run["tool"]["driver"]["rules"][result["ruleIndex"]]
            assert rule["id"] == result["ruleId"]

    def test_severity_levels_mapped(self):
        document = sarif_document(sample_diagnostics())
        levels = [r["level"] for r in document["runs"][0]["results"]]
        assert levels == ["error", "warning"]


class TestValidator:
    def test_rejects_wrong_version(self):
        document = sarif_document([])
        document["version"] = "2.0.0"
        assert any("version" in e for e in validate_sarif(document))

    def test_rejects_missing_runs(self):
        assert validate_sarif({"version": SARIF_VERSION, "runs": []})

    def test_rejects_result_without_message(self):
        document = sarif_document(sample_diagnostics())
        del document["runs"][0]["results"][0]["message"]
        assert any("message" in e for e in validate_sarif(document))

    def test_rejects_bad_level(self):
        document = sarif_document(sample_diagnostics())
        document["runs"][0]["results"][0]["level"] = "fatal"
        assert any("level" in e for e in validate_sarif(document))

    def test_rejects_out_of_range_rule_index(self):
        document = sarif_document(sample_diagnostics())
        document["runs"][0]["results"][0]["ruleIndex"] = 9999
        assert any("ruleIndex" in e for e in validate_sarif(document))

    def test_rejects_zero_based_region(self):
        document = sarif_document(sample_diagnostics())
        document["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "region"
        ]["startLine"] = 0
        assert any("startLine" in e for e in validate_sarif(document))

    def test_rejects_non_object(self):
        assert validate_sarif([]) == ["document must be an object"]
