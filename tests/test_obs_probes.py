"""Unit tests for the probe API (counters, gauges, histograms, registry)."""

import math

import pytest

from repro.errors import SimulationError
from repro.obs.probes import (
    Counter,
    Gauge,
    Histogram,
    ProbeRegistry,
    UNDERFLOW_BUCKET,
)


class TestCounter:
    def test_accumulates_and_samples(self):
        counter = Counter("bytes")
        counter.add(1.0, 10.0)
        counter.add(2.0, 5.0)
        assert counter.total == 15.0
        assert counter.samples == [(1.0, 10.0), (2.0, 15.0)]

    def test_negative_increment_rejected(self):
        with pytest.raises(SimulationError):
            Counter("bytes").add(0.0, -1.0)

    def test_non_finite_increment_rejected(self):
        with pytest.raises(SimulationError):
            Counter("bytes").add(0.0, math.nan)
        with pytest.raises(SimulationError):
            Counter("bytes").add(0.0, math.inf)


class TestGauge:
    def test_tracks_value_and_peak(self):
        gauge = Gauge("depth")
        gauge.set(0.0, 3.0)
        gauge.set(1.0, 7.0)
        gauge.set(2.0, 2.0)
        assert gauge.value == 2.0
        assert gauge.peak == 7.0

    def test_dedups_unchanged_values(self):
        gauge = Gauge("depth")
        gauge.set(0.0, 3.0)
        gauge.set(1.0, 3.0)
        gauge.set(2.0, 4.0)
        assert gauge.samples == [(0.0, 3.0), (2.0, 4.0)]

    def test_non_finite_rejected(self):
        with pytest.raises(SimulationError):
            Gauge("depth").set(0.0, math.inf)


class TestHistogram:
    def test_summary_stats(self):
        histogram = Histogram("rate")
        for value in (1.0, 2.0, 4.0, 4.0):
            histogram.observe(0.0, value)
        assert histogram.count == 4
        assert histogram.sum == 11.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(2.75)

    def test_log2_buckets(self):
        histogram = Histogram("rate")
        histogram.observe(0.0, 1.5)  # bucket 0
        histogram.observe(0.0, 9.0)  # bucket 3
        histogram.observe(0.0, 0.0)  # underflow
        assert histogram.buckets == {0: 1, 3: 1, UNDERFLOW_BUCKET: 1}

    def test_non_finite_rejected(self):
        with pytest.raises(SimulationError):
            Histogram("rate").observe(0.0, math.nan)


class TestProbeRegistry:
    def test_get_or_create_returns_same_instrument(self):
        probes = ProbeRegistry()
        a = probes.counter("bytes", socket=0)
        b = probes.counter("bytes", socket=0)
        assert a is b

    def test_distinct_attrs_distinct_instruments(self):
        probes = ProbeRegistry()
        assert probes.counter("bytes", socket=0) is not probes.counter(
            "bytes", socket=1
        )

    def test_attr_order_does_not_matter(self):
        probes = ProbeRegistry()
        a = probes.counter("bytes", socket=0, direction="write")
        b = probes.counter("bytes", direction="write", socket=0)
        assert a is b
        assert a.label == "bytes{direction=write,socket=0}"

    def test_non_scalar_attr_rejected(self):
        with pytest.raises(SimulationError):
            ProbeRegistry().counter("bytes", socket=[0])

    def test_disabled_registry_returns_shared_nulls(self):
        probes = ProbeRegistry(enabled=False)
        counter = probes.counter("bytes")
        counter.add(0.0, 1e9)
        assert counter.total == 0.0
        assert counter.samples == []
        assert probes.instruments() == []
        gauge = probes.gauge("depth")
        gauge.set(0.0, 5.0)
        assert gauge.samples == []
        histogram = probes.histogram("rate")
        histogram.observe(0.0, 1.0)
        assert histogram.count == 0

    def test_instruments_sorted(self):
        probes = ProbeRegistry()
        probes.gauge("zeta")
        probes.counter("beta")
        probes.counter("alpha", socket=1)
        probes.counter("alpha", socket=0)
        labels = [i.label for i in probes.instruments()]
        assert labels == ["alpha{socket=0}", "alpha{socket=1}", "beta", "zeta"]

    def test_counter_total_attrs_filter(self):
        probes = ProbeRegistry()
        probes.counter("bytes", socket=0, direction="write").add(0.0, 10.0)
        probes.counter("bytes", socket=1, direction="write").add(0.0, 5.0)
        probes.counter("bytes", socket=0, direction="read").add(0.0, 3.0)
        assert probes.counter_total("bytes") == 18.0
        assert probes.counter_total("bytes", direction="write") == 15.0
        assert probes.counter_total("bytes", socket=0) == 13.0
        assert probes.counter_total("bytes", socket=0, direction="read") == 3.0
        assert probes.counter_total("missing") == 0.0

    def test_find(self):
        probes = ProbeRegistry()
        wanted = probes.counter("bytes", socket=1)
        probes.counter("bytes", socket=0)
        assert probes.find("bytes", socket=1) is wanted
        assert probes.find("nope") is None

    def test_as_records_roundtrip_shape(self):
        probes = ProbeRegistry()
        probes.counter("bytes").add(1.0, 2.0)
        probes.gauge("depth").set(1.0, 3.0)
        probes.histogram("rate").observe(1.0, 4.0)
        records = list(probes.as_records())
        assert [r["kind"] for r in records] == ["counter", "gauge", "histogram"]
        assert records[0]["total"] == 2.0
        assert records[1]["peak"] == 3.0
        assert records[2]["count"] == 1
