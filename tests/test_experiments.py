"""Integration tests for the experiment harness.

Each experiment module must run, produce artifacts, and reproduce its
claims.  The heavyweight figure experiments reuse run machinery already
exercised elsewhere; here we verify the harness contracts and the claim
outcomes on the cheaper experiments, plus registry/CLI behaviour.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments import (
    ablation_model,
    fig01_motivation,
    fig03_parameter_space,
    fig05_micro2k,
    table01_configs,
    table02_recommendations,
)


class TestRegistry:
    def test_fourteen_experiments(self):
        assert len(EXPERIMENTS) == 14

    def test_paper_order(self):
        ids = list_experiments()
        assert ids[0] == "fig01"
        assert "table02" in ids and "headline" in ids

    def test_lookup(self):
        assert get_experiment("fig04") is EXPERIMENTS["fig04"]

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError, match="valid IDs"):
            get_experiment("fig99")


class TestCheapExperiments:
    def test_table01(self):
        result = table01_configs.run(None)
        assert result.claims_held == len(result.claims) == 1
        assert "S-LocW" in result.artifacts[0]

    def test_fig03(self):
        result = fig03_parameter_space.run(None)
        assert result.claims_held == len(result.claims)
        assert result.data["axis_values"]["concurrency"] == ["high", "low", "medium"]

    def test_fig01(self):
        result = fig01_motivation.run(None)
        assert result.claims_held == len(result.claims)

    def test_ablation_model(self):
        result = ablation_model.run(None)
        assert result.claims_held == len(result.claims)
        assert result.data["baseline_best"] == "S-LocW"
        assert result.data["no_mix_best"].startswith("P")
        assert result.data["no_remote_gap"] < 0.01


class TestFigureExperiment:
    @pytest.fixture(scope="class")
    def fig05(self):
        return fig05_micro2k.run(None)

    def test_three_panels(self, fig05):
        assert len(fig05.artifacts) == 3
        assert "Fig 5a" in fig05.artifacts[0]

    def test_winner_claims_hold(self, fig05):
        winner_claims = [c for c in fig05.claims if ".winner." in c.claim_id]
        assert len(winner_claims) == 3
        assert all(c.holds for c in winner_claims)

    def test_data_payload(self, fig05):
        assert fig05.data["best@24"] == "S-LocR"
        assert set(fig05.data["makespans@8"]) == {
            "S-LocW",
            "S-LocR",
            "P-LocW",
            "P-LocR",
        }

    def test_render_contains_claims(self, fig05):
        text = fig05.render()
        assert "Paper claims" in text
        assert "fig05" in text


class TestTable02:
    @pytest.fixture(scope="class")
    def table02(self):
        return table02_recommendations.run(None)

    def test_rule_engine_matches_paper(self, table02):
        assert table02.data["table_hits"] == table02.data["total"] == 18

    def test_low_regret(self, table02):
        assert table02.data["max_regret"] <= 0.25

    def test_claims_hold(self, table02):
        assert all(c.holds for c in table02.claims)
