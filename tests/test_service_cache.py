"""Result cache: hit/miss accounting, idempotence, and cell-id parity."""

import json

import pytest

from repro.apps.suite import build_workflow
from repro.core.autotune import ExhaustiveTuner
from repro.core.configs import ALL_CONFIGS
from repro.errors import StorageError
from repro.obs.store import StoredCell
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.service.cache import ResultCache, cell_id_for_spec


def _cell(cell_id="a" * 16, key="micro-2k@8"):
    return StoredCell(
        cell_id=cell_id,
        key=key,
        deterministic={"winner": "P-LocR", "configs": {}},
        host={"kind": "simulated", "wall_seconds": 1.0},
        provenance={"git_sha": "deadbeef"},
    )


def test_miss_then_put_then_hit_accounting(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.get("a" * 16) is None
    assert cache.stats.misses == 1
    assert cache.put(_cell()) is True
    assert cache.stats.stores == 1
    entry = cache.get("a" * 16)
    assert entry is not None
    assert entry.key == "micro-2k@8"
    assert entry.deterministic["winner"] == "P-LocR"
    # Host metrics are never replayed from cache.
    assert entry.host == {}
    assert cache.stats.as_record() == {
        "hits": 1,
        "misses": 1,
        "stores": 1,
        "hit_rate": 0.5,
    }


def test_put_is_idempotent_and_peek_is_silent(tmp_path):
    cache = ResultCache(str(tmp_path))
    assert cache.put(_cell()) is True
    assert cache.put(_cell()) is False
    assert cache.stats.stores == 1
    assert cache.peek("a" * 16) is True
    assert cache.stats.lookups == 0


def test_invalid_cell_ids_rejected(tmp_path):
    cache = ResultCache(str(tmp_path))
    for bad in ("", "../escape", ".hidden"):
        with pytest.raises(StorageError):
            cache.path(bad)


def test_clear_and_validate(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put(_cell("a" * 16))
    cache.put(_cell("b" * 16))
    assert cache.validate() == []
    # Corrupt one entry: claims the wrong cell id.
    with open(cache.path("b" * 16), "w", encoding="utf-8") as handle:
        json.dump({"record": "cache", "cell_id": "c" * 16}, handle)
    problems = cache.validate()
    assert any("claims cell_id" in p for p in problems)
    assert any("deterministic" in p for p in problems)
    assert cache.clear() == 2
    assert cache.list_ids() == []


def test_pre_run_cell_id_matches_post_run_cell_id(tmp_path):
    """cell_id_for_spec must predict exactly the id run_cell produces.

    This is the keystone of the cache: if the pre-run id (manifests only)
    ever drifted from the post-run id (e.g. a compute-jitter default
    mismatch), every lookup would miss and the cache would silently grow
    duplicates forever.
    """
    from repro.obs.campaign import run_cell

    spec = build_workflow("micro-2k", 8, iterations=2)
    predicted = cell_id_for_spec(spec, ALL_CONFIGS, DEFAULT_CALIBRATION)
    cell = run_cell("micro-2k", 8, iterations=2)
    assert predicted == cell.cell_id


def test_tuner_served_from_cache_matches_direct_tuning(tmp_path):
    spec = build_workflow("micro-64mb", 8, iterations=2)
    cache = ResultCache(str(tmp_path))
    tuner = ExhaustiveTuner(cache=cache)
    fresh = tuner.tune(spec)
    assert cache.stats.misses == 1 and cache.stats.stores == 1
    cached = tuner.tune(spec)
    assert cache.stats.hits == 1
    direct = ExhaustiveTuner().tune(spec)
    assert cached.comparison.best_label == direct.comparison.best_label
    for label, result in direct.results.items():
        assert cached.results[label].makespan == pytest.approx(
            result.makespan, abs=1e-12
        )
        assert cached.results[label].writer_span == pytest.approx(
            result.writer_span, abs=1e-12
        )
    # Regret arithmetic works on rebuilt results too.
    for config in ALL_CONFIGS:
        assert cached.regret_of(config) == pytest.approx(
            direct.regret_of(config), abs=1e-9
        )
