"""Project-model tests: module graph, cycles, re-exports, call resolution."""

import textwrap

from repro.analysis.project import (
    Project,
    module_name_from_path,
    package_of,
)


def build(**files):
    """Build a project from ``{dotted_suffix: source}`` under src/repro."""
    sources = {}
    for dotted, source in files.items():
        path = "src/repro/" + dotted.replace("__", "/") + ".py"
        sources[path] = textwrap.dedent(source)
    return Project.from_sources(sources)


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_from_path("src/repro/sim/flow.py") == "repro.sim.flow"

    def test_init_normalizes_to_package(self):
        assert module_name_from_path("src/repro/obs/__init__.py") == "repro.obs"

    def test_package_of(self):
        assert package_of("repro.service.tasks") == "service"
        assert package_of("repro.units") == "units"


class TestModuleGraph:
    def test_import_edge(self):
        project = build(
            sim__a="from repro.sim.b import helper\n",
            sim__b="def helper():\n    return 1\n",
        )
        graph = project.module_graph()
        assert graph["repro.sim.a"] == {"repro.sim.b"}
        assert graph["repro.sim.b"] == set()

    def test_lazy_function_body_imports_counted(self):
        # repro.service.tasks imports lazily inside functions; the graph
        # must still see those edges for worker reachability.
        project = build(
            service__tasks=(
                "def execute(payload):\n"
                "    from repro.obs.campaign import run_cell\n"
                "    return run_cell(payload)\n"
            ),
            obs__campaign="def run_cell(p):\n    return p\n",
        )
        assert (
            "repro.obs.campaign"
            in project.module_graph()["repro.service.tasks"]
        )

    def test_reachable_modules_transitive(self):
        project = build(
            service__tasks="from repro.obs.campaign import run\n",
            obs__campaign="from repro.obs.store import StoredCell\n",
            obs__store="class StoredCell:\n    pass\n",
            sim__flow="x = 1\n",
        )
        reachable = project.reachable_modules(["repro.service.tasks"])
        assert "repro.obs.store" in reachable
        assert "repro.sim.flow" not in reachable

    def test_import_cycles_detected(self):
        project = build(
            sim__a="from repro.sim.b import f\n",
            sim__b="from repro.sim.a import g\n",
        )
        cycles = project.import_cycles()
        assert ["repro.sim.a", "repro.sim.b"] in cycles

    def test_cycle_reported_once(self):
        project = build(
            sim__a="from repro.sim.b import f\n",
            sim__b="from repro.sim.c import g\n",
            sim__c="from repro.sim.a import h\n",
        )
        assert len(project.import_cycles()) == 1

    def test_acyclic_tree_has_no_cycles(self):
        project = build(
            sim__a="from repro.sim.b import f\n",
            sim__b="def f():\n    pass\n",
        )
        assert project.import_cycles() == []


class TestReExports:
    def test_reexport_through_init_resolves_to_definition(self):
        project = Project.from_sources(
            {
                "src/repro/obs/__init__.py": (
                    "from repro.obs.store import canonical_json\n"
                ),
                "src/repro/obs/store.py": (
                    "def canonical_json(payload):\n    return payload\n"
                ),
            }
        )
        assert (
            project.resolve_symbol("repro.obs.canonical_json")
            == "repro.obs.store.canonical_json"
        )

    def test_chained_reexport(self):
        project = Project.from_sources(
            {
                "src/repro/__init__.py": (
                    "from repro.obs import canonical_json\n"
                ),
                "src/repro/obs/__init__.py": (
                    "from repro.obs.store import canonical_json\n"
                ),
                "src/repro/obs/store.py": (
                    "def canonical_json(payload):\n    return payload\n"
                ),
            }
        )
        assert (
            project.resolve_symbol("repro.canonical_json")
            == "repro.obs.store.canonical_json"
        )

    def test_unknown_symbol_passes_through(self):
        project = build(sim__a="x = 1\n")
        assert project.resolve_symbol("json.dumps") == "json.dumps"


class TestCallResolution:
    def test_local_function_call(self):
        project = build(
            sim__a="def helper():\n    return 1\n\ndef outer():\n    return helper()\n",
        )
        module = project.modules["repro.sim.a"]
        call = module.functions[1].node.body[0].value
        resolved = project.function_for_call(call, module)
        assert resolved is not None
        assert resolved.qualname == "repro.sim.a.helper"

    def test_imported_alias_call(self):
        project = build(
            sim__a="from repro.sim.b import helper as h\n\ndef outer():\n    return h()\n",
            sim__b="def helper():\n    return 1\n",
        )
        module = project.modules["repro.sim.a"]
        call = module.functions[0].node.body[0].value
        resolved = project.function_for_call(call, module)
        assert resolved is not None
        assert resolved.qualname == "repro.sim.b.helper"

    def test_common_method_names_never_resolve(self):
        # Exactly one project method is named ``get`` — a dict.get() call
        # must still not bind to it.
        project = build(
            sim__a="class Cache:\n    def get(self, key):\n        return key\n",
            sim__b="def use(d):\n    return d.get('x')\n",
        )
        module = project.modules["repro.sim.b"]
        call = module.functions[0].node.body[0].value
        assert project.function_for_call(call, module) is None

    def test_unique_method_name_resolves(self):
        project = build(
            sim__a=(
                "class Store:\n"
                "    def append_cell(self, name, cell):\n"
                "        return cell\n"
            ),
            sim__b="def use(store):\n    return store.append_cell('x', 1)\n",
        )
        module = project.modules["repro.sim.b"]
        call = module.functions[0].node.body[0].value
        resolved = project.function_for_call(call, module)
        assert resolved is not None
        assert resolved.qualname == "repro.sim.a.Store.append_cell"


class TestIndexes:
    def test_mutable_globals_detected(self):
        project = build(
            sim__a="CACHE = {}\nFROZEN = (1, 2)\nNAMES = ['a']\n",
        )
        module = project.modules["repro.sim.a"]
        assert set(module.mutable_globals) == {"CACHE", "NAMES"}

    def test_syntax_error_file_skipped(self):
        project = Project.from_sources(
            {
                "src/repro/sim/bad.py": "def broken(:\n",
                "src/repro/sim/good.py": "x = 1\n",
            }
        )
        assert "repro.sim.good" in project.modules
        assert "repro.sim.bad" not in project.modules

    def test_methods_indexed_with_class(self):
        project = build(
            sim__a="class Engine:\n    def advance(self, dt):\n        pass\n",
        )
        assert "repro.sim.a.Engine.advance" in project.functions
        assert project.functions["repro.sim.a.Engine.advance"].cls == "Engine"
