"""Unit and property tests for the fluid-flow network."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.flow import (
    CapacityResource,
    Flow,
    FlowNetwork,
    solve_rates,
    solve_rates_counted,
)


def fixed_resource(capacity, name="r"):
    return CapacityResource(name, lambda load: capacity)


def make_flow(nbytes=100.0, kind="write", remote=False, resources=(), **kw):
    return Flow(
        nbytes=nbytes, kind=kind, remote=remote, resources=tuple(resources), **kw
    )


class TestFlowValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(SimulationError):
            make_flow(kind="copy")

    def test_negative_bytes_rejected(self):
        with pytest.raises(SimulationError):
            make_flow(nbytes=-1)

    def test_non_positive_self_cap_rejected(self):
        with pytest.raises(SimulationError):
            make_flow(self_cap=0)

    def test_op_bytes_defaults_to_payload(self):
        flow = make_flow(nbytes=500.0)
        assert flow.op_bytes == 500.0


class TestSolveRates:
    def test_no_flows(self):
        assert solve_rates([]) == {}

    def test_single_device_bound_flow_gets_capacity(self):
        r = fixed_resource(10.0)
        flow = make_flow(resources=[r])
        rates = solve_rates([flow])
        assert rates[flow] == pytest.approx(10.0)
        assert flow.duty == pytest.approx(1.0)

    def test_equal_sharing(self):
        r = fixed_resource(12.0)
        flows = [make_flow(resources=[r]) for _ in range(4)]
        rates = solve_rates(flows)
        for flow in flows:
            assert rates[flow] == pytest.approx(3.0)

    def test_counted_variant_matches_and_reports_iterations(self):
        r = fixed_resource(12.0)
        flows = [make_flow(resources=[r]) for _ in range(4)]
        rates, iterations = solve_rates_counted(flows)
        assert rates == solve_rates(flows)
        assert iterations >= 1

    def test_counted_variant_zero_iterations_for_no_flows(self):
        assert solve_rates_counted([]) == ({}, 0)

    def test_harmonic_combination_solo(self):
        # self cap == device capacity => achieved rate is half of either.
        r = fixed_resource(10.0)
        flow = make_flow(resources=[r], self_cap=10.0)
        rates = solve_rates([flow])
        assert rates[flow] == pytest.approx(5.0, rel=1e-3)

    def test_capacity_conservation_at_saturation(self):
        """n identical self-capped flows saturate to exactly sum(A) == C."""
        r = fixed_resource(10.0)
        flows = [make_flow(resources=[r], self_cap=10.0) for _ in range(4)]
        rates = solve_rates(flows)
        assert sum(rates.values()) == pytest.approx(10.0, rel=1e-3)

    def test_software_bound_flows_do_not_saturate(self):
        """Low self caps leave the device under-used (paper §VIII)."""
        r = fixed_resource(10.0)
        flows = [make_flow(resources=[r], self_cap=1.0) for _ in range(4)]
        rates = solve_rates(flows)
        assert sum(rates.values()) < 4.0
        # Each flow achieves nearly its software-capped rate.
        for rate in rates.values():
            assert rate == pytest.approx(1.0 / (1.0 / 1.0 + 1.0 / 10.0), rel=0.05)
        # And the converged duty cycle is low.
        assert all(f.duty < 0.2 for f in flows)

    def test_flow_without_constraints_raises(self):
        flow = make_flow()  # no resources, infinite self cap
        with pytest.raises(SimulationError, match="unbounded"):
            solve_rates([flow])

    def test_flow_with_only_self_cap(self):
        flow = make_flow(self_cap=3.0)
        rates = solve_rates([flow])
        assert rates[flow] == pytest.approx(3.0)

    def test_min_over_path_resources(self):
        narrow = fixed_resource(2.0, "narrow")
        wide = fixed_resource(100.0, "wide")
        flow = make_flow(resources=[narrow, wide])
        assert solve_rates([flow])[flow] == pytest.approx(2.0)

    def test_per_thread_cap_respected(self):
        r = CapacityResource("r", lambda load: 100.0, per_thread_cap_fn=lambda load: 5.0)
        flow = make_flow(resources=[r])
        assert solve_rates([flow])[flow] == pytest.approx(5.0)

    @given(
        n=st.integers(min_value=1, max_value=12),
        capacity=st.floats(min_value=1.0, max_value=1e9),
        self_cap=st.floats(min_value=0.1, max_value=1e9),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_rates_positive_and_conservative(self, n, capacity, self_cap):
        """Rates are positive and never exceed capacity or the self cap."""
        r = fixed_resource(capacity)
        flows = [make_flow(resources=[r], self_cap=self_cap) for _ in range(n)]
        rates = solve_rates(flows)
        assert all(rate > 0 for rate in rates.values())
        assert all(rate <= self_cap * (1 + 1e-6) for rate in rates.values())
        assert sum(rates.values()) <= capacity * (1 + 1e-3)

    @given(n=st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_property_more_flows_less_each(self, n):
        """Per-flow rate is non-increasing in the number of sharers."""
        r = fixed_resource(10.0)

        def rate_with(k):
            flows = [make_flow(resources=[r]) for _ in range(k)]
            return solve_rates(flows)[flows[0]]

        assert rate_with(n + 1) <= rate_with(n) * (1 + 1e-9)


class TestFlowNetwork:
    def test_transfer_completes_at_expected_time(self):
        engine = Engine()
        net = FlowNetwork(engine)
        r = fixed_resource(10.0)

        def body():
            yield net.transfer(make_flow(nbytes=50.0, resources=[r]))

        engine.spawn(body(), name="p")
        engine.run()
        assert engine.now == pytest.approx(5.0)

    def test_zero_byte_transfer_completes_immediately(self):
        engine = Engine()
        net = FlowNetwork(engine)
        flow = make_flow(nbytes=0.0, resources=[fixed_resource(1.0)])
        event = net.transfer(flow)
        assert event.triggered

    def test_flow_reuse_rejected(self):
        engine = Engine()
        net = FlowNetwork(engine)
        flow = make_flow(nbytes=0.0, resources=[fixed_resource(1.0)])
        net.transfer(flow)
        with pytest.raises(SimulationError, match="reused"):
            net.transfer(flow)

    def test_rates_rebalance_when_flow_joins(self):
        """A second flow halves the first one's remaining progress rate."""
        engine = Engine()
        net = FlowNetwork(engine)
        r = fixed_resource(10.0)
        finish_times = {}

        def body(name, start, nbytes):
            yield start
            yield net.transfer(make_flow(nbytes=nbytes, resources=[r], label=name))
            finish_times[name] = engine.now

        # First flow alone for 1s (10 bytes done), then shares for the rest.
        engine.spawn(body("a", 0.0, 50.0), name="a")
        engine.spawn(body("b", 1.0, 50.0), name="b")
        engine.run()
        # a: 10 bytes alone + 40 at 5/s => 1 + 8 = 9s.
        assert finish_times["a"] == pytest.approx(9.0)
        # b: 40 bytes at 5/s (while a is active) + 10 at 10/s => 1+8+1 = 10s.
        assert finish_times["b"] == pytest.approx(10.0)

    def test_work_counters_accumulate(self):
        engine = Engine()
        net = FlowNetwork(engine)
        r = fixed_resource(10.0)

        def body(nbytes):
            yield net.transfer(make_flow(nbytes=nbytes, resources=[r]))

        engine.spawn(body(50.0), name="a")
        engine.spawn(body(30.0), name="b")
        engine.run()
        assert net.flows_completed == 2
        assert net.solver_iterations >= 2

    def test_active_flows_tracked(self):
        engine = Engine()
        net = FlowNetwork(engine)
        flow = make_flow(nbytes=10.0, resources=[fixed_resource(1.0)])

        def body():
            yield net.transfer(flow)

        engine.spawn(body(), name="p")
        engine.step()  # start the process; the flow becomes active
        assert flow in net.active_flows
        engine.run()
        assert net.active_flows == ()

    def test_poke_recomputes_after_state_change(self):
        """Changing a stateful resource and poking adjusts in-flight rates."""
        engine = Engine()
        net = FlowNetwork(engine)
        state = {"capacity": 10.0}
        r = CapacityResource("mutable", lambda load: state["capacity"])

        def body():
            yield net.transfer(make_flow(nbytes=100.0, resources=[r]))

        def throttle():
            state["capacity"] = 5.0
            net.poke()

        engine.spawn(body(), name="p")
        engine.schedule(2.0, throttle)
        engine.run()
        # 20 bytes in the first 2s, remaining 80 at 5/s => 2 + 16 = 18s.
        assert engine.now == pytest.approx(18.0)

    def test_observe_called_with_idle_load_on_drain(self):
        observed = []

        class Recording(CapacityResource):
            def observe(self, now, load):
                observed.append((now, load.raw_total))

        engine = Engine()
        net = FlowNetwork(engine)
        r = Recording("rec", lambda load: 10.0)

        def body():
            yield net.transfer(make_flow(nbytes=10.0, resources=[r]))

        engine.spawn(body(), name="p")
        engine.run()
        # Final observation shows the resource idle.
        assert observed[-1][1] == 0
