"""SVC4xx analyzer tests: shared state, store writes, completion order."""

import textwrap

from repro.analysis.project import Project
from repro.analysis.svc import check_service_atomicity


def check(sources):
    project = Project.from_sources(
        {path: textwrap.dedent(src) for path, src in sources.items()}
    )
    return check_service_atomicity(project)


def codes(sources):
    return [d.code for d in check(sources)]


WORKER = {
    "src/repro/service/tasks.py": """
    from repro.obs.campaign import run_cell

    def execute_cell(payload):
        return run_cell(payload)
    """,
}


class TestSVC401SharedState:
    def test_mutated_global_in_reachable_module(self):
        sources = dict(WORKER)
        sources["src/repro/obs/campaign.py"] = """
        _RESULTS = []

        def run_cell(payload):
            _RESULTS.append(payload)
            return payload
        """
        assert "SVC401" in codes(sources)

    def test_unreachable_module_not_flagged(self):
        sources = dict(WORKER)
        sources["src/repro/obs/campaign.py"] = "def run_cell(p):\n    return p\n"
        sources["src/repro/sim/flow.py"] = """
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value
        """
        assert codes(sources) == []

    def test_unmutated_global_not_flagged(self):
        sources = dict(WORKER)
        sources["src/repro/obs/campaign.py"] = """
        _KNOWN = {"a": 1}

        def run_cell(payload):
            return _KNOWN.get(payload, payload)
        """
        assert codes(sources) == []

    def test_shadowed_local_not_flagged(self):
        sources = dict(WORKER)
        sources["src/repro/obs/campaign.py"] = """
        _RESULTS = []

        def run_cell(payload):
            _RESULTS = []
            _RESULTS.append(payload)
            return payload
        """
        assert codes(sources) == []

    def test_global_statement_unshadows(self):
        sources = dict(WORKER)
        sources["src/repro/obs/campaign.py"] = """
        _COUNT = {}

        def run_cell(payload):
            global _COUNT
            _COUNT = {}
            _COUNT[payload] = 1
            return payload
        """
        assert "SVC401" in codes(sources)

    def test_cross_module_mutation_flagged(self):
        sources = dict(WORKER)
        sources["src/repro/obs/campaign.py"] = """
        from repro.obs import registry

        def run_cell(payload):
            registry.SEEN.append(payload)
            return payload
        """
        sources["src/repro/obs/registry.py"] = "SEEN = []\n"
        assert "SVC401" in codes(sources)

    def test_noqa_suppresses(self):
        sources = dict(WORKER)
        sources["src/repro/obs/campaign.py"] = """
        _RESULTS = []  # noqa: SVC401 process-local by design

        def run_cell(payload):
            _RESULTS.append(payload)
            return payload
        """
        assert codes(sources) == []


class TestSVC402StoreWrites:
    def test_raw_write_into_campaigns_flagged(self):
        found = codes(
            {
                "src/repro/obs/export.py": """
                def dump(payload):
                    with open("campaigns/results.jsonl", "a") as handle:
                        handle.write(payload)
                """
            }
        )
        assert "SVC402" in found

    def test_sanctioned_module_exempt(self):
        found = codes(
            {
                "src/repro/obs/store.py": """
                def append_line(payload):
                    with open("campaigns/results.jsonl", "a") as handle:
                        handle.write(payload)
                """
            }
        )
        assert found == []

    def test_read_mode_not_flagged(self):
        found = codes(
            {
                "src/repro/obs/export.py": """
                def load():
                    with open("campaigns/results.jsonl") as handle:
                        return handle.read()
                """
            }
        )
        assert found == []

    def test_unrelated_path_not_flagged(self):
        found = codes(
            {
                "src/repro/obs/export.py": """
                def dump(payload, path):
                    with open("/tmp/out.json", "w") as handle:
                        handle.write(payload)
                """
            }
        )
        assert found == []

    def test_path_through_variable_flagged(self):
        found = codes(
            {
                "src/repro/obs/export.py": """
                TARGET = "service/queue.jsonl"

                def dump(payload):
                    with open(TARGET, "w") as handle:
                        handle.write(payload)
                """
            }
        )
        assert "SVC402" in found


class TestSVC403CompletionOrder:
    def test_imap_unordered_into_append_cell(self):
        found = codes(
            {
                "src/repro/service/collect.py": """
                def drain(pool, store, specs):
                    cells = []
                    for result in pool.imap_unordered(run, specs):
                        cells.append(result)
                    store.append_cell("results", cells)
                """
            }
        )
        assert "SVC403" in found

    def test_as_completed_into_store(self):
        found = codes(
            {
                "src/repro/service/collect.py": """
                from concurrent.futures import as_completed
                from repro.obs.store import StoredCell

                def drain(futures):
                    done = []
                    for future in as_completed(futures):
                        done.append(future.result())
                    return StoredCell(cell_id="c", key=done)
                """
            }
        )
        assert "SVC403" in found

    def test_sorted_before_store_is_clean(self):
        found = codes(
            {
                "src/repro/service/collect.py": """
                def drain(pool, store, specs):
                    cells = []
                    for result in pool.imap_unordered(run, specs):
                        cells.append(result)
                    for cell in sorted(cells, key=lambda c: c.cell_id):
                        store.append_cell("results", cell)
                """
            }
        )
        assert found == []

    def test_workerpool_run_is_not_a_source(self):
        # WorkerPool.run returns outcomes in submission order by contract.
        found = codes(
            {
                "src/repro/service/collect.py": """
                def drain(pool, store, specs):
                    cells = []
                    for outcome in pool.run(specs):
                        cells.append(outcome.result)
                    store.append_cell("results", cells)
                """
            }
        )
        assert found == []

    def test_order_insensitive_reduction_is_clean(self):
        found = codes(
            {
                "src/repro/service/collect.py": """
                def total(pool, store, specs):
                    seconds = sum(
                        r.wall for r in pool.imap_unordered(run, specs)
                    )
                    store.append_cell("results", seconds)
                """
            }
        )
        assert found == []


class TestRealTreeInvariants:
    def test_scheduler_and_tasks_are_clean(self):
        # The in-tree service layer must stay free of SVC4xx findings:
        # _persist_cells sorts by cell id; queue/cache own their files.
        project = Project.load(["src/repro/service"])
        diagnostics = check_service_atomicity(project)
        assert [d.code for d in diagnostics] == []
