"""Service scheduler: cache-served reruns, retries, drain, determinism."""

import random
import time

import pytest

from repro.obs.store import CampaignStore, StoredCell
from repro.service.queue import KIND_CELL, STATE_FAILED, JobQueue
from repro.service.scheduler import RESULTS_CAMPAIGN, ServiceScheduler


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "service")


def _submit_micro(scheduler):
    return scheduler.submit_suite(suite="micro")


def test_first_run_executes_second_run_hits_cache(root):
    scheduler = ServiceScheduler(root=root)
    jobs = _submit_micro(scheduler)
    assert len(jobs) == 2
    assert all(job.cell_id for job in jobs)

    first = scheduler.run()
    assert first.executed == 2
    assert first.cache_misses == 2
    assert first.cache_hits == 0
    assert first.cells_appended == 2
    assert first.failed == 0

    # Same cells again: everything is served from cache, and the
    # deterministic campaign gains zero new records.
    _submit_micro(scheduler)
    second = ServiceScheduler(root=root).run()
    assert second.cache_hits == 2
    assert second.cache_misses == 0
    assert second.executed == 0
    assert second.cache_hit_rate == 1.0
    assert second.cells_appended == 0

    store = CampaignStore(scheduler.store.root)
    assert len(store.read(RESULTS_CAMPAIGN).cells) == 2
    # The run reports regret for every completed cell, hit or fresh.
    assert len(first.regrets) == 2
    assert len(second.regrets) == 2
    assert {entry["key"] for entry in second.regrets} == {
        "micro-64mb@8",
        "micro-2k@8",
    }


def test_report_record_shape(root):
    scheduler = ServiceScheduler(root=root)
    _submit_micro(scheduler)
    report = scheduler.run()
    record = report.as_record()
    assert record["record"] == "service_run"
    assert record["cache_hit_rate"] == 0.0
    assert record["cells_appended"] == 2
    assert "executed" in report.render_text()


def test_malformed_job_fails_after_retry_budget(root):
    scheduler = ServiceScheduler(root=root, backoff_seconds=0.0)
    queue = JobQueue(root)
    job = queue.submit(
        KIND_CELL,
        {"family": "no-such-family", "ranks": 8, "iterations": 2},
        max_retries=1,
    )
    report = scheduler.run()
    assert report.failed == 1
    assert report.retried == 1
    assert report.executed == 0
    final = queue.load()[0]
    assert final.job_id == job.job_id
    assert final.state == STATE_FAILED
    assert final.attempts == 2
    assert final.detail["reason"] == "retries exhausted"


def test_expired_deadline_fails_without_running(root):
    scheduler = ServiceScheduler(root=root)
    queue = JobQueue(root)
    queue.submit(
        KIND_CELL,
        {"family": "micro-2k", "ranks": 8, "iterations": 2},
        deadline_epoch=time.time() - 60.0,
    )
    report = scheduler.run()
    assert report.expired == 1
    assert report.failed == 1
    assert report.executed == 0
    assert queue.load()[0].detail == {"reason": "deadline expired"}


def test_drain_releases_jobs_without_consuming_attempts(root):
    scheduler = ServiceScheduler(root=root)
    _submit_micro(scheduler)
    report = scheduler.run(should_stop=lambda: True)
    assert report.drained
    assert report.executed == 0
    assert report.failed == 0
    queue = JobQueue(root)
    # Jobs are still queued with their full retry budget.
    assert len(queue.queued()) == 2
    assert all(job.attempts == 0 for job in queue.queued())


def test_persisted_cells_independent_of_completion_order(tmp_path):
    """Shuffled completion order must yield a byte-identical store file."""

    def synthetic_cells():
        return [
            StoredCell(
                cell_id=f"{index:016x}",
                key=f"wf-{index}@8",
                deterministic={"winner": "S-LocR", "index": index},
                host={"kind": "simulated", "wall_seconds": float(index)},
                provenance={},
            )
            for index in range(8)
        ]

    rng = random.Random(42)
    paths = []
    for trial in range(3):
        root = str(tmp_path / f"svc-{trial}")
        scheduler = ServiceScheduler(root=root)
        cells = synthetic_cells()
        rng.shuffle(cells)
        assert scheduler._persist_cells(cells) == 8
        paths.append(scheduler.store.path(RESULTS_CAMPAIGN))
    contents = [open(path, "rb").read() for path in paths]
    assert contents[0] == contents[1] == contents[2]


def test_campaign_jobs_parallel_matches_serial_bytes(tmp_path):
    """run_campaign --jobs 2 stores the same deterministic payload as serial."""
    import json

    from repro.obs.campaign import run_campaign

    digests = []
    for jobs in (1, 2):
        store = CampaignStore(str(tmp_path / f"jobs{jobs}"))
        run_campaign(suite="micro", name="micro-001", store=store, jobs=jobs)
        stripped = []
        with open(store.path("micro-001"), "r", encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                record.pop("host", None)
                stripped.append(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                )
        digests.append("\n".join(stripped))
    assert digests[0] == digests[1]
