"""End-to-end ``python -m repro.service`` CLI over the micro suite."""

import json

import pytest

from repro.service.cli import main


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "service")


def test_full_cli_cycle_submit_run_rerun_status_cache(root, tmp_path, capsys):
    assert main(["submit", "--dir", root, "--suite", "micro"]) == 0
    out = capsys.readouterr().out
    assert "2 job(s) queued" in out
    assert "[cached]" not in out

    report_path = str(tmp_path / "report.json")
    assert main(["run", "--dir", root, "--report-out", report_path]) == 0
    out = capsys.readouterr().out
    assert "2 executed" in out
    report = json.load(open(report_path))
    assert report["cache_misses"] == 2
    assert report["cells_appended"] == 2

    # Resubmitting identical work: submit already flags the jobs as cached,
    # and the second run is >= 90% cache hits with zero new records.
    assert main(["submit", "--dir", root, "--suite", "micro"]) == 0
    assert capsys.readouterr().out.count("[cached]") == 2
    assert main(["run", "--dir", root, "--report-out", report_path]) == 0
    report = json.load(open(report_path))
    assert report["cache_hit_rate"] >= 0.9
    assert report["cells_appended"] == 0
    assert report["executed"] == 0
    capsys.readouterr()

    assert main(["status", "--dir", root, "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["counts"]["done"] == 4
    assert status["counts"]["queued"] == 0
    assert status["cache_entries"] == 2
    assert status["campaign_cells"] == 2
    assert all(job["cached"] for job in status["jobs"])

    assert main(["cache", "--dir", root, "--validate"]) == 0
    assert "OK" in capsys.readouterr().out
    assert main(["cache", "--dir", root]) == 0
    assert "2 entr(ies)" in capsys.readouterr().out
    assert main(["cache", "--dir", root, "--clear"]) == 0
    assert "cleared 2" in capsys.readouterr().out


def test_cli_drain_fails_queued_jobs(root, capsys):
    assert main(["submit", "--dir", root, "--suite", "micro"]) == 0
    capsys.readouterr()
    assert main(["drain", "--dir", root]) == 0
    assert "drained 2 job(s)" in capsys.readouterr().out
    assert main(["status", "--dir", root, "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["counts"]["failed"] == 2
    assert status["counts"]["queued"] == 0


def test_cli_run_exits_nonzero_on_failed_jobs(root, capsys):
    from repro.service.queue import KIND_CELL, JobQueue

    JobQueue(root).submit(
        KIND_CELL,
        {"family": "no-such-family", "ranks": 8, "iterations": 2},
        max_retries=0,
    )
    assert main(["run", "--dir", root, "--backoff", "0"]) == 1
    assert "1 failed" in capsys.readouterr().out


def test_cli_rejects_unknown_suite(root, capsys):
    assert main(["submit", "--dir", root, "--suite", "galactic"]) == 1
    assert "unknown suite" in capsys.readouterr().err


def test_cli_submit_experiment_jobs(root, capsys):
    assert main(["submit", "--dir", root, "--experiment", "fig01"]) == 0
    out = capsys.readouterr().out
    assert "(experiment)" in out
    assert "1 job(s) queued" in out
