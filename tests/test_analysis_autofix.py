"""SIM106 autofix tests: rewrites, imports, idempotency."""

import textwrap

from repro.analysis.autofix import fix_paths, fix_source
from repro.analysis.simlint import lint_source


def fix(source, module="repro.sim.fixture"):
    return fix_source(textwrap.dedent(source), module)


class TestRewrites:
    def test_power_of_two_literal(self):
        fixed, count = fix("CHUNK = 4096\n")
        assert count == 1
        assert "CHUNK = (4 * KiB)" in fixed

    def test_exact_unit_constant(self):
        fixed, count = fix("CHUNK = 1048576\n")
        assert count == 1
        assert "CHUNK = MiB" in fixed

    def test_power_expression(self):
        fixed, count = fix("CAP = 2**30\n")
        assert count == 1
        assert "CAP = GiB" in fixed

    def test_kib_power_expression(self):
        fixed, count = fix("CAP = 1024**2\n")
        assert count == 1
        assert "CAP = MiB" in fixed

    def test_float_scale_factor(self):
        fixed, count = fix("RATE = 1e9\n")
        assert count == 1
        assert "RATE = GIGA" in fixed

    def test_integer_power_of_ten(self):
        fixed, count = fix("SIZE = 10**9\n")
        assert count == 1
        assert "SIZE = GB" in fixed

    def test_division_context_parenthesized(self):
        fixed, count = fix("def f(x):\n    return x / 4096\n")
        assert count == 1
        assert "x / (4 * KiB)" in fixed

    def test_import_added(self):
        fixed, _ = fix("CHUNK = 2**30\n")
        assert "from repro.units import GiB" in fixed

    def test_existing_import_extended(self):
        fixed, _ = fix("from repro.units import KiB\nCAP = 2**30\n")
        assert "from repro.units import GiB, KiB" in fixed
        assert fixed.count("from repro.units") == 1

    def test_import_after_docstring_and_imports(self):
        fixed, _ = fix('"""Doc."""\nimport os\n\nCAP = 2**30\n')
        lines = fixed.splitlines()
        assert lines[1] == "import os"
        assert "from repro.units import GiB" in lines[2]


class TestGuards:
    def test_noqa_line_untouched(self):
        source = "CHUNK = 4096  # noqa: SIM106 raw on purpose\n"
        fixed, count = fix(source)
        assert count == 0 and fixed == source

    def test_units_module_exempt(self):
        source = "KiB = 1024\n"
        fixed, count = fix(source, module="repro.units")
        assert count == 0 and fixed == source

    def test_syntax_error_untouched(self):
        source = "def broken(:\n"
        fixed, count = fix(source)
        assert count == 0 and fixed == source

    def test_non_magic_literals_untouched(self):
        source = "COUNT = 1000\nRATIO = 0.5\nSMALL = 512\n"
        fixed, count = fix(source)
        assert count == 0 and fixed == source


class TestIdempotencyAndCleanliness:
    def test_fixed_source_passes_lint(self):
        fixed, _ = fix("import array\nCHUNK = 4096\nCAP = 2**30\n")
        diagnostics = lint_source(
            fixed,
            path="src/repro/sim/fixture.py",
            module="repro.sim.fixture",
        )
        assert [d.code for d in diagnostics] == []

    def test_second_pass_is_identity(self):
        once, count = fix("CHUNK = 4096\nCAP = 2**30\nRATE = 1e9\n")
        assert count == 3
        twice, second_count = fix_source(once, "repro.sim.fixture")
        assert second_count == 0
        assert twice == once

    def test_fix_paths_roundtrip(self, tmp_path):
        target = tmp_path / "repro" / "sim" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("CHUNK = 4096\n")
        changed = fix_paths([str(tmp_path)])
        assert changed == {str(target): 1}
        assert "KiB" in target.read_text()
        # Second run: nothing left to fix.
        assert fix_paths([str(tmp_path)]) == {}
