"""Unit tests for the workload suite."""

import pytest

from repro.apps.analytics import (
    gtc_matrixmult_kernel,
    miniamr_matrixmult_kernel,
    read_only_kernel,
)
from repro.apps.gtc import GTC_OBJECT_BYTES, gtc_workflow
from repro.apps.microbench import (
    LARGE_OBJECT_BYTES,
    SMALL_OBJECT_BYTES,
    SNAPSHOT_BYTES_PER_RANK,
    micro_workflow,
)
from repro.apps.miniamr import (
    MINIAMR_OBJECT_BYTES,
    MINIAMR_OBJECTS_PER_RANK,
    miniamr_workflow,
)
from repro.apps.suite import (
    CONCURRENCY_LEVELS,
    FAMILIES,
    PAPER_EXPECTATIONS,
    build_workflow,
    suite_entry,
    workflow_suite,
)
from repro.errors import ConfigurationError
from repro.units import GiB, KiB, MiB


class TestMicrobench:
    def test_snapshot_is_1gib_per_rank(self):
        """§IV-B: each iteration streams a 1 GB snapshot per rank."""
        for object_bytes in (SMALL_OBJECT_BYTES, LARGE_OBJECT_BYTES):
            spec = micro_workflow(object_bytes, 8)
            assert spec.snapshot.snapshot_bytes == SNAPSHOT_BYTES_PER_RANK

    def test_paper_data_volumes(self):
        """Fig. 4: 80/160/240 GB at 8/16/24 threads."""
        for ranks, total in ((8, 80), (16, 160), (24, 240)):
            spec = micro_workflow(LARGE_OBJECT_BYTES, ranks)
            assert spec.total_data_bytes() == total * GiB

    def test_object_counts(self):
        assert micro_workflow(SMALL_OBJECT_BYTES, 8).snapshot.objects_per_snapshot == 524288
        assert micro_workflow(LARGE_OBJECT_BYTES, 8).snapshot.objects_per_snapshot == 16

    def test_io_only(self):
        spec = micro_workflow(LARGE_OBJECT_BYTES, 8)
        assert spec.sim_compute.is_null
        assert spec.analytics_compute.is_null

    def test_indivisible_object_size_rejected(self):
        with pytest.raises(ConfigurationError):
            micro_workflow(3000, 8)

    def test_names(self):
        assert micro_workflow(SMALL_OBJECT_BYTES, 16).name == "micro-2k@16"
        assert micro_workflow(LARGE_OBJECT_BYTES, 24).name == "micro-64mb@24"


class TestApplications:
    def test_gtc_object_size(self):
        """§VI-A: GTC uses 229 MB objects."""
        assert GTC_OBJECT_BYTES == 229 * MiB

    def test_gtc_compute_heavy(self):
        spec = gtc_workflow(ranks=8)
        assert spec.sim_compute.iteration_seconds() > 1.0

    def test_gtc_names(self):
        assert gtc_workflow(ranks=8).name == "gtc+readonly@8"
        assert gtc_workflow(gtc_matrixmult_kernel(), ranks=8).name == "gtc+matmult@8"

    def test_miniamr_object_size(self):
        """§VI-A: miniAMR uses 4.5 KB objects."""
        assert MINIAMR_OBJECT_BYTES == 4608

    def test_miniamr_528k_objects_at_16_ranks(self):
        """§VIII: 528 K objects per snapshot at 16 ranks."""
        assert MINIAMR_OBJECTS_PER_RANK * 16 == 528_000

    def test_miniamr_short_compute(self):
        spec = miniamr_workflow(ranks=8)
        assert 0 < spec.sim_compute.iteration_seconds() < 0.2

    def test_analytics_kernels(self):
        assert read_only_kernel().is_null
        assert gtc_matrixmult_kernel().iteration_seconds() > 0.1
        assert miniamr_matrixmult_kernel(MINIAMR_OBJECTS_PER_RANK).iteration_seconds() > 0.05


class TestSuite:
    def test_eighteen_workflows(self):
        """§IV-C: 18 total workloads."""
        assert len(workflow_suite()) == 18
        assert len(PAPER_EXPECTATIONS) == 18

    def test_six_families_three_levels(self):
        assert len(FAMILIES) == 6
        assert CONCURRENCY_LEVELS == (8, 16, 24)

    def test_every_entry_has_figure_and_expectation(self):
        for entry in workflow_suite():
            assert entry.figure.startswith("Fig ")
            assert entry.paper_best in ("S-LocW", "S-LocR", "P-LocW", "P-LocR")

    def test_expectations_cover_all_four_configs(self):
        winners = {best for best, _ in PAPER_EXPECTATIONS.values()}
        assert winners == {"S-LocW", "S-LocR", "P-LocW", "P-LocR"}

    def test_suite_entry_lookup(self):
        entry = suite_entry("gtc+readonly", 16)
        assert entry.paper_best == "S-LocR"
        assert entry.figure == "Fig 6b"

    def test_unknown_entry_rejected(self):
        with pytest.raises(ConfigurationError):
            suite_entry("gtc+readonly", 12)
        with pytest.raises(ConfigurationError):
            suite_entry("lammps", 8)

    def test_stack_selection_propagates(self):
        entry = suite_entry("micro-2k", 8, stack_name="novafs")
        assert entry.spec.stack_name == "novafs"

    def test_filtered_suite(self):
        entries = workflow_suite(families=("micro-2k",), ranks=(8, 24))
        assert [e.spec.name for e in entries] == ["micro-2k@8", "micro-2k@24"]


class TestBuildWorkflow:
    def test_matches_suite_entries(self):
        # The shared constructor and the suite produce the same specs: one
        # (family, ranks) cell always means the same workflow everywhere.
        for family in FAMILIES:
            for ranks in CONCURRENCY_LEVELS:
                assert build_workflow(family, ranks) == suite_entry(
                    family, ranks
                ).spec

    def test_iterations_override(self):
        spec = build_workflow("micro-2k", 8, iterations=3)
        assert spec.iterations == 3

    def test_non_positive_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            build_workflow("micro-2k", 8, iterations=0)

    def test_matmul_dim_scales_miniamr_compute(self):
        small = build_workflow("miniamr+matmult", 8, matmul_dim=10)
        large = build_workflow("miniamr+matmult", 8, matmul_dim=20)
        # 2*dim^3 FLOPs per multiply: doubling dim is 8x the compute.
        ratio = (
            large.analytics_compute.seconds_per_object
            / small.analytics_compute.seconds_per_object
        )
        assert ratio == pytest.approx(8.0)

    def test_matmul_dim_ignored_by_other_families(self):
        assert build_workflow("gtc+readonly", 8, matmul_dim=99) == build_workflow(
            "gtc+readonly", 8
        )

    def test_stack_propagates(self):
        assert build_workflow("micro-2k", 8, stack_name="novafs").stack_name == "novafs"

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            build_workflow("lammps", 8)
