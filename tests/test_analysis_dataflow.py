"""Engine-level tests: label propagation, summaries, order-label death."""

import textwrap

from repro.analysis.dataflow import (
    compute_summaries,
    param_label,
    run_taint_analysis,
)
from repro.analysis.project import Project
from repro.analysis.taint import DeterminismTaintPolicy


def project_for(source, path="src/repro/obs/fixture.py"):
    return Project.from_sources({path: textwrap.dedent(source)})


def hits_for(source, path="src/repro/obs/fixture.py"):
    return run_taint_analysis(project_for(source, path), DeterminismTaintPolicy())


class TestDirectFlow:
    def test_source_to_sink(self):
        hits = hits_for(
            """
            import time

            def f(tracer):
                stamp = time.time()
                tracer.record("event", stamp)
            """
        )
        assert any("host-clock" in h.labels for h in hits)

    def test_untainted_value_is_silent(self):
        hits = hits_for(
            """
            def f(tracer, engine):
                tracer.record("event", engine.now)
            """
        )
        assert hits == []

    def test_taint_survives_arithmetic_and_fstrings(self):
        hits = hits_for(
            """
            import time

            def f(tracer):
                stamp = time.time() * 1000
                tracer.record("event", f"at {stamp}")
            """
        )
        assert any("host-clock" in h.labels for h in hits)

    def test_branch_join_unions_taint(self):
        hits = hits_for(
            """
            import time

            def f(tracer, fast):
                if fast:
                    stamp = 0.0
                else:
                    stamp = time.time()
                tracer.record("event", stamp)
            """
        )
        assert any("host-clock" in h.labels for h in hits)

    def test_rebinding_clears_taint(self):
        hits = hits_for(
            """
            import time

            def f(tracer):
                stamp = time.time()
                stamp = 0.0
                tracer.record("event", stamp)
            """
        )
        assert hits == []


class TestSummaries:
    def test_return_taint_summary(self):
        project = project_for(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        summaries = compute_summaries(project, DeterminismTaintPolicy())
        assert "host-clock" in summaries["repro.obs.fixture.stamp"].return_taints

    def test_flow_through_summary_uses_param_label(self):
        project = project_for(
            """
            def passthrough(value):
                return value
            """
        )
        summaries = compute_summaries(project, DeterminismTaintPolicy())
        summary = summaries["repro.obs.fixture.passthrough"]
        assert param_label("value") in summary.return_taints

    def test_sink_param_summary(self):
        project = project_for(
            """
            def emit(tracer, payload):
                tracer.record("event", payload)
            """
        )
        summaries = compute_summaries(project, DeterminismTaintPolicy())
        assert ("payload", "trace record") in summaries[
            "repro.obs.fixture.emit"
        ].sink_params

    def test_taint_through_chained_helpers(self):
        # source -> helper A -> helper B -> sink: needs two rounds of
        # summary fixpoint plus call-site substitution.
        hits = hits_for(
            """
            import time

            def read():
                return time.time()

            def wrap():
                return {"t": read()}

            def publish(tracer):
                tracer.record("event", wrap())
            """
        )
        assert any(
            "host-clock" in h.labels and "publish" in h.function for h in hits
        )

    def test_sink_inside_helper_flags_call_site(self):
        hits = hits_for(
            """
            import time

            def emit(tracer, payload):
                tracer.record("event", payload)

            def outer(tracer):
                emit(tracer, time.time())
            """
        )
        outer_hits = [h for h in hits if "outer" in h.function]
        assert outer_hits and "via" in outer_hits[0].via


class TestOrderLabels:
    def test_dict_store_kills_order_label(self):
        hits = hits_for(
            """
            def f(tracer, results):
                payload = {}
                for name in set(results):
                    payload[name] = 1
                tracer.record("event", payload)
            """
        )
        assert hits == []

    def test_list_append_keeps_order_label(self):
        hits = hits_for(
            """
            def f(tracer, results):
                order = []
                for name in set(results):
                    order.append(name)
                tracer.record("event", order)
            """
        )
        assert any("iter-order" in h.labels for h in hits)

    def test_sorted_sanitizes_order_label(self):
        hits = hits_for(
            """
            def f(tracer, results):
                order = []
                for name in sorted(set(results)):
                    order.append(name)
                tracer.record("event", order)
            """
        )
        assert hits == []

    def test_inplace_sort_sanitizes(self):
        hits = hits_for(
            """
            def f(tracer, results):
                order = []
                for name in set(results):
                    order.append(name)
                order.sort()
                tracer.record("event", order)
            """
        )
        assert hits == []

    def test_dict_comprehension_kills_order_label(self):
        hits = hits_for(
            """
            def f(tracer, results):
                payload = {name: 1 for name in set(results)}
                tracer.record("event", payload)
            """
        )
        assert hits == []

    def test_order_label_dies_but_value_label_survives_dict(self):
        hits = hits_for(
            """
            import time

            def f(tracer):
                payload = {}
                payload["t"] = time.time()
                tracer.record("event", payload)
            """
        )
        assert any("host-clock" in h.labels for h in hits)


class TestLoops:
    def test_loop_carried_taint_reaches_fixpoint(self):
        hits = hits_for(
            """
            import time

            def f(tracer, n):
                acc = []
                for _ in range(n):
                    acc.append(time.time())
                tracer.record("event", acc)
            """
        )
        assert any("host-clock" in h.labels for h in hits)

    def test_while_loop_terminates(self):
        hits = hits_for(
            """
            import time

            def f(tracer):
                value = 0.0
                while value < 10:
                    value = value + time.time()
                tracer.record("event", value)
            """
        )
        assert any("host-clock" in h.labels for h in hits)
