"""Unit tests for the platform model."""

import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.platform.builder import paper_testbed, single_socket_node
from repro.platform.topology import CorePool, Node, Socket
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.pmem.device import OptaneDevice
from repro.units import GiB


class TestCorePool:
    def test_allocate_and_release(self):
        pool = CorePool(0, 4)
        cores = pool.allocate(3, owner="writer")
        assert cores == [0, 1, 2]
        assert pool.available == 1
        pool.release(cores)
        assert pool.available == 4

    def test_over_allocation_raises(self):
        pool = CorePool(0, 4)
        with pytest.raises(PlacementError, match="only 4"):
            pool.allocate(5)

    def test_negative_allocation_raises(self):
        with pytest.raises(PlacementError):
            CorePool(0, 4).allocate(-1)

    def test_double_release_raises(self):
        pool = CorePool(0, 4)
        cores = pool.allocate(1)
        pool.release(cores)
        with pytest.raises(PlacementError):
            pool.release(cores)

    def test_owner_tracking(self):
        pool = CorePool(0, 4)
        pool.allocate(2, owner="writer")
        assert pool.owner_of(0) == "writer"
        with pytest.raises(PlacementError):
            pool.owner_of(3)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            CorePool(0, 0)

    def test_released_cores_reused_in_order(self):
        pool = CorePool(0, 4)
        first = pool.allocate(2)
        pool.release(first)
        assert pool.allocate(2) == [0, 1]


class TestNode:
    def make_node(self):
        sockets = [
            Socket(socket_id=i, n_cores=28, pmem=OptaneDevice(socket_id=i))
            for i in range(2)
        ]
        return Node(sockets, upi_bandwidth=30e9)

    def test_socket_lookup(self):
        node = self.make_node()
        assert node.socket(1).socket_id == 1

    def test_socket_out_of_range(self):
        with pytest.raises(ConfigurationError):
            self.make_node().socket(2)

    def test_misnumbered_sockets_rejected(self):
        socket = Socket(socket_id=1, n_cores=4, pmem=OptaneDevice(socket_id=1))
        with pytest.raises(ConfigurationError):
            Node([socket], upi_bandwidth=30e9)

    def test_empty_node_rejected(self):
        with pytest.raises(ConfigurationError):
            Node([], upi_bandwidth=30e9)

    def test_local_flow_path(self):
        node = self.make_node()
        path, remote = node.flow_path(0, 0)
        assert not remote
        assert len(path) == 1
        assert path[0] is node.socket(0).pmem.resource

    def test_remote_flow_path_includes_upi(self):
        node = self.make_node()
        path, remote = node.flow_path(0, 1)
        assert remote
        assert node.socket(1).pmem.resource in path
        assert node.upi(0, 1) in path

    def test_upi_symmetric(self):
        node = self.make_node()
        assert node.upi(0, 1) is node.upi(1, 0)

    def test_upi_self_link_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_node().upi(0, 0)


class TestBuilders:
    def test_paper_testbed_shape(self):
        """§V: dual socket, 28 cores each, 6 x 512 GB Optane per socket."""
        node = paper_testbed()
        assert node.n_sockets == 2
        for socket in node.sockets:
            assert socket.n_cores == 28
            assert socket.pmem.capacity_bytes == 6 * 512 * GiB

    def test_paper_testbed_uses_calibration(self):
        cal = DEFAULT_CALIBRATION.replace(local_read_peak=40e9)
        node = paper_testbed(cal=cal)
        assert node.socket(0).pmem.cal.local_read_peak == 40e9

    def test_single_socket_node(self):
        node = single_socket_node(cores=8)
        assert node.n_sockets == 1
        assert node.socket(0).n_cores == 8

    def test_upi_capacity_from_calibration(self):
        node = paper_testbed()
        from repro.sim.flow import ResourceLoad

        assert node.upi(0, 1).capacity(ResourceLoad()) == pytest.approx(
            DEFAULT_CALIBRATION.upi_bandwidth
        )
