"""Unit tests for results, analysis, and reporting."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.analysis import (
    ConfigComparison,
    best_config,
    compare_configs,
    gap_between,
    normalized_runtimes,
    slowdown_of,
)
from repro.metrics.report import ascii_bar_chart, format_table
from repro.metrics.results import PhaseBreakdown, RunResult


def result(config, makespan, name="wf", writer=(0.0, 1.0), reader=(1.0, 2.0)):
    return RunResult(
        workflow_name=name,
        config_label=config,
        makespan=makespan,
        writer_span=writer,
        reader_span=reader,
        writer_phases=PhaseBreakdown(compute=0.1, io=0.5),
        reader_phases=PhaseBreakdown(io=0.4, wait=0.1),
    )


class TestRunResult:
    def test_spans_and_runtimes(self):
        r = result("S-LocW", 2.0)
        assert r.writer_runtime == 1.0
        assert r.reader_runtime == 1.0

    def test_is_serial(self):
        assert result("S-LocW", 2.0).is_serial
        assert not result("P-LocW", 2.0, reader=(0.5, 2.0)).is_serial

    def test_negative_makespan_rejected(self):
        with pytest.raises(ConfigurationError):
            result("S-LocW", -1.0)

    def test_describe(self):
        assert "S-LocW" in result("S-LocW", 2.0).describe()

    def test_phase_breakdown(self):
        phases = PhaseBreakdown(compute=1.0, io=3.0, wait=0.5)
        assert phases.total == 4.5
        assert phases.io_fraction == pytest.approx(0.75)

    def test_phase_breakdown_empty(self):
        assert PhaseBreakdown().io_fraction == 0.0


class TestAnalysis:
    def make_results(self):
        return [
            result("S-LocW", 10.0),
            result("S-LocR", 12.0),
            result("P-LocW", 15.0),
            result("P-LocR", 20.0),
        ]

    def test_best_config(self):
        assert best_config(self.make_results()) == "S-LocW"

    def test_best_config_tie_breaks_by_label(self):
        results = [result("P-LocW", 5.0), result("S-LocW", 5.0)]
        assert best_config(results) == "P-LocW"

    def test_normalized(self):
        normalized = normalized_runtimes(self.make_results())
        assert normalized["S-LocW"] == pytest.approx(1.0)
        assert normalized["P-LocR"] == pytest.approx(2.0)

    def test_slowdown(self):
        assert slowdown_of(self.make_results(), "S-LocR") == pytest.approx(0.2)

    def test_slowdown_unknown_config(self):
        with pytest.raises(ConfigurationError):
            slowdown_of(self.make_results(), "X-LocQ")

    def test_gap_between(self):
        assert gap_between(self.make_results(), "S-LocW", "S-LocR") == pytest.approx(0.2)
        assert gap_between(self.make_results(), "S-LocR", "S-LocW") == pytest.approx(
            -1.0 / 6.0
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_config([])

    def test_compare_configs(self):
        comparison = compare_configs(self.make_results())
        assert comparison.best_label == "S-LocW"
        assert comparison.worst_slowdown == pytest.approx(1.0)
        assert comparison.ranked()[0] == ("S-LocW", 10.0)

    def test_compare_rejects_mixed_workflows(self):
        with pytest.raises(ConfigurationError, match="mixed workflows"):
            compare_configs([result("S-LocW", 1.0, name="a"), result("S-LocR", 1.0, name="b")])

    def test_compare_rejects_duplicates(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            compare_configs([result("S-LocW", 1.0), result("S-LocW", 2.0)])


class TestReport:
    def test_format_table(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_table_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a"], [["1", "2"]])

    def test_table_no_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_bar_chart_scaling(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10  # b is the peak
        assert lines[0].count("#") == 5

    def test_bar_chart_split_bars(self):
        chart = ascii_bar_chart(
            {"S-LocW": 2.0}, width=10, splits={"S-LocW": (1.0, 1.0)}
        )
        assert "=" in chart and "#" in chart

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart({})

    def test_bar_chart_needs_positive_peak(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart({"a": 0.0})
