"""Tests for launch-command generation and timeline rendering."""

import pytest

from repro.apps.microbench import micro_workflow
from repro.core.configs import P_LOCR, S_LOCW
from repro.core.launch import render_launch_plan
from repro.core.pinning import plan_pinning
from repro.errors import ConfigurationError
from repro.metrics.timeline import phase_summary, render_timeline
from repro.platform.builder import paper_testbed
from repro.sim.trace import Tracer
from repro.units import MiB
from repro.workflow.kernels import FixedWorkKernel
from repro.workflow.runner import run_workflow
from repro.workflow.spec import WorkflowSpec
from repro.storage.objects import SnapshotSpec


@pytest.fixture(scope="module")
def spec():
    return micro_workflow(16 * MiB, ranks=4, iterations=3)


class TestLaunchPlan:
    def test_serial_sequences_components(self, spec):
        plan = plan_pinning(spec, S_LOCW, paper_testbed())
        launch = render_launch_plan(spec, S_LOCW, plan)
        assert "&" not in launch.simulation_command
        assert "wait" not in launch.analytics_command

    def test_parallel_backgrounds_simulation(self, spec):
        plan = plan_pinning(spec, P_LOCR, paper_testbed())
        launch = render_launch_plan(spec, P_LOCR, plan)
        assert launch.simulation_command.endswith("&")
        assert launch.analytics_command.endswith("wait")

    def test_channel_on_placement_socket(self, spec):
        plan = plan_pinning(spec, P_LOCR, paper_testbed())
        launch = render_launch_plan(spec, P_LOCR, plan)
        # LocR -> channel on the reader socket (1).
        assert "/mnt/pmem1" in "\n".join(launch.prologue)

    def test_pinning_flags_present(self, spec):
        plan = plan_pinning(spec, S_LOCW, paper_testbed())
        launch = render_launch_plan(spec, S_LOCW, plan)
        assert f"-np {spec.ranks}" in launch.simulation_command
        assert "--membind=0" in launch.simulation_command
        assert "--membind=1" in launch.analytics_command
        assert "--physcpubind=0,1,2,3" in launch.simulation_command

    def test_script_rendering(self, spec):
        plan = plan_pinning(spec, S_LOCW, paper_testbed())
        script = render_launch_plan(spec, S_LOCW, plan).as_script()
        assert script.startswith("#!/bin/sh")
        assert "mkdir -p" in script

    def test_rank_mismatch_rejected(self, spec):
        plan = plan_pinning(spec, S_LOCW, paper_testbed())
        other = micro_workflow(16 * MiB, ranks=8, iterations=3)
        with pytest.raises(ConfigurationError):
            render_launch_plan(other, S_LOCW, plan)


class TestTimeline:
    @pytest.fixture(scope="class")
    def traced_run(self):
        spec = WorkflowSpec(
            name="timeline@2",
            ranks=2,
            iterations=2,
            snapshot=SnapshotSpec(object_bytes=16 * MiB, objects_per_snapshot=4),
            sim_compute=FixedWorkKernel(0.2),
        )
        return run_workflow(spec, P_LOCR, trace=True)

    def test_renders_all_ranks(self, traced_run):
        text = render_timeline(traced_run.tracer, width=60)
        assert text.count("writer[") == 2
        assert text.count("reader[") == 2

    def test_contains_phase_glyphs(self, traced_run):
        text = render_timeline(traced_run.tracer, width=60)
        assert "W" in text  # writes
        assert "R" in text  # reads
        assert "." in text  # compute

    def test_width_respected(self, traced_run):
        text = render_timeline(traced_run.tracer, width=40)
        body_lines = [l for l in text.splitlines()[1:]]
        assert all(len(l) == len("writer[ 0] ") + 40 for l in body_lines)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            render_timeline(Tracer(), width=40)

    def test_narrow_width_rejected(self, traced_run):
        with pytest.raises(ConfigurationError):
            render_timeline(traced_run.tracer, width=5)

    def test_phase_summary(self, traced_run):
        summary = phase_summary(traced_run.tracer, "writer")
        assert summary["write"] > 0
        assert summary["compute"] == pytest.approx(2 * 2 * 0.2, rel=0.05)
