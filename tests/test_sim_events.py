"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, SimEvent, Timeout


class TestSimEvent:
    def test_starts_pending(self):
        event = SimEvent("e")
        assert not event.triggered

    def test_succeed_carries_value(self):
        event = SimEvent("e")
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self):
        event = SimEvent("e").succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_then_value_reraises(self):
        event = SimEvent("e")
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.exception is error
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_value_before_trigger_raises(self):
        with pytest.raises(SimulationError):
            _ = SimEvent("e").value

    def test_callback_after_trigger_fires_immediately(self):
        event = SimEvent("e").succeed("x")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_callbacks_fire_in_registration_order(self):
        event = SimEvent("e")
        seen = []
        event.add_callback(lambda e: seen.append(1))
        event.add_callback(lambda e: seen.append(2))
        event.succeed()
        assert seen == [1, 2]


class TestTimeout:
    def test_duration(self):
        assert Timeout(1.5).duration == 1.5

    def test_negative_raises(self):
        with pytest.raises(SimulationError):
            Timeout(-1)

    def test_zero_allowed(self):
        assert Timeout(0).duration == 0.0

    def test_value_payload(self):
        assert Timeout(1, value="v").value == "v"


class TestAllOf:
    def test_waits_for_all(self):
        a, b = SimEvent("a"), SimEvent("b")
        combo = AllOf([a, b])
        a.succeed(1)
        assert not combo.triggered
        b.succeed(2)
        assert combo.triggered
        assert combo.value == [1, 2]

    def test_value_order_is_input_order(self):
        a, b = SimEvent("a"), SimEvent("b")
        combo = AllOf([a, b])
        b.succeed("second")
        a.succeed("first")
        assert combo.value == ["first", "second"]

    def test_empty_succeeds_immediately(self):
        assert AllOf([]).triggered

    def test_child_failure_propagates(self):
        a, b = SimEvent("a"), SimEvent("b")
        combo = AllOf([a, b])
        a.fail(ValueError("bad"))
        assert combo.triggered
        assert isinstance(combo.exception, ValueError)

    def test_pretriggered_children(self):
        a = SimEvent("a").succeed(1)
        b = SimEvent("b").succeed(2)
        assert AllOf([a, b]).value == [1, 2]


class TestAnyOf:
    def test_first_wins(self):
        a, b = SimEvent("a"), SimEvent("b")
        combo = AnyOf([a, b])
        b.succeed("bv")
        assert combo.value == (1, "bv")

    def test_later_triggers_ignored(self):
        a, b = SimEvent("a"), SimEvent("b")
        combo = AnyOf([a, b])
        a.succeed("av")
        b.succeed("bv")
        assert combo.value == (0, "av")

    def test_empty_raises(self):
        with pytest.raises(SimulationError):
            AnyOf([])

    def test_failure_propagates(self):
        a, b = SimEvent("a"), SimEvent("b")
        combo = AnyOf([a, b])
        b.fail(KeyError("k"))
        assert isinstance(combo.exception, KeyError)
