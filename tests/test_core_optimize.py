"""The global placement optimizer: model, backends, frontier, validation.

Three claim groups:

* **Pareto-front properties** — no dominated points, deterministic
  (byte-identical) serialization, ε-coalescing only shrinks the set.
* **Pricing agreement** — the simulation pricer's Table I candidate
  prices equal the reference-solver-backed simulator run for run;
  injected (precomputed) prices round-trip exactly.
* **Table II re-derivation** — the optimizer's per-workflow argmin,
  priced from the session oracle reports, matches the paper on 17/18
  panels exactly and all 18 within the ε-band, with the one divergence
  being the documented beats-the-paper point (miniamr+matmult@16).
"""

from __future__ import annotations

import json

import pytest

from repro.apps.suite import build_workflow
from repro.core.configs import ALL_CONFIGS
from repro.core.optimize.backends import (
    BranchBoundOptimizer,
    GreedyFlowOptimizer,
)
from repro.core.optimize.cli import (
    VALIDATE_EPSILON,
    build_scenario,
    main as optimize_main,
)
from repro.core.optimize.model import retained_pmem_bytes
from repro.core.optimize.pareto import (
    FrontierPoint,
    coalesce,
    dominates,
    enumerate_frontier,
    frontier_json,
    frontier_payload,
    pareto_filter,
    validate_frontier,
)
from repro.core.optimize.pricing import SimulationPricer
from repro.core.recommend import RecommendationEngine
from repro.units import GB
from repro.workflow.runner import run_workflow

#: The one panel where the simulator-backed optimizer beats the paper's
#: recommendation (see tests/test_paper_reproduction.py NEAR_MISS_PANELS).
BEATS_PAPER_KEY = "miniamr+matmult@16"


def _precomputed(suite_reports):
    return {
        f"{family}@{ranks}": {
            label: result.makespan
            for label, result in report.results.items()
        }
        for (family, ranks), report in suite_reports.items()
    }


# ----------------------------------------------------------------------
# Pareto-front properties.
# ----------------------------------------------------------------------
def _point(makespan, pmem, remote, tag):
    return FrontierPoint(makespan, pmem, remote, ((tag, tag),))


def test_pareto_filter_removes_dominated_points():
    points = [
        _point(1.0, 100, 10, "a"),
        _point(2.0, 100, 10, "b"),  # dominated by a
        _point(1.0, 50, 20, "c"),
        _point(0.5, 200, 10, "d"),
        _point(0.5, 200, 10, "e"),  # duplicate objectives of d
    ]
    kept = pareto_filter(points)
    assert [p.selections[0][0] for p in kept] == ["d", "c", "a"]
    for i, a in enumerate(kept):
        for j, b in enumerate(kept):
            assert i == j or not dominates(a.objectives, b.objectives)


def test_pareto_filter_is_order_independent():
    points = [
        _point(float(i), 100 - i, (i * 7) % 13, f"p{i}") for i in range(20)
    ]
    assert pareto_filter(points) == pareto_filter(list(reversed(points)))


def test_epsilon_coalescing_shrinks_monotonically():
    points = pareto_filter(
        [_point(1.0 + 0.001 * i, 1000 - i, 0, f"p{i}") for i in range(100)]
    )
    sizes = [
        len(coalesce(points, epsilon)) for epsilon in (0.0, 0.001, 0.01, 0.1)
    ]
    assert sizes[0] == len(points)
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[-1] < sizes[0]


def test_frontier_json_is_byte_identical_and_schema_valid(suite_reports):
    def build():
        scenario = build_scenario(
            ["micro-64mb@16", "miniamr+matmult@16", "gtc+readonly@16"],
            pricer_name="simulation",
            precomputed=_precomputed(suite_reports),
        )
        points, truncated = enumerate_frontier(scenario, epsilon=0.0)
        return scenario, frontier_payload(scenario, points, 0.0, truncated)

    scenario, payload = build()
    _, payload_again = build()
    assert validate_frontier(payload) == []
    assert frontier_json(payload) == frontier_json(payload_again)
    # The acceptance scenario: >= 3 non-dominated points, and the
    # heuristic's plan is not the frontier's makespan-optimal point.
    assert len(payload["points"]) >= 3
    optimal = payload["points"][0]
    heuristic = {
        choice.key: choice.heuristic_candidate.key
        for choice in scenario.choices
    }
    assert heuristic != optimal["selections"]
    assert optimal["selections"][BEATS_PAPER_KEY] == "P-LocR"
    assert heuristic[BEATS_PAPER_KEY] == "S-LocW"
    # Every chosen point carries an explain-style why line per workflow.
    for record in payload["points"]:
        assert set(record["why"]) == set(record["selections"])
        assert all(record["why"].values())


def test_validate_frontier_flags_dominated_and_unsorted():
    bad = {
        "schema": "repro.optimize.frontier/v1",
        "points": [
            {
                "makespan_seconds": 2.0,
                "pmem_bytes": 10,
                "remote_bytes": 5,
                "selections": {"a@8": "S-LocW"},
                "why": {"a@8": "-"},
            },
            {
                "makespan_seconds": 1.0,
                "pmem_bytes": 5,
                "remote_bytes": 5,
                "selections": {"a@8": "P-LocR"},
                "why": {"a@8": "-"},
            },
        ],
    }
    problems = validate_frontier(bad)
    assert any("dominated" in p for p in problems)
    assert any("not sorted" in p for p in problems)


# ----------------------------------------------------------------------
# Pricing agreement with the reference-backed simulator.
# ----------------------------------------------------------------------
def test_simulation_pricer_matches_reference_solver(monkeypatch):
    """Optimizer prices == reference-solver simulation, all 4 configs."""
    spec = build_workflow("micro-2k", ranks=8)
    priced = SimulationPricer().price(spec, "micro-2k", 8)
    monkeypatch.setenv("REPRO_SOLVER", "reference")
    for config in ALL_CONFIGS:
        reference = run_workflow(spec, config)
        assert (
            priced.candidate(config.label).makespan_seconds
            == reference.makespan
        )


def test_precomputed_prices_round_trip(suite_reports):
    spec = build_workflow("gtc+readonly", ranks=8)
    table = _precomputed(suite_reports)
    priced = SimulationPricer(precomputed=table).price(spec, "gtc+readonly", 8)
    for config in ALL_CONFIGS:
        assert (
            priced.candidate(config.label).makespan_seconds
            == table["gtc+readonly@8"][config.label]
        )
        assert priced.candidate(config.label).price_source == "simulation"


def test_retained_bytes_semantics():
    spec = build_workflow("micro-64mb", ranks=16)
    serial = retained_pmem_bytes(spec, "serial")
    parallel = retained_pmem_bytes(spec, "parallel")
    assert serial == spec.total_data_bytes()
    assert parallel == 2 * spec.ranks * spec.snapshot.snapshot_bytes
    assert parallel < serial


# ----------------------------------------------------------------------
# Backends.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def budget_scenario(suite_reports):
    return build_scenario(
        ["micro-64mb@16", "micro-64mb@24", "miniamr+matmult@16"],
        pricer_name="simulation",
        pmem_budget_bytes=int(300 * GB),
        precomputed=_precomputed(suite_reports),
    )


def test_backends_agree_under_budget(budget_scenario):
    exact = BranchBoundOptimizer().solve(budget_scenario)
    flow = GreedyFlowOptimizer().solve(budget_scenario)
    assert exact.feasible and flow.feasible
    assert exact.pmem_bytes <= budget_scenario.limits.pmem_budget_bytes
    assert flow.pmem_bytes <= budget_scenario.limits.pmem_budget_bytes
    # The exact backend is the floor; greedy may only be worse.
    assert exact.makespan_seconds <= flow.makespan_seconds
    assert exact.selections == flow.selections


def test_exact_backend_matches_frontier_optimum(budget_scenario):
    plan = BranchBoundOptimizer().solve(budget_scenario)
    points, _ = enumerate_frontier(budget_scenario)
    assert points
    assert plan.makespan_seconds == min(p.makespan_seconds for p in points)


def test_exact_backend_unconstrained_is_per_workflow_argmin(suite_reports):
    scenario = build_scenario(
        ["micro-2k@8", "gtc+matmult@16"],
        pricer_name="simulation",
        precomputed=_precomputed(suite_reports),
    )
    plan = BranchBoundOptimizer().solve(scenario)
    expected = {
        choice.key: choice.makespan_best.key for choice in scenario.choices
    }
    assert dict(plan.selections) == expected


def test_infeasible_budget_reported_not_raised(suite_reports):
    scenario = build_scenario(
        ["micro-64mb@16"],
        pricer_name="simulation",
        pmem_budget_bytes=1,
        precomputed=_precomputed(suite_reports),
    )
    plan = BranchBoundOptimizer().solve(scenario)
    assert not plan.feasible
    points, _ = enumerate_frontier(scenario)
    assert points == []


# ----------------------------------------------------------------------
# Table II re-derivation (18/18 within the ε-band).
# ----------------------------------------------------------------------
def test_table2_rederivation(suite_entries, suite_reports):
    pricer = SimulationPricer(precomputed=_precomputed(suite_reports))
    strict = 0
    beats = []
    for entry in suite_entries:
        choices = pricer.price(entry.spec, entry.family, entry.ranks)
        best = choices.makespan_best
        paper = choices.candidate(entry.paper_best)
        assert paper.makespan_seconds <= best.makespan_seconds * (
            1.0 + VALIDATE_EPSILON
        ), f"{choices.key}: paper pick outside the epsilon band"
        if best.key == entry.paper_best:
            strict += 1
        else:
            beats.append(choices.key)
    assert strict == 17
    assert beats == [BEATS_PAPER_KEY]


# ----------------------------------------------------------------------
# Engine cache: identical results on/off (the satellite fix).
# ----------------------------------------------------------------------
def test_engine_cache_does_not_change_results(suite_entries):
    cached = RecommendationEngine(cache=True)
    uncached = RecommendationEngine(cache=False)
    for entry in suite_entries:
        for _ in range(2):  # second pass hits the cache
            assert (
                cached.recommend(entry.spec).config
                == uncached.recommend(entry.spec).config
            )
            assert cached.estimate_makespan(
                entry.spec
            ) == uncached.estimate_makespan(entry.spec)
    info = cached.cache_info()
    assert info["hits"] > 0
    assert info["entries"] == len(suite_entries)
    assert uncached.cache_info() == {
        "hits": 0,
        "misses": 0,
        "entries": 0,
        "token": 0,
    }
    token = cached.invalidate_cache()
    assert token == 1
    assert cached.cache_info()["entries"] == 0


def test_price_breakdown_consistent_with_scalars(suite_entries):
    engine = RecommendationEngine()
    for entry in suite_entries:
        estimates = engine.placement_estimates(engine.features_of(entry.spec))
        for local_write, scalar in (
            (True, estimates.t_locw_seconds),
            (False, estimates.t_locr_seconds),
        ):
            price = estimates.breakdown(local_write=local_write)
            assert price.total_seconds == pytest.approx(scalar, rel=1e-12)
            fractions = price.fractions()
            assert sum(fractions.values()) == pytest.approx(1.0)
            assert price.dominant in fractions


# ----------------------------------------------------------------------
# CLI smoke.
# ----------------------------------------------------------------------
def test_cli_pareto_and_solve_smoke(tmp_path, capsys):
    frontier_path = tmp_path / "frontier.json"
    rc = optimize_main(
        [
            "pareto",
            "--workflows",
            "micro-64mb@8",
            "micro-2k@8",
            "--pricer",
            "analytic",
            "--allow-colocation",
            "--allow-dram",
            "--epsilon",
            "0.01",
            "--out",
            str(frontier_path),
        ]
    )
    assert rc == 0
    payload = json.loads(frontier_path.read_text())
    assert validate_frontier(payload) == []
    assert payload["heuristic"]["selections"]

    plan_path = tmp_path / "plan.json"
    rc = optimize_main(
        [
            "solve",
            "--workflows",
            "micro-64mb@8",
            "--pricer",
            "analytic",
            "--backend",
            "flow",
            "--out",
            str(plan_path),
        ]
    )
    assert rc == 0
    plan = json.loads(plan_path.read_text())
    assert plan["schema"] == "repro.optimize.plan/v1"
    assert "micro-64mb@8" in plan["assignments"]
    capsys.readouterr()


def test_cli_rejects_bad_workflow_key(capsys):
    assert optimize_main(["solve", "--workflows", "nosuch@8"]) == 2
    assert optimize_main(["solve", "--workflows", "micro-2k"]) == 2
    capsys.readouterr()


# ----------------------------------------------------------------------
# Service plan consumption.
# ----------------------------------------------------------------------
def test_service_scheduler_consumes_plan(tmp_path, suite_reports):
    from repro.core.optimize.backends import BranchBoundOptimizer
    from repro.service.scheduler import ServiceScheduler

    scenario = build_scenario(
        ["micro-64mb@8", "micro-2k@8"],
        pricer_name="simulation",
        precomputed=_precomputed(suite_reports),
    )
    plan = BranchBoundOptimizer().solve(scenario).as_record(scenario)
    scheduler = ServiceScheduler(root=str(tmp_path / "svc"), plan=plan)
    scheduler.submit_suite("micro")
    report = scheduler.run()
    assert report.executed == 2
    planned = {entry["key"]: entry for entry in report.regrets}
    for key in ("micro-64mb@8", "micro-2k@8"):
        assert planned[key]["plan"] == plan["assignments"][key]["config"]
        assert "plan_regret" in planned[key]
    rendered = report.render_text()
    assert "plan " in rendered


def test_service_scheduler_rejects_bad_plan_schema(tmp_path):
    from repro.errors import ConfigurationError
    from repro.service.scheduler import ServiceScheduler

    with pytest.raises(ConfigurationError):
        ServiceScheduler(
            root=str(tmp_path / "svc"), plan={"schema": "bogus/v0"}
        )
