"""Unit and property tests for the Optane bandwidth curves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmem.bandwidth import (
    access_efficiency,
    mix_read_penalty,
    mix_write_penalty,
    read_bandwidth_total,
    remote_read_factor,
    remote_write_factor,
    sustained_congestion_factor,
    write_bandwidth_total,
)
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.units import GB, KiB, MiB

CAL = DEFAULT_CALIBRATION

concurrency = st.floats(min_value=0.01, max_value=64.0)


class TestReadCurve:
    def test_zero_threads(self):
        assert read_bandwidth_total(CAL, 0) == 0.0

    def test_saturates_near_peak_at_17(self):
        """§II-B: read bandwidth scales up to 17 concurrent operations."""
        assert read_bandwidth_total(CAL, 17) > 0.90 * CAL.local_read_peak

    def test_never_exceeds_peak(self):
        assert read_bandwidth_total(CAL, 100) <= CAL.local_read_peak

    @given(a=concurrency, b=concurrency)
    @settings(max_examples=60, deadline=None)
    def test_property_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert read_bandwidth_total(CAL, lo) <= read_bandwidth_total(CAL, hi) + 1e-6


class TestWriteCurve:
    def test_zero_threads(self):
        assert write_bandwidth_total(CAL, 0) == 0.0

    def test_peaks_near_four_threads(self):
        """§II-B: write scaling is limited beyond 4 concurrent operations."""
        at_four = write_bandwidth_total(CAL, 4)
        assert at_four > 0.85 * CAL.local_write_peak
        # And declines (gently) at a socketful of writers.
        assert write_bandwidth_total(CAL, 24) < write_bandwidth_total(CAL, 8)

    def test_never_exceeds_peak(self):
        for n in (1, 4, 8, 16, 24, 56):
            assert write_bandwidth_total(CAL, n) <= CAL.local_write_peak

    @given(n=concurrency)
    @settings(max_examples=60, deadline=None)
    def test_property_positive(self, n):
        assert write_bandwidth_total(CAL, n) > 0


class TestRemoteFactors:
    def test_remote_read_anchor(self):
        """The fitted slope gives ~1.5x at 24 readers (paper reports 1.3x;
        deviation documented in EXPERIMENTS.md)."""
        factor = remote_read_factor(CAL, 24)
        assert 1.0 / factor == pytest.approx(1.53, rel=0.05)

    def test_remote_read_mild_at_low_concurrency(self):
        assert remote_read_factor(CAL, 2) > 0.95

    def test_small_access_collapse_15x(self):
        """§II-B: 15x write-bandwidth drop at 24 concurrent small writes."""
        factor = remote_write_factor(CAL, 24, op_bytes=64.0)
        assert 1.0 / factor == pytest.approx(15.0, rel=0.15)

    def test_small_access_under_1gbps(self):
        """§II-B: remote small-access write bandwidth collapses below
        ~1 GB/s at high concurrency, monotonically."""
        totals = [
            write_bandwidth_total(CAL, n) * remote_write_factor(CAL, n, op_bytes=64.0)
            for n in (8, 12, 16, 24)
        ]
        assert totals == sorted(totals, reverse=True)
        assert totals[-1] < 1.0 * GB

    def test_streaming_knee_gentle_at_16(self):
        assert remote_write_factor(CAL, 16, op_bytes=64 * MiB) > 0.9

    def test_streaming_knee_collapses_at_24(self):
        factor = remote_write_factor(CAL, 24, op_bytes=64 * MiB)
        assert factor == pytest.approx(CAL.remote_write_floor, rel=0.05)

    def test_blend_between_regimes(self):
        small = remote_write_factor(CAL, 24, op_bytes=4 * KiB)
        mid = remote_write_factor(CAL, 24, op_bytes=10 * KiB)
        streaming = remote_write_factor(CAL, 24, op_bytes=24 * KiB)
        assert small < mid < streaming

    def test_disabled_remote_penalty(self):
        cal = CAL.replace(enable_remote_penalty=False)
        assert remote_write_factor(cal, 24, op_bytes=64.0) == 1.0
        assert remote_read_factor(cal, 24) == 1.0

    @given(n=concurrency, op=st.floats(min_value=64, max_value=256 * MiB))
    @settings(max_examples=60, deadline=None)
    def test_property_factors_in_unit_interval(self, n, op):
        assert 0.0 < remote_write_factor(CAL, n, op) <= 1.0
        assert 0.0 < remote_read_factor(CAL, n) <= 1.0


class TestMixPenalties:
    def test_no_opposing_traffic_no_penalty(self):
        assert mix_read_penalty(CAL, 0) == 1.0
        assert mix_write_penalty(CAL, 0) == 1.0

    def test_read_crush_onset_is_sharp(self):
        """A few writers barely hurt reads; a socketful crushes them."""
        mild = mix_read_penalty(CAL, 4)
        crushed = mix_read_penalty(CAL, 24)
        assert mild > 0.85
        assert crushed < 0.25

    def test_remote_readers_boost_write_penalty(self):
        local = mix_write_penalty(CAL, 16, remote_reader_fraction=0.0)
        remote = mix_write_penalty(CAL, 16, remote_reader_fraction=1.0)
        assert remote < local

    def test_remote_writer_boost(self):
        local_writer = mix_write_penalty(CAL, 16, writer_remote=False)
        remote_writer = mix_write_penalty(CAL, 16, writer_remote=True)
        assert remote_writer < local_writer

    def test_disabled_mix(self):
        cal = CAL.replace(enable_mix_interference=False)
        assert mix_read_penalty(cal, 24) == 1.0
        assert mix_write_penalty(cal, 24, 1.0, True) == 1.0

    @given(n=concurrency, frac=st.floats(min_value=0, max_value=1))
    @settings(max_examples=60, deadline=None)
    def test_property_penalties_in_unit_interval(self, n, frac):
        assert 0.0 < mix_read_penalty(CAL, n) <= 1.0
        assert 0.0 < mix_write_penalty(CAL, n, frac) <= 1.0

    @given(a=concurrency, b=concurrency)
    @settings(max_examples=40, deadline=None)
    def test_property_write_penalty_monotone_in_readers(self, a, b):
        lo, hi = sorted((a, b))
        assert mix_write_penalty(CAL, hi) <= mix_write_penalty(CAL, lo) + 1e-9


class TestCongestion:
    def test_idle_link_no_congestion(self):
        assert sustained_congestion_factor(CAL, 0.0) == 1.0

    def test_sustained_stream_congests(self):
        assert sustained_congestion_factor(CAL, 24.0) < 0.5

    def test_burst_level_mild(self):
        """The EWMA of a GTC-like burst (a few effective streams) barely
        congests — the mechanism behind S-LocR's viability at 16 ranks."""
        assert sustained_congestion_factor(CAL, 4.0) > 0.9

    @given(a=st.floats(min_value=0, max_value=64), b=st.floats(min_value=0, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_property_monotone_decreasing(self, a, b):
        lo, hi = sorted((a, b))
        assert sustained_congestion_factor(CAL, hi) <= sustained_congestion_factor(
            CAL, lo
        ) + 1e-12


class TestAccessEfficiency:
    def test_large_streaming_near_full(self):
        assert access_efficiency(CAL, "write", 64 * MiB, 8) > 0.99

    def test_sub_xpline_writes_poor(self):
        assert access_efficiency(CAL, "write", 128, 1) < 0.5

    def test_dimm_contention_for_small_accesses_many_threads(self):
        """§II-B: >= 6 threads at 4 KB granularity contend per DIMM."""
        few = access_efficiency(CAL, "write", 4 * KiB, 4)
        many = access_efficiency(CAL, "write", 4 * KiB, 8)
        assert many < few

    def test_no_dimm_contention_above_chunk(self):
        few = access_efficiency(CAL, "write", 24 * KiB, 4)
        many = access_efficiency(CAL, "write", 24 * KiB, 24)
        assert many == pytest.approx(few)

    def test_disabled_size_effects(self):
        cal = CAL.replace(enable_size_effects=False)
        assert access_efficiency(cal, "write", 64, 24) == 1.0

    @given(
        op=st.floats(min_value=1, max_value=256 * MiB),
        threads=st.integers(min_value=1, max_value=56),
        kind=st.sampled_from(["read", "write"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_efficiency_in_unit_interval(self, op, threads, kind):
        assert 0.0 < access_efficiency(CAL, kind, op, threads) <= 1.0
