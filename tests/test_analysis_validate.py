"""Tests for the pre-run spec/platform validator."""

import dataclasses

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.validate import (
    validate_calibration,
    validate_node,
    validate_placement,
    validate_run,
    validate_workflow,
)
from repro.core.configs import P_LOCR, P_LOCW, S_LOCW
from repro.errors import ValidationError
from repro.platform.builder import paper_testbed, single_socket_node
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.storage.objects import SnapshotSpec
from repro.units import GiB, KiB
from repro.workflow.runner import run_workflow
from repro.workflow.spec import WorkflowSpec


def spec(**kw):
    defaults = dict(
        name="v@2",
        ranks=2,
        iterations=3,
        snapshot=SnapshotSpec(object_bytes=2 * KiB, objects_per_snapshot=8),
    )
    defaults.update(kw)
    return WorkflowSpec(**defaults)


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestWorkflowStructure:
    def test_default_spec_is_clean(self):
        assert validate_workflow(spec()) == []

    def test_cyclic_coupling_spec201(self):
        cyclic = spec(
            couplings=(("simulation", "analytics"), ("analytics", "simulation"))
        )
        found = validate_workflow(cyclic)
        assert codes(found) == ["SPEC201"]
        assert "cycle" in found[0].message

    def test_self_loop_spec201(self):
        looped = spec(couplings=(("simulation", "simulation"),))
        assert "SPEC201" in codes(validate_workflow(looped))

    def test_dangling_endpoint_spec202(self):
        dangling = spec(couplings=(("simulation", "visualization"),))
        found = validate_workflow(dangling)
        assert codes(found) == ["SPEC202"]
        assert "visualization" in found[0].message

    def test_unknown_stack_spec205(self):
        bad = spec(stack_name="tmpfs")
        assert "SPEC205" in codes(validate_workflow(bad))


class TestPlacement:
    def test_clean_placement(self):
        assert validate_placement(spec(), P_LOCR, paper_testbed()) == []

    def test_bad_socket_reference_spec203(self):
        found = validate_placement(spec(), P_LOCR, paper_testbed(), reader_socket=5)
        assert codes(found) == ["SPEC203"]

    def test_negative_socket_reference_spec203(self):
        found = validate_placement(spec(), P_LOCR, paper_testbed(), writer_socket=-1)
        assert "SPEC203" in codes(found)

    def test_shared_socket_spec206(self):
        found = validate_placement(
            spec(), P_LOCR, paper_testbed(), writer_socket=0, reader_socket=0
        )
        assert codes(found) == ["SPEC206"]

    def test_ranks_exceed_cores_spec204(self):
        found = validate_placement(spec(ranks=40), S_LOCW, paper_testbed())
        assert codes(found) == ["SPEC204", "SPEC204"]

    def test_serial_capacity_blowout_spec207(self):
        big = spec(
            iterations=100_000,
            snapshot=SnapshotSpec(object_bytes=GiB, objects_per_snapshot=1),
        )
        found = validate_placement(big, S_LOCW, paper_testbed())
        assert codes(found) == ["SPEC207"]

    def test_parallel_ring_fits_spec207_not_raised(self):
        # The same workload in parallel mode retains only a 2-version ring.
        big = spec(
            iterations=100_000,
            snapshot=SnapshotSpec(object_bytes=GiB, objects_per_snapshot=1),
        )
        assert validate_placement(big, P_LOCW, paper_testbed()) == []


class TestCalibrationTables:
    def test_default_calibration_clean(self):
        assert validate_calibration(DEFAULT_CALIBRATION) == []

    def test_non_monotone_bandwidth_plat301(self):
        # Bypass OptaneCalibration.replace() (which validates) to build a
        # curve that decreases inside the calibrated ramp.
        broken = dataclasses.replace(DEFAULT_CALIBRATION, read_ramp_scale=-6.0)
        found = validate_calibration(broken)
        assert "PLAT301" in codes(found)
        # The per-field check also fires (negative ramp constant).
        assert "PLAT304" in codes(found)

    def test_negative_bandwidth_plat301(self):
        broken = dataclasses.replace(DEFAULT_CALIBRATION, local_write_peak=-1.0)
        assert "PLAT301" in codes(validate_calibration(broken))

    def test_zero_latency_plat302(self):
        flat = dataclasses.replace(
            DEFAULT_CALIBRATION,
            read_latency_local=0.0,
            write_latency_local=0.0,
            read_latency_remote=0.0,
            write_latency_remote=0.0,
        )
        found = validate_calibration(flat)
        assert codes(found).count("PLAT302") == 4

    def test_geometry_mismatch_plat303(self):
        node = paper_testbed()
        other = DEFAULT_CALIBRATION.replace(dimms_per_socket=4)
        found = validate_node(node, other)
        # Both sockets disagree with the 4-DIMM calibration.
        assert codes(found) == ["PLAT303", "PLAT303"]

    def test_matching_geometry_clean(self):
        assert validate_node(paper_testbed(), DEFAULT_CALIBRATION) == []


class TestValidateRunHook:
    def test_clean_run_returns_no_errors(self):
        diagnostics = validate_run(
            spec(), P_LOCR, paper_testbed(), DEFAULT_CALIBRATION
        )
        assert [d for d in diagnostics if d.severity is Severity.ERROR] == []

    def test_run_workflow_rejects_cycle_before_any_event(self):
        cyclic = spec(
            couplings=(("simulation", "analytics"), ("analytics", "simulation"))
        )
        with pytest.raises(ValidationError) as excinfo:
            run_workflow(cyclic, P_LOCR)
        assert excinfo.value.codes == ("SPEC201",)

    def test_run_workflow_rejects_bad_socket(self):
        with pytest.raises(ValidationError) as excinfo:
            run_workflow(spec(), P_LOCR, reader_socket=7)
        assert excinfo.value.codes == ("SPEC203",)

    def test_run_workflow_single_socket_node_rejected(self):
        # The paper's workflows need two sockets; a one-socket platform
        # cannot host the default reader placement.
        with pytest.raises(ValidationError) as excinfo:
            run_workflow(spec(), P_LOCR, node_factory=single_socket_node)
        assert "SPEC203" in excinfo.value.codes

    def test_validation_error_is_structured(self):
        try:
            run_workflow(spec(ranks=40), S_LOCW)
        except ValidationError as exc:
            assert all(d.code.startswith("SPEC") for d in exc.diagnostics)
            assert all(d.severity is Severity.ERROR for d in exc.diagnostics)
            rendered = str(exc)
            assert "SPEC204" in rendered
        else:  # pragma: no cover
            pytest.fail("expected ValidationError")

    def test_validate_false_skips_checks(self):
        cyclic = spec(
            couplings=(("simulation", "analytics"), ("analytics", "simulation"))
        )
        # The coupling graph is advisory metadata for the 1:1 runner, so an
        # unvalidated run still executes — that escape hatch is deliberate.
        result = run_workflow(cyclic, P_LOCR, validate=False)
        assert result.makespan > 0
