"""Tests for the real (threaded) runtime."""

import threading
import time

import numpy as np
import pytest

from repro.core.configs import P_LOCR, S_LOCW
from repro.errors import StorageError
from repro.runtime.channel import InMemoryChannel
from repro.runtime.threaded import ThreadedWorkflow
from repro.storage.objects import SnapshotSpec
from repro.units import KiB
from repro.workflow.spec import WorkflowSpec


class TestInMemoryChannel:
    def test_publish_consume_roundtrip(self):
        channel = InMemoryChannel(n_streams=1)
        channel.publish(0, 0, "payload")
        assert channel.consume(0, 0) == "payload"

    def test_out_of_order_publish_rejected(self):
        channel = InMemoryChannel(n_streams=1)
        with pytest.raises(StorageError, match="out of order"):
            channel.publish(0, 3, "x")

    def test_consume_blocks_until_published(self):
        channel = InMemoryChannel(n_streams=1)
        received = []

        def consumer():
            received.append(channel.consume(0, 0, timeout=5))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.02)
        assert received == []
        channel.publish(0, 0, 42)
        thread.join(timeout=5)
        assert received == [42]

    def test_consume_timeout(self):
        channel = InMemoryChannel(n_streams=1)
        with pytest.raises(StorageError, match="timed out"):
            channel.consume(0, 0, timeout=0.01)

    def test_ring_back_pressure(self):
        """A writer more than `retained_versions` ahead blocks."""
        channel = InMemoryChannel(n_streams=1, retained_versions=2)
        channel.publish(0, 0, "a")
        channel.publish(0, 1, "b")
        blocked = threading.Event()

        def overrun():
            channel.publish(0, 2, "c")  # version 2 - consumed(-1) = 3 > 2
            blocked.set()

        thread = threading.Thread(target=overrun)
        thread.start()
        time.sleep(0.02)
        assert not blocked.is_set()
        channel.consume(0, 0)  # frees a slot
        thread.join(timeout=5)
        assert blocked.is_set()

    def test_eviction_keeps_ring_bounded(self):
        channel = InMemoryChannel(n_streams=1, retained_versions=2)
        for version in range(5):
            channel.publish(0, version, version)
            channel.consume(0, version)
        assert len(channel._data[0]) <= 2

    def test_close_wakes_waiters(self):
        channel = InMemoryChannel(n_streams=1)
        failures = []

        def consumer():
            try:
                channel.consume(0, 0, timeout=10)
            except StorageError as exc:
                failures.append(exc)

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.02)
        channel.close()
        thread.join(timeout=5)
        assert failures

    def test_invalid_construction(self):
        with pytest.raises(StorageError):
            InMemoryChannel(n_streams=0)
        with pytest.raises(StorageError):
            InMemoryChannel(n_streams=1, retained_versions=0)


def small_spec(ranks=2, iterations=3):
    return WorkflowSpec(
        name="threaded@2",
        ranks=ranks,
        iterations=iterations,
        snapshot=SnapshotSpec(object_bytes=2 * KiB, objects_per_snapshot=8),
    )


class TestThreadedWorkflow:
    def make(self, **kw):
        sums = {}

        def writer_fn(rank, iteration):
            return np.full(256, rank * 100 + iteration, dtype=np.float64)

        def reader_fn(rank, iteration, payload):
            return float(payload.sum())

        return ThreadedWorkflow(small_spec(), writer_fn, reader_fn, **kw)

    def test_parallel_run_moves_real_data(self):
        result = self.make().run(P_LOCR)
        assert result.ok
        assert result.iterations_completed == 3
        # rank 1, iteration 2: 256 elements of value 102.
        assert result.reader_outputs[(1, 2)] == pytest.approx(256 * 102.0)

    def test_serial_run_orders_components(self):
        result = self.make().run(S_LOCW)
        assert result.ok
        # In serial mode the reader phase happens after the writer phase.
        assert result.reader_seconds >= 0
        assert len(result.reader_outputs) == 2 * 3

    def test_writer_exception_surfaces(self):
        def bad_writer(rank, iteration):
            raise RuntimeError("writer failed")

        workflow = ThreadedWorkflow(small_spec(), bad_writer, lambda r, i, p: None)
        result = workflow.run(P_LOCR)
        assert not result.ok
        assert any("writer failed" in str(e) for e in result.errors)

    def test_emulated_device_slows_run(self):
        # Comparing the wall-clock makespans of two runs is flaky: the
        # payloads are tiny, so both runs are dominated by scheduler noise.
        # Instead check the mechanism: emulation injects a model-derived
        # sleep per publish/consume, and time.sleep guarantees *at least*
        # the requested duration — so the makespan has a deterministic
        # floor of iterations * delay, regardless of machine load.
        fast = self.make()
        assert fast._emulated_delay("write", remote=not P_LOCR.writer_local) == 0.0

        slow = self.make(emulate_device=True, time_scale=0.02)
        write_delay = slow._emulated_delay("write", remote=not P_LOCR.writer_local)
        read_delay = slow._emulated_delay("read", remote=not P_LOCR.reader_local)
        assert write_delay > 0
        assert read_delay > 0

        result = slow.run(P_LOCR)
        assert result.ok
        iterations = slow.spec.iterations
        # Each writer thread sleeps write_delay per iteration sequentially;
        # readers add read_delay per consumed version on the critical path.
        assert result.makespan_seconds >= iterations * write_delay

    def test_negative_time_scale_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            self.make(time_scale=-1)
