"""Unit tests for repro.units."""

import pytest

from repro.units import (
    GB,
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    parse_size,
)


class TestConstants:
    def test_binary_ladder(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_decimal_vs_binary(self):
        assert GB == 10**9
        assert GiB == 2**30
        assert GiB > GB


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512 B"

    def test_kib(self):
        assert fmt_bytes(2048) == "2.0 KiB"

    def test_mib(self):
        assert fmt_bytes(64 * MiB) == "64.0 MiB"

    def test_gib(self):
        assert fmt_bytes(1 * GiB) == "1.0 GiB"

    def test_negative(self):
        assert fmt_bytes(-2048) == "-2.0 KiB"

    def test_zero(self):
        assert fmt_bytes(0) == "0 B"


class TestFmtRate:
    def test_gbps(self):
        assert fmt_rate(13.9 * GB) == "13.90 GB/s"

    def test_sub_gb(self):
        assert fmt_rate(0.5 * GB) == "0.50 GB/s"


class TestFmtTime:
    def test_seconds(self):
        assert fmt_time(2.5) == "2.5 s"

    def test_millis(self):
        assert fmt_time(0.25) == "250.0 ms"

    def test_micros(self):
        assert fmt_time(3.8e-6) == "3.8 us"

    def test_nanos(self):
        assert fmt_time(90e-9) == "90.0 ns"

    def test_zero(self):
        assert fmt_time(0) == "0 s"

    def test_negative(self):
        assert fmt_time(-0.25) == "-250.0 ms"

    def test_sub_nano(self):
        assert fmt_time(0.5e-9).endswith("ns")


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64MB", 64 * MiB),
            ("2 KB", 2 * KiB),
            ("2KiB", 2 * KiB),
            ("1GB", GiB),
            ("4096", 4096),
            ("0.5 MB", 512 * KiB),
            ("229mb", 229 * MiB),
            ("1tb", 1024 * GiB),
            ("16B", 16),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_size(text) == expected

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            parse_size("not-a-size")
