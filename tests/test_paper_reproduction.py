"""Integration tests: the paper's evaluation, reproduced end to end.

These tests pin the headline results: the optimal configuration per figure
panel (§VI, Figs. 4-9), the quantified gaps, and the §VII/§VIII summary
observations.  They run against the session-scoped oracle reports (all 18
workflows x 4 configurations).

One documented deviation: miniAMR+MatrixMult at 16 ranks (Fig. 9b) — our
simulation prefers P-LocR while the paper reports S-LocW; the paper's pick
lands within ~10 % of our simulated best.  See EXPERIMENTS.md.
"""

import pytest

from repro.metrics.analysis import gap_between

#: Panels whose paper-reported winner our simulation reproduces exactly.
EXACT_PANELS = [
    ("micro-64mb", 8),
    ("micro-64mb", 16),
    ("micro-64mb", 24),
    ("micro-2k", 8),
    ("micro-2k", 16),
    ("micro-2k", 24),
    ("gtc+readonly", 8),
    ("gtc+readonly", 16),
    ("gtc+readonly", 24),
    ("gtc+matmult", 8),
    ("gtc+matmult", 16),
    ("gtc+matmult", 24),
    ("miniamr+readonly", 8),
    ("miniamr+readonly", 16),
    ("miniamr+readonly", 24),
    ("miniamr+matmult", 8),
    ("miniamr+matmult", 24),
]

#: Known near-miss panels: the paper's pick must at least be close to the
#: simulated best (fractional regret bound).
NEAR_MISS_PANELS = {("miniamr+matmult", 16): 0.15}


class TestWinners:
    @pytest.mark.parametrize("key", EXACT_PANELS, ids=lambda k: f"{k[0]}@{k[1]}")
    def test_paper_winner_reproduced(self, key, suite_reports, suite_by_key):
        report = suite_reports[key]
        assert report.comparison.best_label == suite_by_key[key].paper_best

    @pytest.mark.parametrize(
        "key", sorted(NEAR_MISS_PANELS), ids=lambda k: f"{k[0]}@{k[1]}"
    )
    def test_near_miss_within_bound(self, key, suite_reports, suite_by_key):
        report = suite_reports[key]
        paper_pick = suite_by_key[key].paper_best
        regret = report.comparison.normalized[paper_pick] - 1.0
        assert regret <= NEAR_MISS_PANELS[key]

    def test_all_four_configs_win_somewhere(self, suite_reports):
        """§VII: no single optimal configuration."""
        winners = {r.comparison.best_label for r in suite_reports.values()}
        assert winners == {"S-LocW", "S-LocR", "P-LocW", "P-LocR"}


class TestQuantifiedGaps:
    """The paper's numeric statements, checked for direction and rough size."""

    def test_fig4_serial_locw_dominates_at_scale(self, suite_reports):
        """§VI-A: S-LocW up to 2.5x better than other scenarios (16/24)."""
        for ranks in (16, 24):
            normalized = suite_reports[("micro-64mb", ranks)].comparison.normalized
            assert max(normalized.values()) >= 1.5

    def test_fig5_parallel_gain_at_low_concurrency(self, suite_reports):
        """§VI-D: P-LocR 10-14 % faster than S-LocR at 8 threads."""
        gap = gap_between(
            suite_reports[("micro-2k", 8)].results, "P-LocR", "S-LocR"
        )
        assert 0.03 <= gap <= 0.30

    def test_fig5c_serial_beats_parallel_at_24(self, suite_reports):
        """§VI-B: S-LocR 11.5 % faster than parallel at 24 threads."""
        results = suite_reports[("micro-2k", 24)].results
        best_parallel = min(results["P-LocW"].makespan, results["P-LocR"].makespan)
        assert best_parallel / results["S-LocR"].makespan - 1.0 >= 0.10

    def test_fig6b_serial_beats_parallel_at_16(self, suite_reports):
        """§VI-B: S-LocR 6-7 % faster than parallel for GTC+RO at 16."""
        results = suite_reports[("gtc+readonly", 16)].results
        best_parallel = min(results["P-LocW"].makespan, results["P-LocR"].makespan)
        gap = best_parallel / results["S-LocR"].makespan - 1.0
        assert 0.01 <= gap <= 0.20

    def test_fig6c_locw_gain_at_24(self, suite_reports):
        """§VI-A: S-LocW ~6 % faster than S-LocR for GTC at 24."""
        gap = gap_between(
            suite_reports[("gtc+readonly", 24)].results, "S-LocW", "S-LocR"
        )
        assert 0.02 <= gap <= 0.15

    def test_fig7_parallel_gain(self, suite_reports):
        """§VI-D: GTC+MM parallel 3-9 % faster than serial at 8/16 (we allow
        a wider band: the gain depends on how much analytics is hidden)."""
        for ranks in (8, 16):
            results = suite_reports[("gtc+matmult", ranks)].results
            best_serial = min(results["S-LocW"].makespan, results["S-LocR"].makespan)
            gap = best_serial / results["P-LocR"].makespan - 1.0
            assert gap >= 0.03

    def test_fig8c_locw_gain_at_24(self, suite_reports):
        """§VI-A: S-LocW 25 % faster than S-LocR for miniAMR+RO at 24."""
        gap = gap_between(
            suite_reports[("miniamr+readonly", 24)].results, "S-LocW", "S-LocR"
        )
        assert 0.12 <= gap <= 0.40

    def test_fig9a_locw_gain_at_8(self, suite_reports):
        """§VI-C: P-LocW better than P-LocR for miniAMR+MM at 8."""
        gap = gap_between(
            suite_reports[("miniamr+matmult", 8)].results, "P-LocW", "P-LocR"
        )
        assert gap > 0.0

    def test_headline_improvement(self, suite_reports):
        """§I: up to ~69 % end-to-end improvement from configuration choice."""
        improvement = max(
            1.0 - min(r.comparison.makespans().values()) / max(r.comparison.makespans().values())
            for r in suite_reports.values()
        )
        assert improvement >= 0.5

    def test_fig10_miniamr_misconfiguration(self, suite_reports):
        """§VII: miniAMR misconfiguration costs up to ~70 %."""
        worst = max(
            max(suite_reports[(family, ranks)].comparison.normalized.values())
            for family in ("miniamr+readonly", "miniamr+matmult")
            for ranks in (8, 16, 24)
        )
        assert worst - 1.0 >= 0.5

    def test_fig10_gtc_analytics_swap(self, suite_reports):
        """§VII: keeping GTC+RO's config for GTC+MM at 16 loses ~24 %."""
        ro_best = suite_reports[("gtc+readonly", 16)].comparison.best_label
        loss = (
            suite_reports[("gtc+matmult", 16)].comparison.normalized[ro_best] - 1.0
        )
        assert loss >= 0.08


class TestSummaryObservations:
    def test_serial_wins_at_high_concurrency(self, suite_reports):
        """§VIII: high-concurrency workflows should run serially."""
        for family in (
            "micro-64mb",
            "micro-2k",
            "gtc+readonly",
            "gtc+matmult",
            "miniamr+readonly",
            "miniamr+matmult",
        ):
            winner = suite_reports[(family, 24)].comparison.best_label
            assert winner.startswith("S"), family

    def test_parallel_wins_at_low_concurrency_with_compute(self, suite_reports):
        """§VIII: low-concurrency workflows with compute phases or software
        overhead benefit from parallel execution."""
        for family in (
            "micro-2k",
            "gtc+readonly",
            "gtc+matmult",
            "miniamr+readonly",
            "miniamr+matmult",
        ):
            winner = suite_reports[(family, 8)].comparison.best_label
            assert winner.startswith("P"), family

    def test_bandwidth_bound_prefers_local_writes(self, suite_reports):
        """§VIII: bandwidth-constrained workflows prioritize writes."""
        assert suite_reports[("micro-64mb", 24)].comparison.best_label.endswith("LocW")
        assert suite_reports[("miniamr+readonly", 24)].comparison.best_label.endswith(
            "LocW"
        )

    def test_unconstrained_prefers_local_reads(self, suite_reports):
        """§VIII: when bandwidth is not the bottleneck, prioritize reads."""
        assert suite_reports[("micro-2k", 24)].comparison.best_label.endswith("LocR")
        assert suite_reports[("gtc+readonly", 16)].comparison.best_label.endswith(
            "LocR"
        )

    def test_interleaved_compute_enables_parallel(self, suite_reports):
        """§VIII: GTC's interleaved compute permits parallel execution at a
        concurrency where the pure-I/O 64 MB workflow must run serially."""
        assert suite_reports[("gtc+matmult", 16)].comparison.best_label.startswith("P")
        assert suite_reports[("micro-64mb", 16)].comparison.best_label.startswith("S")
