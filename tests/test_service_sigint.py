"""SIGINT graceful drain: running cells finish, nothing lost, final flush."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.telemetry import validate_snapshot
from repro.service.queue import (
    STATE_DONE,
    STATE_QUEUED,
    STATE_RUNNING,
    JobQueue,
)
from repro.service.scheduler import ServiceScheduler
from repro.service.telemetry import TELEMETRY_FILENAME

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal semantics required"
)


def _wait_for_running(root, proc, timeout=30.0):
    """Poll the queue log until some job reaches ``running``."""
    deadline = time.time() + timeout
    queue = JobQueue(root)
    while time.time() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                "service exited before any job started running:\n"
                + proc.stderr.read()
            )
        try:
            jobs = queue.load()
        except Exception:
            jobs = []  # mid-append partial line; retry
        if any(job.state == STATE_RUNNING for job in jobs):
            return
        time.sleep(0.02)
    raise AssertionError("no job reached running before the timeout")


def test_sigint_drains_without_losing_or_duplicating_jobs(tmp_path):
    root = str(tmp_path / "svc")
    # Longer cells widen the drain window: the signal reliably lands
    # while the first cell is still simulating.
    submitted = ServiceScheduler(root=root).submit_suite(
        suite="micro", iterations=6
    )
    assert len(submitted) == 2

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "run",
            "--dir", root, "--backoff", "0",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        _wait_for_running(root, proc)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    # One Ctrl-C means drain, not crash: the pass still exits cleanly.
    assert proc.returncode == 0, stderr
    assert "drain requested" in stderr

    queue = JobQueue(root)
    jobs = queue.load()
    # No job lost, none duplicated, none stuck in running.
    assert len(jobs) == 2
    assert len({job.job_id for job in jobs}) == 2
    assert {job.job_id for job in jobs} == {
        job.job_id for job in submitted
    }
    states = {job.job_id: job.state for job in jobs}
    assert set(states.values()) <= {STATE_DONE, STATE_QUEUED}
    # Drained jobs went back to queued with their retry budget intact.
    for job in jobs:
        if job.state == STATE_QUEUED:
            assert job.attempts == 0
            assert job.detail == {"reason": "drained"}
    assert "drained early" in stdout

    # The final telemetry snapshot flushed on the way out.
    snapshot_path = os.path.join(root, TELEMETRY_FILENAME)
    assert os.path.exists(snapshot_path)
    with open(snapshot_path, "r", encoding="utf-8") as handle:
        snapshots = [json.loads(line) for line in handle if line.strip()]
    assert snapshots
    final = snapshots[-1]
    assert final["final"] is True
    assert validate_snapshot(final) == []
    assert final["report"]["drained"] is True
