"""Integration tests for the workflow runner (DES execution semantics)."""

import pytest

from repro.core.configs import ALL_CONFIGS, P_LOCR, P_LOCW, S_LOCR, S_LOCW
from repro.errors import PlacementError, ValidationError
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.storage.objects import SnapshotSpec
from repro.units import GiB, KiB, MiB
from repro.workflow.iteration import component_iteration_profile
from repro.workflow.kernels import FixedWorkKernel
from repro.workflow.runner import probe_component, run_workflow
from repro.workflow.spec import WorkflowSpec


def micro_spec(ranks=4, iterations=3, object_bytes=16 * MiB, objects=4, **kw):
    return WorkflowSpec(
        name=f"t@{ranks}",
        ranks=ranks,
        iterations=iterations,
        snapshot=SnapshotSpec(object_bytes=object_bytes, objects_per_snapshot=objects),
        **kw,
    )


class TestRunSemantics:
    def test_deterministic(self):
        spec = micro_spec()
        a = run_workflow(spec, S_LOCW)
        b = run_workflow(spec, S_LOCW)
        assert a.makespan == b.makespan

    def test_serial_reader_starts_after_writer_finishes(self):
        result = run_workflow(micro_spec(), S_LOCW)
        assert result.is_serial
        assert result.reader_span[0] >= result.writer_span[1] - 1e-9

    def test_parallel_overlaps(self):
        result = run_workflow(micro_spec(), P_LOCW)
        assert result.reader_span[0] < result.writer_span[1]
        assert not result.is_serial

    def test_makespan_covers_both_components(self):
        result = run_workflow(micro_spec(), P_LOCR)
        assert result.makespan >= result.writer_span[1] - 1e-9
        assert result.makespan >= result.reader_span[1] - 1e-9

    def test_bytes_moved_match_spec(self):
        spec = micro_spec(ranks=4, iterations=3)
        result = run_workflow(spec, S_LOCR)
        assert result.bytes_written == pytest.approx(spec.total_data_bytes())
        assert result.bytes_read == pytest.approx(spec.total_data_bytes())

    def test_reader_cannot_outrun_writer(self):
        """In parallel mode every read of version v starts after v's publish."""
        spec = micro_spec(sim_compute=FixedWorkKernel(0.5))
        result = run_workflow(spec, P_LOCR, trace=True)
        publishes = {}
        for record in result.tracer.records:
            if record.component == "writer" and record.phase == "write":
                publishes[(record.rank, record.iteration)] = record.end
        for record in result.tracer.records:
            if record.component == "reader" and record.phase == "read":
                key = (record.rank, record.iteration)
                assert record.start >= publishes[key] - 1e-9

    def test_trace_disabled_by_default(self):
        assert run_workflow(micro_spec(), S_LOCW).tracer is None

    def test_oversubscription_raises(self):
        # Pre-run validation rejects it with a structured diagnostic.
        with pytest.raises(ValidationError) as excinfo:
            run_workflow(micro_spec(ranks=40), S_LOCW)
        assert "SPEC204" in excinfo.value.codes

    def test_oversubscription_raises_unvalidated(self):
        # With validation off, the core pool itself is the backstop.
        with pytest.raises(PlacementError):
            run_workflow(micro_spec(ranks=40), S_LOCW, validate=False)

    def test_compute_jitter_zero_is_lockstep(self):
        spec = micro_spec(sim_compute=FixedWorkKernel(1.0))
        result = run_workflow(spec, S_LOCW, compute_jitter=0.0, trace=True)
        compute_records = [
            r
            for r in result.tracer.records
            if r.component == "writer" and r.phase == "compute" and r.iteration == 0
        ]
        durations = {round(r.duration, 12) for r in compute_records}
        assert durations == {1.0}

    def test_compute_jitter_is_mean_preserving_spread(self):
        spec = micro_spec(ranks=5, sim_compute=FixedWorkKernel(1.0))
        result = run_workflow(spec, S_LOCW, compute_jitter=0.1, trace=True)
        compute_records = [
            r
            for r in result.tracer.records
            if r.component == "writer" and r.phase == "compute" and r.iteration == 0
        ]
        durations = sorted(r.duration for r in compute_records)
        assert durations[0] == pytest.approx(0.9)
        assert durations[-1] == pytest.approx(1.1)
        assert sum(durations) / len(durations) == pytest.approx(1.0)


class TestPlacementSemantics:
    def test_locw_vs_locr_differ(self):
        spec = micro_spec(ranks=8, object_bytes=64 * MiB, objects=8)
        locw = run_workflow(spec, S_LOCW)
        locr = run_workflow(spec, S_LOCR)
        assert locw.makespan != pytest.approx(locr.makespan, rel=1e-3)

    def test_disabled_remote_penalty_equalizes_placements(self):
        cal = DEFAULT_CALIBRATION.replace(enable_remote_penalty=False)
        spec = micro_spec(ranks=8, object_bytes=64 * MiB, objects=8)
        locw = run_workflow(spec, S_LOCW, cal=cal)
        locr = run_workflow(spec, S_LOCR, cal=cal)
        # NVStream's software remote multipliers remain for reads, so allow
        # a small residual gap.
        assert locw.makespan == pytest.approx(locr.makespan, rel=0.02)

    def test_serial_split_bars(self):
        result = run_workflow(micro_spec(), S_LOCW)
        writer_bar, reader_bar = result.split_bar()
        assert writer_bar > 0 and reader_bar > 0
        assert writer_bar + reader_bar == pytest.approx(result.makespan, rel=0.05)


class TestAgainstAnalyticProfile:
    def test_probe_matches_closed_form_writer(self):
        """The DES standalone run agrees with the analytic fixed point."""
        spec = micro_spec(ranks=8, iterations=5, object_bytes=64 * MiB, objects=8)
        probe = probe_component(spec, "simulation")
        profile = component_iteration_profile(spec.writer)
        expected = spec.iterations * profile.io_seconds
        assert probe.writer_phases.io == pytest.approx(expected, rel=0.05)

    def test_probe_matches_closed_form_reader(self):
        spec = micro_spec(ranks=8, iterations=5, object_bytes=64 * MiB, objects=8)
        probe = probe_component(spec, "analytics")
        profile = component_iteration_profile(spec.reader)
        expected = spec.iterations * profile.io_seconds
        assert probe.reader_phases.io == pytest.approx(expected, rel=0.05)

    def test_probe_small_objects_agreement(self):
        spec = micro_spec(ranks=8, iterations=3, object_bytes=2 * KiB, objects=65536)
        probe = probe_component(spec, "simulation")
        profile = component_iteration_profile(spec.writer)
        assert probe.writer_phases.io == pytest.approx(
            spec.iterations * profile.io_seconds, rel=0.08
        )

    def test_probe_invalid_role(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            probe_component(micro_spec(), "observer")


class TestAllConfigsRun:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.label)
    def test_every_config_executes(self, config):
        result = run_workflow(micro_spec(), config)
        assert result.makespan > 0
        assert result.config_label == config.label
