"""Wall-clock telemetry core: instruments, exposition, spans, traces."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs.export import validate_chrome_trace
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    SpanRecorder,
    TelemetryRegistry,
    WallHistogram,
    WallSpan,
    mint_trace_id,
    prometheus_exposition,
    service_chrome_trace,
    validate_exposition,
    validate_snapshot,
)


class FakeClock:
    """A controllable wall clock so telemetry tests are deterministic."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds
        return self.now


# ----------------------------------------------------------------------
# Trace ids.
# ----------------------------------------------------------------------
def test_mint_trace_id_is_pure_and_distinct():
    assert mint_trace_id("job-0001") == mint_trace_id("job-0001")
    assert mint_trace_id("job-0001") != mint_trace_id("job-0002")
    assert len(mint_trace_id("job-0001")) == 16
    int(mint_trace_id("job-0001"), 16)  # hex


# ----------------------------------------------------------------------
# Instruments.
# ----------------------------------------------------------------------
def test_counter_monotonic_and_rejects_negative():
    registry = TelemetryRegistry(clock=FakeClock())
    counter = registry.counter("repro_test_total", "help text")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(SimulationError):
        counter.inc(-1.0)
    # Same (name, labels) -> the same instrument object.
    assert registry.counter("repro_test_total") is counter
    assert registry.counter("repro_test_total", state="done") is not counter


def test_gauge_set_inc_dec():
    registry = TelemetryRegistry(clock=FakeClock())
    gauge = registry.gauge("repro_depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value == 6.0


def test_invalid_metric_and_label_names_rejected():
    registry = TelemetryRegistry(clock=FakeClock())
    with pytest.raises(SimulationError):
        registry.counter("bad name")
    with pytest.raises(SimulationError):
        registry.counter("repro_ok_total", **{"0bad": "x"})


def test_histogram_quantile_interpolates_linearly():
    histogram = WallHistogram("repro_latency_seconds", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 1.5, 1.5):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.cumulative() == [
        (1.0, 1),
        (2.0, 4),
        (float("inf"), 4),
    ]
    # Target rank 2 falls in the (1.0, 2.0] bucket holding 3 samples:
    # interpolate 1/3 of the way through it.
    assert histogram.quantile(0.5) == pytest.approx(1.0 + 1.0 / 3.0)
    assert histogram.quantile(1.0) == pytest.approx(2.0)


def test_histogram_empty_and_overflow():
    histogram = WallHistogram("repro_latency_seconds", buckets=(1.0, 2.0))
    assert histogram.quantile(0.5) == 0.0
    histogram.observe(50.0)  # lands in the +Inf overflow bucket
    assert histogram.cumulative()[-1] == (float("inf"), 1)
    # The histogram cannot resolve past its largest finite bound.
    assert histogram.quantile(0.99) == 2.0
    data = histogram.as_dict()
    assert data["count"] == 1
    assert data["buckets"][-1] == [2.0, 0]
    assert "p99" in data


def test_histogram_rejects_empty_and_duplicate_buckets():
    with pytest.raises(SimulationError):
        WallHistogram("repro_x_seconds", buckets=())
    with pytest.raises(SimulationError):
        WallHistogram("repro_x_seconds", buckets=(1.0, 1.0))


# ----------------------------------------------------------------------
# Registry snapshots + the snapshot validator.
# ----------------------------------------------------------------------
def test_snapshot_shape_and_validation():
    clock = FakeClock()
    registry = TelemetryRegistry(clock=clock)
    registry.counter("repro_jobs_total").inc(3)
    registry.gauge("repro_depth").set(2)
    registry.histogram("repro_wait_seconds", buckets=(0.1, 1.0)).observe(0.05)
    clock.advance(7.0)
    snapshot = registry.snapshot(extra={"round": 1}, final=True)
    assert snapshot["record"] == "telemetry_snapshot"
    assert snapshot["schema_version"] == TELEMETRY_SCHEMA_VERSION
    assert snapshot["uptime_seconds"] == pytest.approx(7.0)
    assert snapshot["final"] is True
    assert snapshot["round"] == 1
    assert validate_snapshot(snapshot) == []
    # Snapshots survive a JSON round trip (what telemetry.jsonl holds).
    assert validate_snapshot(json.loads(json.dumps(snapshot))) == []


def test_validate_snapshot_catches_tampering():
    registry = TelemetryRegistry(clock=FakeClock())
    registry.histogram("repro_wait_seconds", buckets=(0.1, 1.0)).observe(0.5)
    snapshot = registry.snapshot()
    snapshot["histograms"][0]["buckets"] = [[1.0, 2], [0.1, 1]]
    assert any(
        "not increasing" in problem for problem in validate_snapshot(snapshot)
    )
    assert validate_snapshot({"record": "wrong"})
    assert validate_snapshot([]) == ["snapshot: not a JSON object"]


def test_disabled_registry_is_inert():
    registry = TelemetryRegistry(enabled=False)
    counter = registry.counter("repro_jobs_total")
    counter.inc(5)
    assert counter.value == 0.0
    assert registry.instruments() == []
    snapshot = registry.snapshot()
    assert snapshot["counters"] == []
    assert snapshot["at"] == 0.0
    assert validate_snapshot(snapshot) == []


# ----------------------------------------------------------------------
# Prometheus exposition + its validator.
# ----------------------------------------------------------------------
def test_exposition_round_trip_validates():
    registry = TelemetryRegistry(clock=FakeClock())
    registry.counter("repro_jobs_total", "Jobs.", state="done").inc(2)
    registry.counter("repro_jobs_total", "Jobs.", state="failed").inc()
    registry.gauge("repro_depth", "Depth.").set(4)
    histogram = registry.histogram(
        "repro_wait_seconds", "Waits.", buckets=(0.1, 1.0)
    )
    histogram.observe(0.05)
    histogram.observe(5.0)
    text = prometheus_exposition(registry.snapshot())
    assert validate_exposition(text) == []
    lines = text.splitlines()
    assert "# TYPE repro_jobs_total counter" in lines
    # One TYPE header even with two labelled series.
    assert lines.count("# TYPE repro_jobs_total counter") == 1
    assert 'repro_jobs_total{state="done"} 2' in lines
    assert 'repro_wait_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_wait_seconds_bucket{le="+Inf"} 2' in lines
    assert "repro_wait_seconds_count 2" in lines


def test_validate_exposition_catches_format_errors():
    assert any(
        "no preceding TYPE" in problem
        for problem in validate_exposition("repro_x_total 1\n")
    )
    bad_hist = (
        "# TYPE repro_w_seconds histogram\n"
        'repro_w_seconds_bucket{le="1"} 3\n'
        'repro_w_seconds_bucket{le="2"} 2\n'
        'repro_w_seconds_bucket{le="+Inf"} 3\n'
        "repro_w_seconds_sum 1\n"
        "repro_w_seconds_count 4\n"
    )
    problems = validate_exposition(bad_hist)
    assert any("not cumulative" in problem for problem in problems)
    assert any("_count" in problem for problem in problems)
    no_inf = (
        "# TYPE repro_w_seconds histogram\n"
        'repro_w_seconds_bucket{le="1"} 3\n'
    )
    assert any(
        "+Inf" in problem for problem in validate_exposition(no_inf)
    )
    assert validate_exposition("") == []


# ----------------------------------------------------------------------
# Spans.
# ----------------------------------------------------------------------
def test_span_recorder_records_marks_and_context_blocks():
    clock = FakeClock()
    recorder = SpanRecorder(clock=clock, os_pid=42)
    trace = mint_trace_id("job-0001")
    recorder.mark(trace, "submit", parent_id=f"{trace}/root", job_id="job-0001")
    with recorder.span(trace, "worker", span_id=f"{trace}/worker.0") as attrs:
        clock.advance(2.0)
        attrs["status"] = "ok"
    spans = recorder.spans
    assert [span.name for span in spans] == ["submit", "worker"]
    assert spans[0].duration == 0.0
    assert spans[1].duration == pytest.approx(2.0)
    assert spans[1].span_id == f"{trace}/worker.0"
    assert spans[1].attrs == {"status": "ok"}
    assert spans[0].span_id == f"{trace}/p42.1"
    assert recorder.by_trace() == {trace: spans}


def test_span_record_round_trip_and_cross_process_stitch():
    clock = FakeClock()
    parent = SpanRecorder(clock=clock, os_pid=1)
    worker = SpanRecorder(clock=clock, os_pid=99)
    trace = mint_trace_id("job-0002")
    worker.record(trace, "simulate", 1000.0, 1001.5, run_id="r1")
    records = [span.as_record() for span in worker.spans]
    # Serialize across the process boundary and stitch back in.
    parent.extend(json.loads(json.dumps(records)))
    stitched = parent.spans[0]
    assert stitched.os_pid == 99
    assert stitched.attrs == {"run_id": "r1"}
    assert WallSpan.from_record(stitched.as_record()) == stitched


def test_disabled_recorder_swallows_everything():
    recorder = SpanRecorder(enabled=False)
    assert recorder.mark("t", "x") is None
    with recorder.span("t", "y") as attrs:
        attrs["ignored"] = True
    recorder.extend([{"trace_id": "t", "span_id": "s", "name": "z",
                      "start": 0.0, "end": 1.0}])
    assert recorder.spans == []


# ----------------------------------------------------------------------
# The stitched Chrome trace.
# ----------------------------------------------------------------------
def _job_trace(trace_id, start):
    """One synthetic job: 10 s wall window, 5 s-makespan simulated run."""
    return {
        "trace_id": trace_id,
        "label": f"job {trace_id}",
        "wall_spans": [
            {
                "trace_id": trace_id,
                "span_id": f"{trace_id}/root",
                "parent_id": None,
                "name": "job",
                "start": start,
                "end": start + 10.0,
                "os_pid": 1,
                "attrs": {"state": "done"},
            },
            {
                "trace_id": trace_id,
                "span_id": f"{trace_id}/worker.0",
                "parent_id": f"{trace_id}/root",
                "name": "worker",
                "start": start + 1.0,
                "end": start + 9.0,
                "os_pid": 1,
                "attrs": {},
            },
        ],
        "sim_runs": [
            {
                "run_id": "r1",
                "makespan": 5.0,
                "start": start + 2.0,
                "end": start + 8.0,
                "spans": [
                    {
                        "name": "run", "category": "run", "component": "run",
                        "rank": 0, "start": 0.0, "end": 5.0, "duration": 5.0,
                    },
                    {
                        "name": "write", "category": "phase",
                        "component": "writer", "rank": 0,
                        "start": 1.0, "end": 3.0, "duration": 2.0,
                        "iteration": 0,
                    },
                ],
            }
        ],
    }


def test_service_chrome_trace_rescales_sim_into_wall_window():
    t0 = 5000.0
    trace_a = mint_trace_id("job-a")
    document = service_chrome_trace([_job_trace(trace_a, t0)])
    assert validate_chrome_trace(document) == []
    events = document["traceEvents"]
    service = [e for e in events if e.get("cat") == "service"]
    sim = [e for e in events if str(e.get("cat", "")).startswith("sim-")]
    # run/rank category spans are dropped; the phase span survives.
    assert [e["name"] for e in sim] == ["write"]
    assert all(e["tid"] == 0 for e in service)
    assert sim[0]["tid"] != 0
    # 6 s wall window over a 5 s makespan -> scale 1.2; virtual 1.0..3.0
    # lands at wall 2.0 + 1.2 .. 2.0 + 3.6 relative to the job start.
    assert sim[0]["ts"] == pytest.approx((2.0 + 1.2) / 1e-6)
    assert sim[0]["dur"] == pytest.approx(2.4 / 1e-6)
    assert sim[0]["args"]["trace_id"] == trace_a
    # The sim span nests inside the worker's wall window.
    worker = next(e for e in service if e["name"] == "worker")
    assert worker["ts"] <= sim[0]["ts"]
    assert sim[0]["ts"] + sim[0]["dur"] <= worker["ts"] + worker["dur"] + 1e-6
    meta = document["repro"]
    assert meta["runs"] == []
    assert meta["service"]["epoch_origin"] == t0
    assert meta["service"]["jobs"][0]["sim_spans"] == 1


def test_service_chrome_trace_orders_jobs_by_trace_id():
    traces = [
        _job_trace(mint_trace_id("job-b"), 6000.0),
        _job_trace(mint_trace_id("job-a"), 5000.0),
    ]
    document = service_chrome_trace(traces)
    assert validate_chrome_trace(document) == []
    jobs = document["repro"]["service"]["jobs"]
    assert [job["pid"] for job in jobs] == [1, 2]
    assert jobs[0]["trace_id"] == min(t["trace_id"] for t in traces)
    # Earliest wall span anchors the timeline at ts == 0.
    assert document["repro"]["service"]["epoch_origin"] == 5000.0
    service_ts = [
        e["ts"] for e in document["traceEvents"] if e.get("cat") == "service"
    ]
    assert min(service_ts) == 0.0


def test_service_chrome_trace_empty():
    document = service_chrome_trace([])
    assert validate_chrome_trace(document) == []
    assert document["traceEvents"] == []
    assert document["repro"]["service"]["jobs"] == []


# ----------------------------------------------------------------------
# Quantile edge cases: bucket boundaries, empty, single-sample.
# ----------------------------------------------------------------------
def test_histogram_quantile_at_exact_bucket_boundary():
    histogram = WallHistogram("repro_latency_seconds", buckets=(1.0, 2.0, 4.0))
    # An observation equal to a bound lands in that bucket (le semantics).
    for value in (1.0, 2.0, 4.0, 4.0):
        histogram.observe(value)
    assert histogram.cumulative() == [
        (1.0, 1),
        (2.0, 2),
        (4.0, 4),
        (float("inf"), 4),
    ]
    # Target ranks that coincide with a cumulative count hit the bucket's
    # upper bound exactly — no interpolation drift across the boundary.
    assert histogram.quantile(0.25) == pytest.approx(1.0)
    assert histogram.quantile(0.5) == pytest.approx(2.0)
    assert histogram.quantile(1.0) == pytest.approx(4.0)
    # Just past a boundary rank the estimate moves into the next bucket.
    assert 2.0 < histogram.quantile(0.75) < 4.0


def test_histogram_quantile_empty_is_zero_for_all_q():
    histogram = WallHistogram("repro_latency_seconds", buckets=(1.0,))
    for q in (0.0, 0.5, 0.95, 1.0):
        assert histogram.quantile(q) == 0.0
    data = histogram.as_dict()
    assert data["count"] == 0
    assert data["p99"] == 0.0


def test_histogram_quantile_single_sample():
    histogram = WallHistogram("repro_latency_seconds", buckets=(1.0, 2.0))
    histogram.observe(1.5)
    # One sample in (1.0, 2.0]: q=0 collapses to the empty first bucket's
    # bound (the occupied bucket's lower edge), q in between interpolates
    # linearly, and q=1 reaches the upper bound.
    assert histogram.quantile(0.0) == pytest.approx(1.0)
    assert histogram.quantile(0.5) == pytest.approx(1.5)
    assert histogram.quantile(1.0) == pytest.approx(2.0)


def test_histogram_quantile_single_sample_first_bucket():
    histogram = WallHistogram("repro_latency_seconds", buckets=(1.0, 2.0))
    histogram.observe(0.25)
    # The first bucket interpolates from an implicit lower bound of 0.
    assert histogram.quantile(0.5) == pytest.approx(0.5)
    assert histogram.quantile(1.0) == pytest.approx(1.0)


def test_histogram_quantile_zero_q_returns_lower_edge():
    histogram = WallHistogram("repro_latency_seconds", buckets=(1.0, 2.0))
    for value in (1.5, 1.6):
        histogram.observe(value)
    # q=0 targets rank 0: the first non-empty bucket's lower edge.
    assert histogram.quantile(0.0) == pytest.approx(1.0)
