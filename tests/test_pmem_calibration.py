"""Unit tests for the Optane calibration constants."""

import dataclasses

import pytest

from repro.errors import CalibrationError
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration
from repro.units import GB, KiB, NANOSECOND


class TestDefaults:
    def test_default_validates(self):
        DEFAULT_CALIBRATION.validate()

    def test_paper_bandwidth_anchors(self):
        """§II-B: 39.4 GB/s local read, 13.9 GB/s local write peaks."""
        assert DEFAULT_CALIBRATION.local_read_peak == pytest.approx(39.4 * GB)
        assert DEFAULT_CALIBRATION.local_write_peak == pytest.approx(13.9 * GB)

    def test_paper_latency_anchors(self):
        """§II-B: 90 ns idle write, 169 ns idle read."""
        assert DEFAULT_CALIBRATION.write_latency_local == pytest.approx(90 * NANOSECOND)
        assert DEFAULT_CALIBRATION.read_latency_local == pytest.approx(169 * NANOSECOND)

    def test_interleave_geometry(self):
        """§II-B: 4 KB chunks across 6 DIMMs = 24 KB stripes."""
        assert DEFAULT_CALIBRATION.interleave_chunk == 4 * KiB
        assert DEFAULT_CALIBRATION.dimms_per_socket == 6
        assert DEFAULT_CALIBRATION.stripe_bytes == 24 * KiB

    def test_read_favoured_device(self):
        assert DEFAULT_CALIBRATION.local_read_peak > DEFAULT_CALIBRATION.local_write_peak

    def test_single_thread_rates_reasonable(self):
        """Single-thread rates in the 4-8 GB/s window reported by FAST20."""
        assert 4 * GB < DEFAULT_CALIBRATION.single_thread_read() < 9 * GB
        assert 4 * GB < DEFAULT_CALIBRATION.single_thread_write() < 9 * GB

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CALIBRATION.local_read_peak = 0  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("local_write_peak", -1.0),
            ("read_ramp_scale", 0.0),
            ("write_ramp_scale", -2.0),
            ("remote_write_collapse_n0", 0.0),
            ("remote_write_knee", -1.0),
            ("upi_bandwidth", 0.0),
            ("write_decay", -0.1),
            ("remote_read_slope", -0.1),
            ("mix_gamma_read", -0.5),
            ("mix_gamma_write", -0.5),
            ("dimm_contention_factor", 0.0),
            ("dimm_contention_factor", 1.5),
            ("remote_write_floor", 0.0),
            ("remote_write_floor", 1.5),
            ("interleave_chunk", 0),
            ("read_latency_local", -1e-9),
            ("poll_interference_weight", -0.1),
        ],
    )
    def test_invalid_field_rejected(self, field, value):
        with pytest.raises(CalibrationError):
            DEFAULT_CALIBRATION.replace(**{field: value})

    def test_write_peak_above_read_peak_rejected(self):
        with pytest.raises(CalibrationError):
            DEFAULT_CALIBRATION.replace(local_write_peak=50 * GB)

    def test_remote_latency_below_local_rejected(self):
        with pytest.raises(CalibrationError):
            DEFAULT_CALIBRATION.replace(read_latency_remote=10 * NANOSECOND)

    def test_replace_returns_new_validated_instance(self):
        variant = DEFAULT_CALIBRATION.replace(local_read_peak=40 * GB)
        assert variant.local_read_peak == 40 * GB
        assert DEFAULT_CALIBRATION.local_read_peak == pytest.approx(39.4 * GB)

    def test_ablation_toggles_validate(self):
        variant = DEFAULT_CALIBRATION.replace(
            enable_mix_interference=False,
            enable_remote_penalty=False,
            enable_size_effects=False,
        )
        variant.validate()
