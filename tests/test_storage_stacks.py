"""Unit tests for the NOVAfs / NVStream cost models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.pmem.calibration import DEFAULT_CALIBRATION
from repro.storage import NVStream, NovaFS, stack_by_name
from repro.storage.base import OpProfile
from repro.units import KiB, MiB

CAL = DEFAULT_CALIBRATION
op_sizes = st.floats(min_value=64, max_value=256 * MiB)


class TestStackRegistry:
    def test_by_name(self):
        assert stack_by_name("nvstream").name == "nvstream"
        assert stack_by_name("novafs").name == "novafs"
        assert stack_by_name("NOVA").name == "novafs"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown storage stack"):
            stack_by_name("ext4")


class TestOpProfile:
    def test_negative_software_rejected(self):
        with pytest.raises(StorageError):
            OpProfile(software_seconds=-1.0)

    def test_amplification_below_one_rejected(self):
        with pytest.raises(StorageError):
            OpProfile(software_seconds=0.0, amplification=0.9)


class TestNVStream:
    def test_write_costs_more_software_than_read(self):
        stack = NVStream()
        write = stack.op_profile("write", 2 * KiB, remote=False)
        read = stack.op_profile("read", 2 * KiB, remote=False)
        assert write.software_seconds > read.software_seconds

    def test_remote_reads_expensive_remote_writes_posted(self):
        """§VI-B: remote reads wait for data; writes are fire-and-forget."""
        stack = NVStream()
        read_ratio = (
            stack.op_profile("read", 2 * KiB, True).software_seconds
            / stack.op_profile("read", 2 * KiB, False).software_seconds
        )
        write_ratio = (
            stack.op_profile("write", 2 * KiB, True).software_seconds
            / stack.op_profile("write", 2 * KiB, False).software_seconds
        )
        assert read_ratio > 1.5
        assert write_ratio == pytest.approx(1.0, abs=0.05)

    def test_write_amplification_shrinks_with_object_size(self):
        stack = NVStream()
        small = stack.amplification("write", 2 * KiB, False)
        large = stack.amplification("write", 64 * MiB, False)
        assert small > large
        assert large == pytest.approx(1.0, abs=1e-4)

    def test_coalescing_to_stripe(self):
        """Small sequential log appends present stripe-sized device accesses."""
        stack = NVStream()
        assert stack.device_access_bytes("write", 2 * KiB) == 24 * 1024
        assert stack.device_access_bytes("write", 64 * MiB) == 64 * MiB

    def test_self_cap_scales_with_object_size(self):
        stack = NVStream()
        small = stack.self_cap(CAL, "write", 2 * KiB, False)
        large = stack.self_cap(CAL, "write", 64 * MiB, False)
        assert large > small * 100

    def test_invalid_kind_rejected(self):
        with pytest.raises(StorageError):
            NVStream().op_profile("append", 2 * KiB, False)

    def test_non_positive_op_bytes_rejected(self):
        with pytest.raises(StorageError):
            NVStream().self_cap(CAL, "write", 0, False)


class TestNovaFS:
    def test_costs_more_than_nvstream(self):
        """§V: filesystems pay syscall + journaling costs per operation."""
        nova, nvs = NovaFS(), NVStream()
        for kind in ("read", "write"):
            assert (
                nova.op_profile(kind, 2 * KiB, False).software_seconds
                > nvs.op_profile(kind, 2 * KiB, False).software_seconds
            )

    def test_no_coalescing(self):
        """Block-granular filesystem: the device sees object granularity."""
        assert NovaFS().device_access_bytes("write", 2 * KiB) == 2 * KiB

    def test_higher_metadata_amplification(self):
        assert NovaFS().amplification("write", 2 * KiB, False) > NVStream().amplification(
            "write", 2 * KiB, False
        )

    def test_remote_multipliers(self):
        stack = NovaFS()
        assert stack.op_profile("read", 2 * KiB, True).software_seconds > (
            stack.op_profile("read", 2 * KiB, False).software_seconds
        )

    def test_snapshot_overhead_positive(self):
        assert NovaFS().snapshot_overhead("write", 1000) > 0


class TestSelfCapProperties:
    @given(op=op_sizes, kind=st.sampled_from(["read", "write"]), remote=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_property_self_cap_positive_finite(self, op, kind, remote):
        for stack in (NVStream(), NovaFS()):
            cap = stack.self_cap(CAL, kind, op, remote)
            assert cap > 0
            assert math.isfinite(cap)

    @given(op=op_sizes, kind=st.sampled_from(["read", "write"]))
    @settings(max_examples=60, deadline=None)
    def test_property_remote_never_faster(self, op, kind):
        for stack in (NVStream(), NovaFS()):
            local = stack.self_cap(CAL, kind, op, remote=False)
            remote = stack.self_cap(CAL, kind, op, remote=True)
            assert remote <= local * (1 + 1e-9)

    @given(op=op_sizes)
    @settings(max_examples=40, deadline=None)
    def test_property_amplification_at_least_one(self, op):
        for stack in (NVStream(), NovaFS()):
            for kind in ("read", "write"):
                assert stack.amplification(kind, op, False) >= 1.0
