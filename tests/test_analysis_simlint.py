"""Per-rule tests for the simlint AST pass.

Every rule code gets at least one positive fixture (a snippet that must
trigger it) and one negative fixture (a close-but-legal snippet that must
not).  Snippets are linted under a pretend module path so zone handling is
exercised too.
"""

import textwrap

import pytest

from repro.analysis.diagnostics import DiagnosticSink, Severity
from repro.analysis.rules import all_rules, get_rule, resolve_codes
from repro.analysis.simlint import lint_source


def lint(code, module="repro.sim.fixture", path="src/repro/sim/fixture.py"):
    return lint_source(textwrap.dedent(code), path=path, module=module)


def codes(code, module="repro.sim.fixture", path="src/repro/sim/fixture.py"):
    return [d.code for d in lint(code, module=module, path=path)]


class TestSIM100Syntax:
    def test_unparsable_file_reports_sim100(self):
        assert codes("def broken(:\n    pass") == ["SIM100"]


class TestSIM101WallClock:
    def test_time_time_flagged(self):
        assert "SIM101" in codes("import time\nstamp = time.time()")

    def test_time_monotonic_flagged(self):
        assert "SIM101" in codes("import time\nstamp = time.monotonic()")

    def test_perf_counter_alias_flagged(self):
        assert "SIM101" in codes(
            "from time import perf_counter as pc\nstamp = pc()"
        )

    def test_datetime_now_flagged(self):
        assert "SIM101" in codes(
            "from datetime import datetime\nstamp = datetime.now()"
        )

    def test_engine_now_not_flagged(self):
        assert codes("def f(engine):\n    return engine.now") == []

    def test_runtime_package_exempt(self):
        snippet = "import time\nstamp = time.time()"
        assert (
            codes(
                snippet,
                module="repro.runtime.fixture",
                path="src/repro/runtime/fixture.py",
            )
            == []
        )


class TestSIM102Random:
    def test_module_level_random_flagged(self):
        assert "SIM102" in codes("import random\nx = random.random()")

    def test_numpy_random_alias_flagged(self):
        assert "SIM102" in codes("import numpy as np\nx = np.random.rand(4)")

    def test_unseeded_constructor_flagged(self):
        assert "SIM102" in codes("import random\nrng = random.Random()")

    def test_seeded_constructor_ok(self):
        assert codes("import random\nrng = random.Random(42)\nx = rng.random()") == []

    def test_seeded_default_rng_ok(self):
        assert (
            codes("import numpy as np\nrng = np.random.default_rng(7)") == []
        )

    def test_unseeded_default_rng_flagged(self):
        assert "SIM102" in codes(
            "import numpy as np\nrng = np.random.default_rng()"
        )


class TestSIM103TimeEquality:
    def test_engine_now_equality_flagged(self):
        assert "SIM103" in codes("def f(engine):\n    return engine.now == 3.5")

    def test_seconds_suffix_inequality_flagged(self):
        assert "SIM103" in codes("def f(a, b):\n    return a.io_seconds != b.io_seconds")

    def test_epsilon_comparison_ok(self):
        snippet = """
        from repro.sim.engine import times_close

        def f(engine):
            return times_close(engine.now, 3.5)
        """
        assert codes(snippet) == []

    def test_ordering_comparisons_ok(self):
        assert codes("def f(engine, t):\n    return engine.now >= t") == []

    def test_integer_sentinel_ok(self):
        # `iteration == 0`-style exact sentinels are fine; so is comparing
        # a time-like name against an int constant (exact by construction).
        assert codes("def f(start):\n    return start == 0") == []


class TestSIM104MutableDefault:
    def test_list_default_flagged(self):
        assert "SIM104" in codes("def f(items=[]):\n    return items")

    def test_dict_call_default_flagged(self):
        assert "SIM104" in codes("def f(table=dict()):\n    return table")

    def test_none_default_ok(self):
        assert codes("def f(items=None):\n    return items or []") == []

    def test_tuple_default_ok(self):
        assert codes("def f(items=()):\n    return items") == []


class TestSIM105BlockingIO:
    def test_open_flagged_in_sim(self):
        assert "SIM105" in codes("def f(p):\n    return open(p).read()")

    def test_sleep_flagged_in_sim(self):
        assert "SIM105" in codes("import time\ndef f():\n    time.sleep(1)")

    def test_socket_flagged_in_sim(self):
        assert "SIM105" in codes("import socket\ns = socket.socket()")

    def test_experiments_zone_may_open_files(self):
        # repro.experiments is outside the blocking zone (report writing is
        # its job) but inside the wall-clock zone.
        snippet = "def f(p):\n    return open(p).read()"
        assert (
            codes(
                snippet,
                module="repro.experiments.fixture",
                path="src/repro/experiments/fixture.py",
            )
            == []
        )


class TestSIM106MagicLiteral:
    def test_power_of_two_int_flagged(self):
        assert "SIM106" in codes("CHUNK = 4096")

    def test_power_of_two_float_flagged(self):
        assert "SIM106" in codes("BUF = 24 * 1024.0")

    def test_pow_expression_flagged(self):
        assert "SIM106" in codes("def f(n):\n    return n / 2**30")

    def test_float_power_of_ten_flagged(self):
        assert "SIM106" in codes("RATE = 3.0 * 1e9")

    def test_integer_count_ok(self):
        # Integer powers of ten are counts (10 million particles), not sizes.
        assert codes("PARTICLES = 10_000_000") == []

    def test_units_constants_ok(self):
        snippet = """
        from repro.units import GiB, KiB

        CHUNK = 4 * KiB
        TOTAL = 3 * GiB
        """
        assert codes(snippet) == []

    def test_units_module_itself_exempt(self):
        assert (
            codes("KiB = 1024", module="repro.units", path="src/repro/units.py")
            == []
        )


class TestSIM108TraceRecordAppend:
    SNIPPET = "def f(tracer, record):\n    tracer.records.append(record)"

    def test_direct_append_flagged(self):
        assert "SIM108" in codes(self.SNIPPET)

    def test_flagged_through_any_receiver(self):
        assert "SIM108" in codes(
            "def f(result, record):\n"
            "    result.tracer.records.append(record)"
        )

    def test_tracer_module_itself_exempt(self):
        assert (
            codes(
                self.SNIPPET,
                module="repro.sim.trace",
                path="src/repro/sim/trace.py",
            )
            == []
        )

    def test_path_prefixed_tracer_module_exempt(self):
        # Linting from the repo root yields path-derived module names.
        assert (
            codes(
                self.SNIPPET,
                module="src.repro.sim.trace",
                path="/somewhere/src/repro/sim/trace.py",
            )
            == []
        )

    def test_obs_package_exempt(self):
        assert (
            codes(
                self.SNIPPET,
                module="repro.obs.spans",
                path="src/repro/obs/spans.py",
            )
            == []
        )

    def test_record_call_not_flagged(self):
        assert (
            codes("def f(tracer):\n    tracer.record('w', 0, 'x', 0.0, 1.0)")
            == []
        )

    def test_other_records_lists_flagged_too(self):
        # Conservative by design: any attribute named `records` is treated
        # as a trace-record list in simulator code.
        assert "SIM108" in codes(
            "def f(self, item):\n    self.records.append(item)"
        )


class TestSIM109StrayHostClock:
    SNIPPET = "import time\ndef f():\n    return time.perf_counter()"

    def test_analysis_zone_flagged(self):
        # The analysis package is SIM101-exempt but still not a sanctioned
        # host-clock reader.
        assert "SIM109" in codes(
            self.SNIPPET,
            module="repro.analysis.fixture",
            path="src/repro/analysis/fixture.py",
        )

    def test_time_time_also_flagged(self):
        assert "SIM109" in codes(
            "import time\nstamp = time.time()",
            module="repro.analysis.fixture",
            path="src/repro/analysis/fixture.py",
        )

    def test_hostmetrics_module_sanctioned(self):
        assert (
            codes(
                self.SNIPPET,
                module="repro.obs.hostmetrics",
                path="src/repro/obs/hostmetrics.py",
            )
            == []
        )

    def test_path_prefixed_hostmetrics_sanctioned(self):
        # Linting from the repo root yields path-derived module names.
        assert (
            codes(
                self.SNIPPET,
                module="src.repro.obs.hostmetrics",
                path="/somewhere/src/repro/obs/hostmetrics.py",
            )
            == []
        )

    def test_runtime_package_sanctioned(self):
        assert (
            codes(
                self.SNIPPET,
                module="repro.runtime.threaded",
                path="src/repro/runtime/threaded.py",
            )
            == []
        )

    def test_other_obs_modules_still_sim101(self):
        # The rest of repro.obs stays in the wall-clock zone: a stray
        # perf_counter in the exporter is SIM101, not SIM109.
        assert "SIM101" in codes(
            self.SNIPPET,
            module="repro.obs.export",
            path="src/repro/obs/export.py",
        )

    def test_service_package_sanctioned(self):
        # The scheduling service reads the host clock legitimately
        # (deadlines, backoff, cache-lookup timing).
        assert (
            codes(
                self.SNIPPET,
                module="repro.service.scheduler",
                path="src/repro/service/scheduler.py",
            )
            == []
        )


class TestSIM110ConcurrencyImport:
    def test_multiprocessing_in_sim_flagged(self):
        assert "SIM110" in codes("import multiprocessing")

    def test_concurrent_futures_from_import_flagged(self):
        assert "SIM110" in codes(
            "from concurrent.futures import ProcessPoolExecutor",
            module="repro.obs.campaign",
            path="src/repro/obs/campaign.py",
        )

    def test_threading_and_signal_flagged(self):
        assert "SIM110" in codes("import threading")
        assert "SIM110" in codes(
            "import signal",
            module="repro.workflow.runner",
            path="src/repro/workflow/runner.py",
        )

    def test_aliased_import_still_flagged(self):
        assert "SIM110" in codes("import multiprocessing as mp")

    def test_service_package_sanctioned(self):
        assert (
            codes(
                "from concurrent.futures import ProcessPoolExecutor\nimport signal",
                module="repro.service.pool",
                path="src/repro/service/pool.py",
            )
            == []
        )

    def test_runtime_package_sanctioned(self):
        assert (
            codes(
                "import threading",
                module="repro.runtime.threaded",
                path="src/repro/runtime/threaded.py",
            )
            == []
        )

    def test_similarly_named_modules_not_flagged(self):
        # Only the concurrency roots count — not arbitrary modules that
        # merely start with the same letters.
        assert (
            codes("import signals_toolkit\nfrom concurrency import x") == []
        )


class TestSIM111HotpathAllocation:
    def test_dict_literal_in_marked_loop_flagged(self):
        assert "SIM111" in codes(
            """
            def solve(flows):  # simlint: hotpath
                for f in flows:
                    state = {}
            """
        )

    def test_dict_call_and_resource_load_flagged(self):
        snippet = """
            def solve(flows):  # simlint: hotpath
                while flows:
                    a = dict()
                    b = ResourceLoad()
        """
        assert codes(snippet).count("SIM111") == 2

    def test_dict_comprehension_inside_loop_flagged(self):
        assert "SIM111" in codes(
            """
            def solve(flows):  # simlint: hotpath
                for f in flows:
                    loads = {r: 0.0 for r in f.resources}
            """
        )

    def test_setup_allocation_outside_loop_not_flagged(self):
        assert (
            codes(
                """
                def solve(flows):  # simlint: hotpath
                    loads = {r: ResourceLoad() for f in flows for r in f.resources}
                    for f in flows:
                        loads[f].reset()
                """
            )
            == []
        )

    def test_unmarked_function_not_flagged(self):
        assert (
            codes(
                """
                def setup(flows):
                    for f in flows:
                        state = {}
                """
            )
            == []
        )

    def test_marker_must_be_in_a_comment(self):
        assert (
            codes(
                """
                def solve(flows):
                    marker = "simlint: hotpath"
                    for f in flows:
                        state = {}
                """
            )
            == []
        )

    def test_other_calls_in_marked_loop_not_flagged(self):
        assert (
            codes(
                """
                def solve(flows):  # simlint: hotpath
                    for f in flows:
                        f.rate = compute(f)
                """
            )
            == []
        )

    def test_nested_function_in_marked_body_flagged(self):
        assert "SIM111" in codes(
            """
            def outer():
                def solve(flows):  # simlint: hotpath
                    for f in flows:
                        return ResourceLoad()
            """
        )

    def test_noqa_suppresses(self):
        assert (
            codes(
                """
                def solve(flows):  # simlint: hotpath
                    for f in flows:
                        state = {}  # noqa: SIM111
                """
            )
            == []
        )

    def test_numpy_allocators_flagged_in_hotpath_loop(self):
        snippet = """
            import numpy as np

            def solve(classes):  # simlint: hotpath
                for _ in range(24):
                    rates = np.zeros(len(classes))
                    scratch = np.empty_like(rates)
        """
        assert codes(snippet).count("SIM111") == 2

    def test_numpy_from_import_resolved(self):
        assert "SIM111" in codes(
            """
            from numpy import zeros

            def solve(classes):  # simlint: hotpath
                while classes:
                    buf = zeros(8)
            """
        )

    def test_numpy_allocation_outside_loop_not_flagged(self):
        assert (
            codes(
                """
                import numpy as np

                def solve(classes):  # simlint: hotpath
                    rates = np.zeros(len(classes))
                    for _ in range(24):
                        rates.fill(0.0)
                """
            )
            == []
        )

    def test_unresolved_zeros_method_not_flagged(self):
        # A ``zeros`` attribute on some other object is not numpy; only
        # resolved dotted origins match the numpy allocator list.
        assert (
            codes(
                """
                def solve(pool):  # simlint: hotpath
                    for _ in range(24):
                        buf = pool.zeros(8)
                """
            )
            == []
        )


class TestSuppression:
    def test_noqa_with_code_suppresses(self):
        assert codes("CHUNK = 4096  # noqa: SIM106") == []

    def test_noqa_bare_suppresses(self):
        assert codes("CHUNK = 4096  # noqa") == []

    def test_noqa_other_code_keeps_finding(self):
        assert codes("CHUNK = 4096  # noqa: SIM101") == ["SIM106"]


class TestRegistryAndFiltering:
    def test_every_sim_rule_has_a_registry_entry(self):
        for code in (
            "SIM100",
            "SIM101",
            "SIM102",
            "SIM103",
            "SIM104",
            "SIM105",
            "SIM106",
            "SIM108",
            "SIM109",
            "SIM110",
        ):
            rule = get_rule(code)
            assert rule.code == code
            assert rule.severity is Severity.ERROR

    def test_rule_codes_unique_and_sorted(self):
        listed = [r.code for r in all_rules()]
        assert listed == sorted(set(listed))

    def test_resolve_codes_expands_prefixes(self):
        resolved = resolve_codes(["SIM10"])
        assert "SIM101" in resolved and "SPEC201" not in resolved

    def test_resolve_codes_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_codes(["NOPE999"])

    def test_select_filter_applied_through_sink(self):
        sink = DiagnosticSink(select=resolve_codes(["SIM101"]))
        lint_source(
            "import time\nx = time.time()\nCHUNK = 4096",
            path="src/repro/sim/fixture.py",
            sink=sink,
        )
        assert [d.code for d in sink.diagnostics] == ["SIM101"]

    def test_ignore_filter_applied_through_sink(self):
        sink = DiagnosticSink(ignore=frozenset({"SIM106"}))
        lint_source(
            "import time\nx = time.time()\nCHUNK = 4096",
            path="src/repro/sim/fixture.py",
            sink=sink,
        )
        assert [d.code for d in sink.diagnostics] == ["SIM101"]
