"""Unit tests for workflow feature extraction."""

import pytest

from repro.apps.gtc import gtc_workflow
from repro.apps.microbench import micro_workflow
from repro.apps.miniamr import miniamr_workflow
from repro.apps.analytics import (
    gtc_matrixmult_kernel,
    miniamr_matrixmult_kernel,
    read_only_kernel,
)
from repro.apps.miniamr import MINIAMR_OBJECTS_PER_RANK
from repro.core.features import (
    ConcurrencyClass,
    IntensityClass,
    SizeClass,
    classify_compute,
    classify_concurrency,
    classify_io,
    classify_size,
    extract_features,
)
from repro.units import KiB, MiB


class TestClassifiers:
    @pytest.mark.parametrize(
        "ranks,expected",
        [
            (4, ConcurrencyClass.LOW),
            (8, ConcurrencyClass.LOW),
            (12, ConcurrencyClass.MEDIUM),
            (16, ConcurrencyClass.MEDIUM),
            (24, ConcurrencyClass.HIGH),
        ],
    )
    def test_concurrency(self, ranks, expected):
        assert classify_concurrency(ranks) is expected

    def test_size(self):
        assert classify_size(2 * KiB) is SizeClass.SMALL
        assert classify_size(4608) is SizeClass.SMALL
        assert classify_size(64 * MiB) is SizeClass.LARGE
        assert classify_size(229 * MiB) is SizeClass.LARGE

    def test_compute(self):
        assert classify_compute(0.0, 1.0) is IntensityClass.NIL
        assert classify_compute(0.1, 1.0) is IntensityClass.LOW
        assert classify_compute(2.0, 1.0) is IntensityClass.HIGH

    def test_io(self):
        assert classify_io(0.9) is IntensityClass.HIGH
        assert classify_io(0.3) is IntensityClass.MEDIUM
        assert classify_io(0.1) is IntensityClass.LOW


class TestExtractedFeatures:
    def test_micro_is_pure_io(self):
        features = extract_features(micro_workflow(64 * MiB, 16))
        assert features.sim_compute_class is IntensityClass.NIL
        assert features.analytics_compute_class is IntensityClass.NIL
        assert features.sim_io_index == pytest.approx(1.0)
        assert features.analytics_io_index == pytest.approx(1.0)

    def test_gtc_is_compute_heavy_sim(self):
        """Figure 3: GTC has a low simulation I/O index."""
        features = extract_features(gtc_workflow(read_only_kernel(), ranks=16))
        assert features.sim_compute_class is IntensityClass.HIGH
        assert features.sim_io_index < 0.35
        assert features.object_size is SizeClass.LARGE

    def test_miniamr_is_io_heavy_sim(self):
        """Figure 3: miniAMR has a high simulation I/O index."""
        features = extract_features(miniamr_workflow(read_only_kernel(), ranks=16))
        assert features.sim_write_class is IntensityClass.HIGH
        assert features.sim_io_index > 0.6
        assert features.object_size is SizeClass.SMALL

    def test_matmult_analytics_compute_heavy(self):
        features = extract_features(
            miniamr_workflow(
                miniamr_matrixmult_kernel(MINIAMR_OBJECTS_PER_RANK), ranks=16
            )
        )
        assert features.analytics_compute_class is IntensityClass.HIGH

    def test_gtc_matmult_compute_heavy(self):
        features = extract_features(gtc_workflow(gtc_matrixmult_kernel(), ranks=16))
        assert features.analytics_compute_class is IntensityClass.HIGH

    def test_micro_2k_software_bound(self):
        """§VIII: the 2K workflow's software overhead lowers the effective
        concurrency PMEM sees, so it never becomes write-bound."""
        features = extract_features(micro_workflow(2 * KiB, 24))
        assert not features.write_bandwidth_bound

    def test_micro_64mb_write_bound(self):
        # Utilization is measured against the 13.9 GB/s peak; at 8 ranks the
        # device-bound 64 MB workflow extracts ~95 % of it.
        features = extract_features(micro_workflow(64 * MiB, 8))
        assert features.write_bandwidth_bound
        assert features.write_utilization > 0.9

    def test_remote_profiles_not_faster(self):
        features = extract_features(miniamr_workflow(read_only_kernel(), ranks=24))
        assert (
            features.sim_remote_profile.io_seconds
            >= features.sim_profile.io_seconds
        )
        assert (
            features.analytics_remote_profile.io_seconds
            >= features.analytics_profile.io_seconds
        )

    def test_effective_concurrency_below_raw(self):
        features = extract_features(micro_workflow(2 * KiB, 24))
        assert features.effective_io_concurrency < 2 * 24
