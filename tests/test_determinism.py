"""Determinism regression: identical inputs must yield identical traces.

The simulator's whole value rests on reproducibility — the same spec and
configuration must produce the same event sequence down to the last float,
or results in the paper tables cannot be trusted across reruns.  This test
serializes the full trace (every record, every field, full float precision)
from two independent runs and requires the bytes to match exactly.  This is
also the invariant the SIM1xx lint rules exist to protect: any wall-clock
read, unseeded RNG, or iteration-order leak in the hot path shows up here
as a byte diff.
"""

import json

import pytest

from repro.core.configs import ALL_CONFIGS
from repro.storage.objects import SnapshotSpec
from repro.units import KiB, MiB
from repro.workflow.kernels import FixedWorkKernel
from repro.workflow.runner import run_workflow
from repro.workflow.spec import WorkflowSpec


def serialize_run(result):
    """Byte-exact serialization of everything observable about a run."""
    payload = {
        "workflow": result.workflow_name,
        "config": result.config_label,
        "makespan": result.makespan.hex(),
        "writer_span": [t.hex() for t in result.writer_span],
        "reader_span": [t.hex() for t in result.reader_span],
        "bytes_written": result.bytes_written.hex(),
        "bytes_read": result.bytes_read.hex(),
        "trace": [
            {
                "component": r.component,
                "rank": r.rank,
                "phase": r.phase,
                "start": r.start.hex(),
                "end": r.end.hex(),
                "iteration": r.iteration,
                "detail": sorted(r.detail.items()),
            }
            for r in result.tracer.records
        ],
    }
    return json.dumps(payload, sort_keys=True).encode()


def small_spec():
    return WorkflowSpec(
        name="determinism@4",
        ranks=4,
        iterations=3,
        snapshot=SnapshotSpec(object_bytes=64 * KiB, objects_per_snapshot=16),
        sim_compute=FixedWorkKernel(seconds=0.05),
        analytics_compute=FixedWorkKernel(seconds=0.02),
    )


class TestDeterminism:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.label)
    def test_trace_is_byte_identical_across_runs(self, config):
        first = serialize_run(run_workflow(small_spec(), config, trace=True))
        second = serialize_run(run_workflow(small_spec(), config, trace=True))
        assert first == second

    def test_trace_is_nonempty(self):
        result = run_workflow(small_spec(), ALL_CONFIGS[0], trace=True)
        # Guard against the comparison passing vacuously on empty traces.
        assert len(result.tracer.records) >= small_spec().ranks * 3

    def test_distinct_configs_actually_differ(self):
        # Sanity: the serialization captures enough to tell runs apart.
        big = WorkflowSpec(
            name="determinism-big@4",
            ranks=4,
            iterations=3,
            snapshot=SnapshotSpec(object_bytes=MiB, objects_per_snapshot=64),
        )
        parallel, serial = ALL_CONFIGS[0], ALL_CONFIGS[2]
        assert serialize_run(
            run_workflow(big, parallel, trace=True)
        ) != serialize_run(run_workflow(big, serial, trace=True))
