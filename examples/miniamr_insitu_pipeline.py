#!/usr/bin/env python3
"""miniAMR in situ pipeline: the Figure 1 motivation, end to end.

Runs the miniAMR simulation coupled with two different analytics kernels
(Read-Only and MatrixMult) at 16 ranks, and shows that a configuration
tuned for one workflow loses significantly on the other — the paper's
opening argument for analytics-aware scheduling.

Run:  python examples/miniamr_insitu_pipeline.py
"""

from repro import ExhaustiveTuner, miniamr_matrixmult_kernel, miniamr_workflow, read_only_kernel
from repro.apps.miniamr import MINIAMR_OBJECTS_PER_RANK
from repro.metrics.report import ascii_bar_chart, format_table

RANKS = 16


def main() -> None:
    tuner = ExhaustiveTuner()

    workflows = {
        "miniAMR + Read-Only": miniamr_workflow(read_only_kernel(), ranks=RANKS),
        "miniAMR + MatrixMult": miniamr_workflow(
            miniamr_matrixmult_kernel(MINIAMR_OBJECTS_PER_RANK), ranks=RANKS
        ),
    }

    reports = {}
    for label, spec in workflows.items():
        print(f"{label}: snapshot {spec.snapshot.describe()} per rank/iteration")
        reports[label] = tuner.tune(spec)
        print(
            ascii_bar_chart(
                reports[label].comparison.makespans(),
                title=f"  runtimes at {RANKS} ranks",
            )
        )
        print()

    # Cross-apply each workflow's best configuration to the other.
    ro_label, mm_label = list(workflows)
    ro_best = reports[ro_label].comparison.best_label
    mm_best = reports[mm_label].comparison.best_label
    rows = []
    for label in workflows:
        for config in (ro_best, mm_best):
            normalized = reports[label].comparison.normalized[config]
            rows.append((label, config, f"{normalized:.2f}x"))
    print(
        format_table(
            ["workflow", "configuration", "vs own best"],
            rows,
            title="The Figure 1 motivation: one configuration does not fit both",
        )
    )
    cross = max(
        reports[ro_label].comparison.normalized[mm_best],
        reports[mm_label].comparison.normalized[ro_best],
    )
    print(
        f"\nKeeping the wrong configuration costs up to {cross:.2f}x "
        "(the paper reports 1.4-1.6x)."
    )


if __name__ == "__main__":
    main()
