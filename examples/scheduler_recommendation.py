#!/usr/bin/env python3
"""Bring your own application: scheduling a custom in situ workflow.

Shows the full user-facing path for an application that is *not* part of
the paper's suite: describe your simulation's I/O signature and compute
phase, describe the analytics, and let the library (1) extract the §IV
workflow parameters, (2) recommend a configuration via the Table II rules
or the quantified cost model, and (3) validate against the exhaustive
oracle.

The example models an ocean-circulation code: moderately large (16 MiB)
field slabs, a ~0.8 s timestep, coupled to an eddy-detection analytics pass
that is mildly compute-bound.

Run:  python examples/scheduler_recommendation.py
"""

from repro import (
    ExhaustiveTuner,
    RecommendationEngine,
    SnapshotSpec,
    WorkflowSpec,
    extract_features,
)
from repro.units import MiB
from repro.workflow.kernels import FixedWorkKernel


def main() -> None:
    spec = WorkflowSpec(
        name="ocean+eddies@16",
        ranks=16,
        iterations=10,
        # Each rank writes 24 field slabs of 16 MiB per timestep.
        snapshot=SnapshotSpec(object_bytes=16 * MiB, objects_per_snapshot=24),
        sim_compute=FixedWorkKernel(seconds=0.8),
        analytics_compute=FixedWorkKernel(seconds=0.35),
        stack_name="nvstream",
    )

    features = extract_features(spec)
    print(f"Workflow {spec.name}:")
    print(f"  simulation I/O index: {features.sim_io_index:.2f}")
    print(f"  analytics I/O index:  {features.analytics_io_index:.2f}")
    print(f"  object size class:    {features.object_size.value}")
    print(f"  concurrency class:    {features.concurrency.value}")
    print(f"  write-bandwidth bound: {features.write_bandwidth_bound}")
    print()

    for strategy in ("hybrid", "model"):
        engine = RecommendationEngine(strategy=strategy)
        recommendation = engine.recommend(spec)
        print(f"[{strategy:6s}] -> {recommendation.config}")
        print(f"         {recommendation.reason}")
    print()

    report = ExhaustiveTuner().tune(spec)
    print("Oracle (simulating all four configurations):")
    for label, makespan in report.comparison.ranked():
        marker = " <- best" if label == report.comparison.best_label else ""
        print(f"  {label}: {makespan:8.2f} s{marker}")

    recommendation = RecommendationEngine().recommend(spec)
    print(
        f"\nFollowing the recommendation costs "
        f"{report.regret_of(recommendation.config):.1%} vs the oracle."
    )


if __name__ == "__main__":
    main()
