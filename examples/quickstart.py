#!/usr/bin/env python3
"""Quickstart: schedule one in situ workflow on a PMEM node.

Builds the paper's GTC + Read-Only workflow at 16 ranks, asks the scheduler
for a placement/mode recommendation, runs the workflow under every Table I
configuration on the simulated dual-socket Optane testbed, and shows how
close the recommendation came to the oracle.

Run:  python examples/quickstart.py
"""

from repro import (
    ALL_CONFIGS,
    ExhaustiveTuner,
    WorkflowScheduler,
    gtc_workflow,
    run_workflow,
)
from repro.metrics.report import ascii_bar_chart


def main() -> None:
    spec = gtc_workflow(ranks=16)
    print(f"Workflow: {spec.name}")
    print(f"  snapshot per rank/iteration: {spec.snapshot.describe()}")
    print(f"  total data streamed: {spec.total_data_bytes() / 2**30:.0f} GiB\n")

    # 1. Static recommendation (no simulation needed).
    scheduler = WorkflowScheduler()
    recommendation = scheduler.recommend(spec)
    print(f"Recommended configuration: {recommendation.config}")
    print(f"  strategy: {recommendation.strategy}")
    print(f"  reason:   {recommendation.reason}\n")

    # 2. Run all four configurations and compare.
    makespans = {}
    for config in ALL_CONFIGS:
        result = run_workflow(spec, config)
        makespans[config.label] = result.makespan
    print(ascii_bar_chart(makespans, title="End-to-end runtime per configuration"))

    # 3. Regret of the recommendation vs the oracle.
    report = ExhaustiveTuner().tune(spec)
    regret = report.regret_of(recommendation.config)
    print(
        f"\nOracle best: {report.best_config} "
        f"({report.best_result.makespan:.2f} s); "
        f"recommendation regret: {regret:.1%}"
    )


if __name__ == "__main__":
    main()
