#!/usr/bin/env python3
"""Real execution: an actual NumPy producer/consumer pair, orchestrated.

Everything in the other examples runs in virtual time.  This demo executes
a *real* coupled pipeline with the threaded runtime: writer threads produce
NumPy field snapshots, reader threads consume them through the versioned
in-memory channel (with ring back-pressure), under both serial and parallel
execution modes.  With device emulation on, the modelled Optane transfer
times are replayed (scaled 200x faster) so the serial/parallel and
local/remote contrasts are visible in wall-clock time.

Run:  python examples/threaded_runtime_demo.py
"""

import numpy as np

from repro import ALL_CONFIGS, SnapshotSpec, WorkflowSpec
from repro.runtime import ThreadedWorkflow
from repro.units import MiB

RANKS = 4
ITERATIONS = 5
FIELD_CELLS = 64 * 1024  # 512 KiB of float64 per object


def writer_fn(rank: int, iteration: int):
    """Produce this rank's snapshot: a noisy travelling wave field."""
    x = np.linspace(0.0, 2 * np.pi, FIELD_CELLS)
    field = np.sin(x + 0.3 * iteration + rank) + 0.01 * np.cos(5 * x)
    return field


def reader_fn(rank: int, iteration: int, field: np.ndarray):
    """Analytics: spectral energy in the lowest modes (a real FFT)."""
    spectrum = np.abs(np.fft.rfft(field)[:8])
    return float(spectrum.sum())


def main() -> None:
    spec = WorkflowSpec(
        name=f"wave+spectra@{RANKS}",
        ranks=RANKS,
        iterations=ITERATIONS,
        snapshot=SnapshotSpec(object_bytes=int(0.5 * MiB), objects_per_snapshot=1),
    )

    print(f"Running {spec.name}: {RANKS} writer + {RANKS} reader threads, "
          f"{ITERATIONS} iterations of real NumPy work\n")

    workflow = ThreadedWorkflow(
        spec,
        writer_fn,
        reader_fn,
        emulate_device=True,
        time_scale=0.005,  # replay modelled PMEM timing 200x faster
    )
    for config in ALL_CONFIGS:
        result = workflow.run(config)
        status = "ok" if result.ok else f"FAILED ({result.errors[0]})"
        print(
            f"{config.label}: makespan {result.makespan_seconds * 1000:7.1f} ms "
            f"(writers {result.writer_seconds * 1000:6.1f} ms)  [{status}]"
        )

    # Show one analytics output to prove real data flowed end to end.
    sample = result.reader_outputs[(0, ITERATIONS - 1)]
    print(f"\nSample analytics output (rank 0, last iteration): "
          f"low-mode spectral energy = {sample:.1f}")
    print("Serial configurations should show a longer makespan than the "
          "parallel ones here: with only 4 ranks the modelled device is "
          "uncontended, so overlap wins — exactly the paper's low-concurrency "
          "recommendation.")


if __name__ == "__main__":
    main()
