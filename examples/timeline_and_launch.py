#!/usr/bin/env python3
"""From decision to deployment: timelines and launch scripts.

Takes one workflow, renders the simulated execution as a per-rank ASCII
Gantt under serial and parallel modes (so the scheduling structure is
visible: lockstep write bursts vs interleaved bands), then emits the shell
launch script a job system would run to realize the recommended
configuration on a real dual-socket PMEM node.

Run:  python examples/timeline_and_launch.py
"""

from repro import SnapshotSpec, WorkflowScheduler, WorkflowSpec, paper_testbed, run_workflow
from repro.core import render_launch_plan
from repro.core.configs import P_LOCR, S_LOCW
from repro.core.pinning import plan_pinning
from repro.metrics import render_timeline
from repro.units import MiB
from repro.workflow.kernels import FixedWorkKernel


def main() -> None:
    spec = WorkflowSpec(
        name="demo@4",
        ranks=4,
        iterations=3,
        snapshot=SnapshotSpec(object_bytes=64 * MiB, objects_per_snapshot=4),
        sim_compute=FixedWorkKernel(0.25),
        analytics_compute=FixedWorkKernel(0.10),
    )

    for config in (S_LOCW, P_LOCR):
        result = run_workflow(spec, config, trace=True)
        print(f"--- {config.label}: makespan {result.makespan:.2f} s ---")
        print(render_timeline(result.tracer, width=88))
        print()

    scheduler = WorkflowScheduler()
    recommendation = scheduler.recommend(spec)
    plan = plan_pinning(spec, recommendation.config, paper_testbed())
    launch = render_launch_plan(
        spec,
        recommendation.config,
        plan,
        simulation_binary="./demo_sim",
        analytics_binary="./demo_analytics",
    )
    print(f"Recommended: {recommendation.config} — generated launch script:\n")
    print(launch.as_script())


if __name__ == "__main__":
    main()
