#!/usr/bin/env python3
"""GTC in situ pipeline: how the optimal configuration shifts with scale.

Reproduces the §VI story for the fusion particle-in-cell code: at 8 ranks
the long compute phase hides I/O and parallel execution wins; at 16 ranks
serial local-read wins; at 24 ranks remote writes begin to dominate and
serial local-write wins.  Also prints the concrete core-pinning plan a
launcher would apply for the chosen configuration.

Run:  python examples/gtc_insitu_pipeline.py
"""

from repro import (
    ExhaustiveTuner,
    WorkflowScheduler,
    extract_features,
    gtc_matrixmult_kernel,
    gtc_workflow,
    paper_testbed,
    read_only_kernel,
)
from repro.core.pinning import plan_pinning
from repro.metrics.report import format_table


def main() -> None:
    scheduler = WorkflowScheduler()
    tuner = ExhaustiveTuner()

    rows = []
    for analytics, label in (
        (read_only_kernel(), "Read-Only"),
        (gtc_matrixmult_kernel(), "MatrixMult"),
    ):
        for ranks in (8, 16, 24):
            spec = gtc_workflow(analytics, ranks=ranks)
            features = extract_features(spec)
            recommendation = scheduler.recommend(spec)
            report = tuner.tune(spec)
            rows.append(
                (
                    f"GTC + {label} @ {ranks}",
                    f"{features.sim_io_index:.2f}",
                    f"{features.analytics_io_index:.2f}",
                    recommendation.config.label,
                    report.best_config.label,
                    f"{report.regret_of(recommendation.config):.1%}",
                )
            )
    print(
        format_table(
            ["workflow", "sim I/O idx", "ana I/O idx", "recommended", "oracle", "regret"],
            rows,
            title="GTC workflows: recommendation vs exhaustive oracle",
        )
    )

    # Show the concrete deployment for one case.
    spec = gtc_workflow(read_only_kernel(), ranks=16)
    recommendation = scheduler.recommend(spec)
    plan = plan_pinning(spec, recommendation.config, paper_testbed())
    print(f"\nDeployment plan for {spec.name} under {recommendation.config}:")
    print(f"  simulation ranks -> socket {plan.writer_socket}, cores {list(plan.writer_cores)}")
    print(f"  analytics ranks  -> socket {plan.reader_socket}, cores {list(plan.reader_cores)}")
    print(f"  streaming channel -> PMEM on socket {plan.channel_socket}")
    print(
        "  (equivalent launch: numactl --cpunodebind="
        f"{plan.writer_socket} ./gtc ... | numactl --cpunodebind="
        f"{plan.reader_socket} ./analytics --pmem=/mnt/pmem{plan.channel_socket})"
    )


if __name__ == "__main__":
    main()
