"""repro — PMEM-aware in situ HPC workflow scheduling.

A reproduction of *"Scheduling HPC Workflows with Intel Optane Persistent
Memory"* (Venkatesh, Mason, Fernando, Eisenhauer, Gavrilovska; IPDPS
Workshops 2021) as a production-quality Python library:

* a calibrated fluid-flow simulator of a dual-socket Optane platform
  (:mod:`repro.sim`, :mod:`repro.platform`, :mod:`repro.pmem`);
* models of the NOVAfs and NVStream PMEM software stacks and the versioned
  streaming channel (:mod:`repro.storage`);
* the in situ workflow model and runner (:mod:`repro.workflow`);
* the paper's contribution — the four scheduler configurations, the
  Table II recommendation engine, the quantified §VIII cost model, and the
  end-to-end scheduler (:mod:`repro.core`);
* the 18-workflow evaluation suite (:mod:`repro.apps`) and an experiment
  harness regenerating every figure and table (:mod:`repro.experiments`).

Quickstart::

    from repro import WorkflowScheduler, gtc_workflow

    scheduler = WorkflowScheduler()
    outcome = scheduler.schedule(gtc_workflow(ranks=16), with_oracle=True)
    print(outcome.recommendation.config, outcome.result.makespan, outcome.regret)
"""

from repro.apps import (
    gtc_matrixmult_kernel,
    gtc_workflow,
    micro_workflow,
    miniamr_matrixmult_kernel,
    miniamr_workflow,
    read_only_kernel,
    workflow_suite,
)
from repro.core import (
    ALL_CONFIGS,
    P_LOCR,
    P_LOCW,
    S_LOCR,
    S_LOCW,
    ExecutionMode,
    ExhaustiveTuner,
    Placement,
    RecommendationEngine,
    SchedulerConfig,
    WorkflowScheduler,
    extract_features,
)
from repro.metrics import RunResult, best_config, compare_configs, normalized_runtimes
from repro.platform import Node, paper_testbed
from repro.pmem import DEFAULT_CALIBRATION, OptaneCalibration, OptaneDevice
from repro.storage import NVStream, NovaFS, SnapshotSpec, StreamChannel
from repro.workflow import WorkflowSpec, component_iteration_profile, run_workflow

__version__ = "1.0.0"

__all__ = [
    "ALL_CONFIGS",
    "DEFAULT_CALIBRATION",
    "ExecutionMode",
    "ExhaustiveTuner",
    "NVStream",
    "Node",
    "NovaFS",
    "OptaneCalibration",
    "OptaneDevice",
    "P_LOCR",
    "P_LOCW",
    "Placement",
    "RecommendationEngine",
    "RunResult",
    "S_LOCR",
    "S_LOCW",
    "SchedulerConfig",
    "SnapshotSpec",
    "StreamChannel",
    "WorkflowScheduler",
    "WorkflowSpec",
    "best_config",
    "compare_configs",
    "component_iteration_profile",
    "extract_features",
    "gtc_matrixmult_kernel",
    "gtc_workflow",
    "micro_workflow",
    "miniamr_matrixmult_kernel",
    "miniamr_workflow",
    "normalized_runtimes",
    "paper_testbed",
    "read_only_kernel",
    "run_workflow",
    "workflow_suite",
]
