"""``python -m repro.obs`` — export, summarize, diff and validate traces.

Examples::

    # Run micro-2k@8 under S-LocW and export a Perfetto-loadable trace.
    python -m repro.obs export --config S-LocW --out trace.json

    # All four Table I configurations of one workflow, plus raw dumps.
    python -m repro.obs export --family gtc+readonly --ranks 16 \\
        --config all --out trace.json --spans-out spans.jsonl \\
        --metrics-out metrics.jsonl --manifest-out manifest.json

    # Where did the virtual time go?
    python -m repro.obs summary --config all

    # What changed between two exports (configs, code versions, tables)?
    python -m repro.obs diff before.json after.json

    # Schema-check a trace file (used by CI on its exported artifact).
    python -m repro.obs validate trace.json

    # Campaigns: persistent suite runs, regression diffs, dashboards.
    python -m repro.obs campaign run --suite micro
    python -m repro.obs campaign list
    python -m repro.obs campaign show micro-001
    python -m repro.obs campaign diff micro-001 micro-002 --fail-on flips
    python -m repro.obs campaign report micro-001 --out report.md
    python -m repro.obs campaign validate micro-001

    # Trace analytics: critical path + blame per run, campaign
    # bottleneck ranking, attribution shifts between campaigns.
    python -m repro.obs explain run --family gtc+matmult --config all \\
        --segments --out explain.json
    python -m repro.obs explain top baseline-micro
    python -m repro.obs explain diff baseline-micro ci-run
    python -m repro.obs explain validate explain.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.apps.suite import CONCURRENCY_LEVELS, FAMILIES, suite_entry
from repro.core.configs import ALL_CONFIGS, SchedulerConfig
from repro.obs.capture import Observation, observe_workflow
from repro.obs.export import (
    chrome_trace,
    metrics_records,
    span_records,
    to_json,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.report import diff_report, hot_phase_report, utilization_report
from repro.obs.store import DEFAULT_CAMPAIGN_DIR, CampaignStore
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        default="micro-2k",
        choices=FAMILIES,
        help="workload family (default: micro-2k)",
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=CONCURRENCY_LEVELS[0],
        choices=CONCURRENCY_LEVELS,
        help=f"ranks per component (default: {CONCURRENCY_LEVELS[0]})",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override the family's iteration count (smaller = faster)",
    )
    parser.add_argument(
        "--config",
        default="S-LocW",
        help="Table I label (S-LocW, S-LocR, P-LocW, P-LocR) or 'all'",
    )


def _configs(label: str) -> List[SchedulerConfig]:
    if label.strip().lower() == "all":
        return list(ALL_CONFIGS)
    return [SchedulerConfig.from_label(label)]


def _observe(args: argparse.Namespace) -> List[Observation]:
    spec = suite_entry(args.family, args.ranks).spec
    if args.iterations is not None:
        if args.iterations <= 0:
            raise SystemExit("--iterations must be positive")
        spec = dataclasses.replace(spec, iterations=args.iterations)
    return [observe_workflow(spec, config) for config in _configs(args.config)]


def _write(path: str, payload: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def _cmd_export(args: argparse.Namespace) -> int:
    observations = _observe(args)
    document = chrome_trace(observations)
    _write(args.out, to_json(document))
    print(
        f"wrote {args.out}: {len(document['traceEvents'])} events, "
        f"{len(observations)} run(s)"
    )
    if args.spans_out:
        _write(args.spans_out, to_jsonl(span_records(observations)))
        print(f"wrote {args.spans_out}")
    if args.metrics_out:
        _write(args.metrics_out, to_jsonl(metrics_records(observations)))
        print(f"wrote {args.metrics_out}")
    if args.manifest_out:
        manifests = [obs.manifest.as_dict() for obs in observations]
        _write(args.manifest_out, to_json(manifests))
        print(f"wrote {args.manifest_out}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    observations = _observe(args)
    print(hot_phase_report(observations))
    print()
    print(utilization_report(observations))
    return 0


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_diff(args: argparse.Namespace) -> int:
    print(diff_report(_load(args.trace_a), _load(args.trace_b)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    problems = validate_chrome_trace(_load(args.trace))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(problems)} problem(s))")
        return 1
    print(f"{args.trace}: OK")
    return 0


# ----------------------------------------------------------------------
# Campaign subcommands.
# ----------------------------------------------------------------------
def _calibration(settings: List[str]) -> OptaneCalibration:
    """Apply repeatable ``--cal-set field=value`` overrides."""
    if not settings:
        return DEFAULT_CALIBRATION
    changes = {}
    for setting in settings:
        field, _, value = setting.partition("=")
        if not field or not value:
            raise SystemExit(f"--cal-set wants field=value, got {setting!r}")
        try:
            changes[field] = float(value)
        except ValueError:
            raise SystemExit(f"--cal-set value {value!r} is not a number")
    return DEFAULT_CALIBRATION.replace(**changes)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.obs.campaign import bench_record, campaign_report, run_campaign

    store = CampaignStore(args.dir)
    run = run_campaign(
        suite=args.suite,
        name=args.name,
        store=store,
        configs=_configs(args.config),
        cal=_calibration(args.cal_set),
        iterations=args.iterations,
        profile=args.profile,
        profile_top=args.profile_top,
        jobs=args.jobs,
        progress=print,
    )
    print(f"recorded campaign {run.name!r} in {store.path(run.name)}")
    print()
    print(campaign_report(run, markdown=False))
    if args.bench_out:
        _write(args.bench_out, to_json(bench_record(run)))
        print(f"wrote {args.bench_out}")
    return 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    store = CampaignStore(args.dir)
    names = store.list_campaigns()
    if not names:
        print(f"no campaigns under {store.root!r}")
        return 0
    for name in names:
        stored = store.read(name)
        header = stored.header
        print(
            f"{name}: suite={header.get('suite', '?')} "
            f"cells={len(stored.cells)} "
            f"cal={str(header.get('calibration_sha256', ''))[:12]}"
        )
    return 0


def _cmd_campaign_show(args: argparse.Namespace) -> int:
    from repro.obs.campaign import campaign_from_store, campaign_report

    store = CampaignStore(args.dir)
    run = campaign_from_store(store.read(args.name))
    print(campaign_report(run, markdown=args.markdown))
    return 0


def _cmd_campaign_diff(args: argparse.Namespace) -> int:
    from repro.obs.campaign import campaign_from_store, diff_campaigns

    store = CampaignStore(args.dir)
    run_a = campaign_from_store(store.read(args.campaign_a))
    run_b = campaign_from_store(store.read(args.campaign_b))
    diff = diff_campaigns(run_a, run_b, threshold=args.threshold)
    print(diff.render_markdown() if args.markdown else diff.render_text())
    if args.fail_on == "flips" and diff.winner_flips:
        return 1
    if args.fail_on == "regressions" and diff.regressions:
        return 1
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.obs.campaign import campaign_from_store, campaign_report

    store = CampaignStore(args.dir)
    run = campaign_from_store(store.read(args.name))
    report = campaign_report(run, markdown=True)
    if args.out:
        _write(args.out, report + "\n")
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_campaign_validate(args: argparse.Namespace) -> int:
    store = CampaignStore(args.dir)
    names = args.names or store.list_campaigns()
    failures = 0
    for name in names:
        problems = store.validate(name)
        if problems:
            failures += 1
            for problem in problems:
                print(f"{name}: {problem}", file=sys.stderr)
            print(f"{name}: INVALID ({len(problems)} problem(s))")
        else:
            print(f"{name}: OK")
    return 1 if failures else 0


# ----------------------------------------------------------------------
# Explain subcommands (trace analytics).
# ----------------------------------------------------------------------
def _cmd_explain_run(args: argparse.Namespace) -> int:
    from repro.obs.explain import (
        explain_observation,
        explain_report,
        validate_explain_report,
    )

    explanations = [explain_observation(obs) for obs in _observe(args)]
    if args.format == "json":
        document = explain_report(explanations)
        problems = validate_explain_report(document)
        if problems:  # pragma: no cover - invariant violation
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        payload = to_json(document)
    elif args.format == "markdown":
        payload = "\n".join(e.render_markdown() for e in explanations)
    else:
        payload = "\n".join(
            e.render_text(segments=args.segments) for e in explanations
        )
    if args.out:
        _write(args.out, payload if payload.endswith("\n") else payload + "\n")
        print(f"wrote {args.out}: {len(explanations)} run(s)")
    else:
        print(payload)
    return 0


def _explain_cells(store: CampaignStore, name: str):
    from repro.obs.campaign import campaign_from_store

    return campaign_from_store(store.read(name)).cells


def _cmd_explain_top(args: argparse.Namespace) -> int:
    from repro.obs.explain import campaign_bottlenecks, render_top

    store = CampaignStore(args.dir)
    rows = campaign_bottlenecks(_explain_cells(store, args.name))
    print(render_top(rows, markdown=args.markdown))
    return 0


def _cmd_explain_diff(args: argparse.Namespace) -> int:
    from repro.obs.explain import diff_attribution_rows, render_diff_rows

    store = CampaignStore(args.dir)
    cells_a = {
        cell.key: cell.deterministic.get("configs", {})
        for cell in _explain_cells(store, args.campaign_a)
    }
    cells_b = {
        cell.key: cell.deterministic.get("configs", {})
        for cell in _explain_cells(store, args.campaign_b)
    }
    rows = diff_attribution_rows(cells_a, cells_b)
    print(render_diff_rows(rows, markdown=args.markdown))
    return 0


def _cmd_explain_validate(args: argparse.Namespace) -> int:
    from repro.obs.explain import validate_explain_report

    problems = validate_explain_report(_load(args.report))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.report}: INVALID ({len(problems)} problem(s))")
        return 1
    print(f"{args.report}: OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Export and inspect virtual-time observability data.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    export = commands.add_parser(
        "export", help="run a workflow and export its trace"
    )
    _add_spec_arguments(export)
    export.add_argument(
        "--out", default="trace.json", help="Chrome trace-event JSON path"
    )
    export.add_argument(
        "--spans-out", default=None, help="also dump spans as JSONL"
    )
    export.add_argument(
        "--metrics-out", default=None, help="also dump instruments as JSONL"
    )
    export.add_argument(
        "--manifest-out", default=None, help="also dump run manifests as JSON"
    )
    export.set_defaults(func=_cmd_export)

    summary = commands.add_parser(
        "summary", help="run a workflow and print the hot-phase report"
    )
    _add_spec_arguments(summary)
    summary.set_defaults(func=_cmd_summary)

    diff = commands.add_parser(
        "diff", help="compare two exported trace files"
    )
    diff.add_argument("trace_a")
    diff.add_argument("trace_b")
    diff.set_defaults(func=_cmd_diff)

    validate = commands.add_parser(
        "validate", help="schema-check an exported trace file"
    )
    validate.add_argument("trace")
    validate.set_defaults(func=_cmd_validate)

    campaign = commands.add_parser(
        "campaign", help="persistent campaign store: run, diff, report"
    )
    campaign_commands = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    def _add_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dir",
            default=DEFAULT_CAMPAIGN_DIR,
            help=f"campaign store directory (default: {DEFAULT_CAMPAIGN_DIR})",
        )

    run = campaign_commands.add_parser(
        "run", help="execute a suite and append it to the store"
    )
    _add_dir(run)
    run.add_argument(
        "--suite",
        default="micro",
        help="suite preset: micro (CI-sized) or full (18 workflows)",
    )
    run.add_argument(
        "--name", default=None, help="campaign name (default: <suite>-NNN)"
    )
    run.add_argument(
        "--config",
        default="all",
        help="Table I label or 'all' (default: all four configurations)",
    )
    run.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override every cell's iteration count",
    )
    run.add_argument(
        "--cal-set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a calibration field (repeatable)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each cell and record hotspot tables",
    )
    run.add_argument(
        "--profile-top",
        type=int,
        default=None,
        help="hotspot rows kept per cell (default: 10)",
    )
    run.add_argument(
        "--bench-out",
        default=None,
        help="also write the BENCH_campaign.json host-cost record",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="execute cells in N worker processes (default 1 = serial; "
        "the stored file is byte-identical either way)",
    )
    run.set_defaults(func=_cmd_campaign_run)

    listing = campaign_commands.add_parser(
        "list", help="list campaigns in the store"
    )
    _add_dir(listing)
    listing.set_defaults(func=_cmd_campaign_list)

    show = campaign_commands.add_parser(
        "show", help="print a stored campaign's dashboard"
    )
    _add_dir(show)
    show.add_argument("name")
    show.add_argument(
        "--markdown", action="store_true", help="markdown instead of terminal"
    )
    show.set_defaults(func=_cmd_campaign_show)

    campaign_diff = campaign_commands.add_parser(
        "diff", help="regression-diff two stored campaigns"
    )
    _add_dir(campaign_diff)
    campaign_diff.add_argument("campaign_a")
    campaign_diff.add_argument("campaign_b")
    campaign_diff.add_argument(
        "--threshold",
        type=float,
        default=0.02,
        help="relative makespan drift reported as regression (default: 0.02)",
    )
    campaign_diff.add_argument(
        "--markdown", action="store_true", help="markdown instead of terminal"
    )
    campaign_diff.add_argument(
        "--fail-on",
        choices=("nothing", "flips", "regressions"),
        default="flips",
        help="exit 1 on winner flips (default) or any regression",
    )
    campaign_diff.set_defaults(func=_cmd_campaign_diff)

    campaign_report_cmd = campaign_commands.add_parser(
        "report", help="write a stored campaign's markdown dashboard"
    )
    _add_dir(campaign_report_cmd)
    campaign_report_cmd.add_argument("name")
    campaign_report_cmd.add_argument(
        "--out", default=None, help="write to this path instead of stdout"
    )
    campaign_report_cmd.set_defaults(func=_cmd_campaign_report)

    campaign_validate = campaign_commands.add_parser(
        "validate", help="schema-check stored campaigns"
    )
    _add_dir(campaign_validate)
    campaign_validate.add_argument(
        "names", nargs="*", help="campaign names (default: every campaign)"
    )
    campaign_validate.set_defaults(func=_cmd_campaign_validate)

    explain = commands.add_parser(
        "explain",
        help="trace analytics: critical paths, blame buckets, bottlenecks",
    )
    explain_commands = explain.add_subparsers(
        dest="explain_command", required=True
    )

    explain_run = explain_commands.add_parser(
        "run", help="run a workflow and explain where its makespan went"
    )
    _add_spec_arguments(explain_run)
    explain_run.add_argument(
        "--format",
        choices=("text", "markdown", "json"),
        default="text",
        help="output renderer (default: text)",
    )
    explain_run.add_argument(
        "--segments",
        action="store_true",
        help="also print the critical-path segment chain (text format)",
    )
    explain_run.add_argument(
        "--out", default=None, help="write to this path instead of stdout"
    )
    explain_run.set_defaults(func=_cmd_explain_run)

    explain_top = explain_commands.add_parser(
        "top", help="rank a stored campaign's cells by winner bottleneck"
    )
    _add_dir(explain_top)
    explain_top.add_argument("name")
    explain_top.add_argument(
        "--markdown", action="store_true", help="markdown instead of terminal"
    )
    explain_top.set_defaults(func=_cmd_explain_top)

    explain_diff = explain_commands.add_parser(
        "diff", help="attribution shifts between two stored campaigns"
    )
    _add_dir(explain_diff)
    explain_diff.add_argument("campaign_a")
    explain_diff.add_argument("campaign_b")
    explain_diff.add_argument(
        "--markdown", action="store_true", help="markdown instead of terminal"
    )
    explain_diff.set_defaults(func=_cmd_explain_diff)

    explain_validate = explain_commands.add_parser(
        "validate", help="schema-check an explain report file"
    )
    explain_validate.add_argument("report")
    explain_validate.set_defaults(func=_cmd_explain_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
