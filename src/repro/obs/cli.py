"""``python -m repro.obs`` — export, summarize, diff and validate traces.

Examples::

    # Run micro-2k@8 under S-LocW and export a Perfetto-loadable trace.
    python -m repro.obs export --config S-LocW --out trace.json

    # All four Table I configurations of one workflow, plus raw dumps.
    python -m repro.obs export --family gtc+readonly --ranks 16 \\
        --config all --out trace.json --spans-out spans.jsonl \\
        --metrics-out metrics.jsonl --manifest-out manifest.json

    # Where did the virtual time go?
    python -m repro.obs summary --config all

    # What changed between two exports (configs, code versions, tables)?
    python -m repro.obs diff before.json after.json

    # Schema-check a trace file (used by CI on its exported artifact).
    python -m repro.obs validate trace.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.apps.suite import CONCURRENCY_LEVELS, FAMILIES, suite_entry
from repro.core.configs import ALL_CONFIGS, SchedulerConfig
from repro.obs.capture import Observation, observe_workflow
from repro.obs.export import (
    chrome_trace,
    metrics_records,
    span_records,
    to_json,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.report import diff_report, hot_phase_report


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        default="micro-2k",
        choices=FAMILIES,
        help="workload family (default: micro-2k)",
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=CONCURRENCY_LEVELS[0],
        choices=CONCURRENCY_LEVELS,
        help=f"ranks per component (default: {CONCURRENCY_LEVELS[0]})",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override the family's iteration count (smaller = faster)",
    )
    parser.add_argument(
        "--config",
        default="S-LocW",
        help="Table I label (S-LocW, S-LocR, P-LocW, P-LocR) or 'all'",
    )


def _configs(label: str) -> List[SchedulerConfig]:
    if label.strip().lower() == "all":
        return list(ALL_CONFIGS)
    return [SchedulerConfig.from_label(label)]


def _observe(args: argparse.Namespace) -> List[Observation]:
    spec = suite_entry(args.family, args.ranks).spec
    if args.iterations is not None:
        if args.iterations <= 0:
            raise SystemExit("--iterations must be positive")
        spec = dataclasses.replace(spec, iterations=args.iterations)
    return [observe_workflow(spec, config) for config in _configs(args.config)]


def _write(path: str, payload: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def _cmd_export(args: argparse.Namespace) -> int:
    observations = _observe(args)
    document = chrome_trace(observations)
    _write(args.out, to_json(document))
    print(
        f"wrote {args.out}: {len(document['traceEvents'])} events, "
        f"{len(observations)} run(s)"
    )
    if args.spans_out:
        _write(args.spans_out, to_jsonl(span_records(observations)))
        print(f"wrote {args.spans_out}")
    if args.metrics_out:
        _write(args.metrics_out, to_jsonl(metrics_records(observations)))
        print(f"wrote {args.metrics_out}")
    if args.manifest_out:
        manifests = [obs.manifest.as_dict() for obs in observations]
        _write(args.manifest_out, to_json(manifests))
        print(f"wrote {args.manifest_out}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    observations = _observe(args)
    print(hot_phase_report(observations))
    return 0


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_diff(args: argparse.Namespace) -> int:
    print(diff_report(_load(args.trace_a), _load(args.trace_b)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    problems = validate_chrome_trace(_load(args.trace))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(problems)} problem(s))")
        return 1
    print(f"{args.trace}: OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Export and inspect virtual-time observability data.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    export = commands.add_parser(
        "export", help="run a workflow and export its trace"
    )
    _add_spec_arguments(export)
    export.add_argument(
        "--out", default="trace.json", help="Chrome trace-event JSON path"
    )
    export.add_argument(
        "--spans-out", default=None, help="also dump spans as JSONL"
    )
    export.add_argument(
        "--metrics-out", default=None, help="also dump instruments as JSONL"
    )
    export.add_argument(
        "--manifest-out", default=None, help="also dump run manifests as JSON"
    )
    export.set_defaults(func=_cmd_export)

    summary = commands.add_parser(
        "summary", help="run a workflow and print the hot-phase report"
    )
    _add_spec_arguments(summary)
    summary.set_defaults(func=_cmd_summary)

    diff = commands.add_parser(
        "diff", help="compare two exported trace files"
    )
    diff.add_argument("trace_a")
    diff.add_argument("trace_b")
    diff.set_defaults(func=_cmd_diff)

    validate = commands.add_parser(
        "validate", help="schema-check an exported trace file"
    )
    validate.add_argument("trace")
    validate.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
