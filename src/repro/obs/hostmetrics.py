"""Host-side self-metrics: what a run costs *this* machine.

Everything else in :mod:`repro.obs` is clocked on virtual time and is
byte-identical across reruns; this module is the one sanctioned wall-clock
reader outside :mod:`repro.runtime` (enforced by simlint rule SIM109).  It
measures the simulator itself — wall-clock seconds, peak tracemalloc
bytes, optional cProfile hotspots — and pairs those with the deterministic
work counters the engine and flow network already track (events executed,
rate recomputations, solver iterations), yielding one
:class:`HostMetrics` record per campaign cell.

The record shape is shared between *simulated* cells (discrete-event runs)
and *emulated* cells (:mod:`repro.runtime.threaded` wall-clock runs), so a
campaign store can hold both and a dashboard can compare them in one
table.  The headline derived rate is ``sim_seconds_per_wall_second`` —
how much virtual time the simulator produces per second of host time —
the repo's first recorded performance trajectory (``BENCH_campaign.json``).

Host metrics are *never* part of a deterministic payload: the campaign
store segregates them under a ``"host"`` key that every diff and
byte-identity check ignores.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.capture import Observation
    from repro.runtime.threaded import RealRunResult

#: Hotspot rows kept per profiled cell.
PROFILE_TOP_DEFAULT = 10

#: Record-shape marker for discrete-event (virtual-time) runs.
KIND_SIMULATED = "simulated"

#: Record-shape marker for threaded wall-clock (emulated) runs.
KIND_EMULATED = "emulated"

#: Record-shape marker for service cache hits: nothing was simulated, the
#: wall cost is the cache lookup itself.
KIND_CACHED = "cached"


@dataclass
class Hotspot:
    """One aggregated cProfile row (paths reduced to basenames)."""

    function: str
    calls: int
    tottime: float
    cumtime: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "calls": self.calls,
            "tottime": self.tottime,
            "cumtime": self.cumtime,
        }


@dataclass
class HostMetrics:
    """Host-side cost of one campaign cell (or one emulated run).

    ``wall_seconds`` and ``peak_tracemalloc_bytes`` come from the host
    clock and allocator; the event/recompute/solver counters are
    deterministic simulator totals copied here because they are *cost*
    signals, not results.  The record deliberately mirrors the same keys
    for simulated and emulated runs so both kinds live in one store.
    """

    kind: str
    wall_seconds: float
    simulated_seconds: float = 0.0
    events_executed: float = 0.0
    timers_scheduled: float = 0.0
    flow_recomputes: float = 0.0
    solver_iterations: float = 0.0
    flows_completed: float = 0.0
    #: Solver fast-path accounting (PR-5): equivalence classes solved,
    #: converged-state memo hits/misses, and recompute requests absorbed
    #: by coalescing.  Zero for emulated/cached runs and for the
    #: reference solver.
    solver_classes: float = 0.0
    solver_memo_hits: float = 0.0
    solver_memo_misses: float = 0.0
    recomputes_coalesced: float = 0.0
    #: Incremental-solve accounting (PR-10): connected components whose
    #: cached rates were replayed instead of re-solved, and batched
    #: vectorized fixed-point sweeps run by the numpy backend.
    solver_components_skipped: float = 0.0
    vector_batches: float = 0.0
    peak_tracemalloc_bytes: int = 0
    runs: int = 0
    hotspots: List[Hotspot] = field(default_factory=list)

    @property
    def sim_seconds_per_wall_second(self) -> float:
        """Virtual seconds produced per host second (0 for emulated runs)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulated_seconds / self.wall_seconds

    @property
    def events_per_wall_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_executed / self.wall_seconds

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of memo-eligible solves served from the converged cache."""
        attempts = self.solver_memo_hits + self.solver_memo_misses
        if attempts <= 0:
            return 0.0
        return self.solver_memo_hits / attempts

    def as_record(self) -> Dict[str, Any]:
        """The JSON shape stored under a cell's ``"host"`` key."""
        record: Dict[str, Any] = {
            "kind": self.kind,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "sim_seconds_per_wall_second": self.sim_seconds_per_wall_second,
            "events_executed": self.events_executed,
            "events_per_wall_second": self.events_per_wall_second,
            "timers_scheduled": self.timers_scheduled,
            "flow_recomputes": self.flow_recomputes,
            "solver_iterations": self.solver_iterations,
            "flows_completed": self.flows_completed,
            "solver_classes": self.solver_classes,
            "solver_memo_hits": self.solver_memo_hits,
            "solver_memo_misses": self.solver_memo_misses,
            "memo_hit_rate": self.memo_hit_rate,
            "recomputes_coalesced": self.recomputes_coalesced,
            "solver_components_skipped": self.solver_components_skipped,
            "vector_batches": self.vector_batches,
            "peak_tracemalloc_bytes": self.peak_tracemalloc_bytes,
            "runs": self.runs,
        }
        if self.hotspots:
            record["hotspots"] = [spot.as_dict() for spot in self.hotspots]
        return record


class HostMeter:
    """Context manager measuring the host cost of a block of work.

    Wraps wall clock + tracemalloc (and optionally cProfile) around
    whatever runs inside the ``with`` block::

        with HostMeter(profile=True) as meter:
            observations = [observe_workflow(spec, c) for c in configs]
        metrics = simulated_host_metrics(meter, observations)

    tracemalloc is started only if this meter started it (nesting-safe);
    the reported peak is reset at entry so each cell sees its own
    high-water mark.
    """

    def __init__(self, profile: bool = False, profile_top: int = PROFILE_TOP_DEFAULT):
        self.profile = profile
        self.profile_top = profile_top
        self.wall_seconds: float = 0.0
        self.peak_tracemalloc_bytes: int = 0
        self._profiler: Optional[cProfile.Profile] = None
        self._started_tracemalloc = False
        self._t0: float = 0.0
        self._entered = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "HostMeter":
        if self._entered:
            raise SimulationError("HostMeter is not reentrant")
        self._entered = True
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        tracemalloc.reset_peak()
        if self.profile:
            self._profiler = cProfile.Profile()
            self._profiler.enable()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_seconds = time.perf_counter() - self._t0
        if self._profiler is not None:
            self._profiler.disable()
        _, self.peak_tracemalloc_bytes = tracemalloc.get_traced_memory()
        if self._started_tracemalloc:
            tracemalloc.stop()
        self._entered = False

    # ------------------------------------------------------------------
    def hotspots(self, top: Optional[int] = None) -> List[Hotspot]:
        """Top-N profile rows by cumulative time (empty when not profiling)."""
        if self._profiler is None:
            return []
        stats = pstats.Stats(self._profiler, stream=io.StringIO())
        rows: List[Hotspot] = []
        for (filename, lineno, name), (
            _cc,
            ncalls,
            tottime,
            cumtime,
            _callers,
        ) in stats.stats.items():  # type: ignore[attr-defined]
            rows.append(
                Hotspot(
                    function=_function_label(filename, lineno, name),
                    calls=ncalls,
                    tottime=tottime,
                    cumtime=cumtime,
                )
            )
        rows.sort(key=lambda spot: (-spot.cumtime, spot.function))
        return rows[: top if top is not None else self.profile_top]


def _function_label(filename: str, lineno: int, name: str) -> str:
    """``basename:lineno(name)`` — host-path-independent hotspot identity."""
    base = os.path.basename(filename) if filename not in ("~", "") else "<builtin>"
    return f"{base}:{lineno}({name})"


# ----------------------------------------------------------------------
# Building records from measured work.
# ----------------------------------------------------------------------
def simulated_host_metrics(
    meter: HostMeter, observations: Sequence["Observation"]
) -> HostMetrics:
    """Combine a meter's host readings with the observed runs' work counters."""
    simulated = 0.0
    events = timers = recomputes = solver = completed = 0.0
    classes = memo_hits = memo_misses = coalesced = 0.0
    skipped = batches = 0.0
    for observation in observations:
        if observation.result is not None:
            simulated += observation.result.makespan
        probes = observation.probes
        events += probes.counter_total("engine.events_executed")
        timers += probes.counter_total("engine.timers_scheduled")
        recomputes += probes.counter_total("flow.recomputes")
        solver += probes.counter_total("flow.solver_iterations")
        completed += probes.counter_total("flow.completed")
        stats = observation.solver_stats
        classes += stats.get("solver_classes", 0)
        memo_hits += stats.get("solver_memo_hits", 0)
        memo_misses += stats.get("solver_memo_misses", 0)
        coalesced += stats.get("recomputes_coalesced", 0)
        skipped += stats.get("solver_components_skipped", 0)
        batches += stats.get("vector_batches", 0)
    return HostMetrics(
        kind=KIND_SIMULATED,
        wall_seconds=meter.wall_seconds,
        simulated_seconds=simulated,
        events_executed=events,
        timers_scheduled=timers,
        flow_recomputes=recomputes,
        solver_iterations=solver,
        flows_completed=completed,
        solver_classes=classes,
        solver_memo_hits=memo_hits,
        solver_memo_misses=memo_misses,
        recomputes_coalesced=coalesced,
        solver_components_skipped=skipped,
        vector_batches=batches,
        peak_tracemalloc_bytes=meter.peak_tracemalloc_bytes,
        runs=len(observations),
        hotspots=meter.hotspots(),
    )


def cached_host_metrics(wall_seconds: float, simulated_seconds: float = 0.0) -> HostMetrics:
    """The record for a service cache hit: a lookup, not a simulation.

    ``simulated_seconds`` may carry the *cached* run's virtual total so
    dashboards can still report how much simulation the hit avoided; the
    zero event/solver counters make clear no engine ran.
    """
    return HostMetrics(
        kind=KIND_CACHED,
        wall_seconds=wall_seconds,
        simulated_seconds=simulated_seconds,
        runs=0,
    )


def threaded_host_metrics(result: "RealRunResult") -> HostMetrics:
    """The same record shape for a :mod:`repro.runtime.threaded` run.

    Emulated runs have no virtual clock and no flow network, so the
    simulator counters are zero; the wall-clock fields carry the real
    measurement.  This is what makes emulated and simulated runs
    comparable rows in one campaign store.
    """
    return HostMetrics(
        kind=KIND_EMULATED,
        wall_seconds=result.makespan_seconds,
        runs=1,
    )


def aggregate_host_metrics(metrics: Iterable[HostMetrics]) -> HostMetrics:
    """Campaign-level rollup: sums of costs, merged hotspot table."""
    total = HostMetrics(kind=KIND_SIMULATED, wall_seconds=0.0)
    kinds = set()
    merged: Dict[str, Hotspot] = {}
    for item in metrics:
        kinds.add(item.kind)
        total.wall_seconds += item.wall_seconds
        total.simulated_seconds += item.simulated_seconds
        total.events_executed += item.events_executed
        total.timers_scheduled += item.timers_scheduled
        total.flow_recomputes += item.flow_recomputes
        total.solver_iterations += item.solver_iterations
        total.flows_completed += item.flows_completed
        total.solver_classes += item.solver_classes
        total.solver_memo_hits += item.solver_memo_hits
        total.solver_memo_misses += item.solver_memo_misses
        total.recomputes_coalesced += item.recomputes_coalesced
        total.solver_components_skipped += item.solver_components_skipped
        total.vector_batches += item.vector_batches
        total.peak_tracemalloc_bytes = max(
            total.peak_tracemalloc_bytes, item.peak_tracemalloc_bytes
        )
        total.runs += item.runs
        for spot in item.hotspots:
            seen = merged.get(spot.function)
            if seen is None:
                merged[spot.function] = Hotspot(
                    spot.function, spot.calls, spot.tottime, spot.cumtime
                )
            else:
                seen.calls += spot.calls
                seen.tottime += spot.tottime
                seen.cumtime += spot.cumtime
    if len(kinds) == 1:
        total.kind = kinds.pop()
    elif kinds:
        total.kind = "mixed"
    total.hotspots = sorted(
        merged.values(), key=lambda spot: (-spot.cumtime, spot.function)
    )[:PROFILE_TOP_DEFAULT]
    return total


def host_metrics_from_record(record: Dict[str, Any]) -> HostMetrics:
    """Rehydrate a stored ``"host"`` record (hotspots included)."""
    return HostMetrics(
        kind=record.get("kind", KIND_SIMULATED),
        wall_seconds=record.get("wall_seconds", 0.0),
        simulated_seconds=record.get("simulated_seconds", 0.0),
        events_executed=record.get("events_executed", 0.0),
        timers_scheduled=record.get("timers_scheduled", 0.0),
        flow_recomputes=record.get("flow_recomputes", 0.0),
        solver_iterations=record.get("solver_iterations", 0.0),
        flows_completed=record.get("flows_completed", 0.0),
        solver_classes=record.get("solver_classes", 0.0),
        solver_memo_hits=record.get("solver_memo_hits", 0.0),
        solver_memo_misses=record.get("solver_memo_misses", 0.0),
        recomputes_coalesced=record.get("recomputes_coalesced", 0.0),
        solver_components_skipped=record.get("solver_components_skipped", 0.0),
        vector_batches=record.get("vector_batches", 0.0),
        peak_tracemalloc_bytes=record.get("peak_tracemalloc_bytes", 0),
        runs=record.get("runs", 0),
        hotspots=[
            Hotspot(
                function=spot["function"],
                calls=spot["calls"],
                tottime=spot["tottime"],
                cumtime=spot["cumtime"],
            )
            for spot in record.get("hotspots", [])
        ],
    )
