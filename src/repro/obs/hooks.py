"""Hook objects the simulator calls into when a run is observed.

The sim layer (:mod:`repro.sim.engine`, :mod:`repro.sim.flow`,
:mod:`repro.storage.channel`) holds an optional ``hooks`` attribute that is
``None`` by default; every emission site is one ``is None`` branch.  When a
run is observed, :class:`~repro.obs.capture.Observation` attaches these
implementations, which translate raw simulator events into probe
instruments:

* :class:`EngineHooks` — event-queue depth over virtual time;
* :class:`NetworkHooks` — active flows, per-resource occupancy, achieved
  vs. model bandwidth, per-resource/per-direction bytes moved, per-flow
  achieved-rate histograms;
* :class:`ChannelHooks` — versions published/consumed, payload bytes,
  version-wait counts, reader lag, retention pressure.

Counter/gauge names are part of the export schema; see DESIGN.md
"Observability" for the full catalogue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence, Tuple

from repro.obs.probes import Counter, Gauge, ProbeRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.flow import CapacityResource, Flow, ResourceLoad


class EngineHooks:
    """Probe adapter for the discrete-event engine."""

    __slots__ = ("_queue_depth",)

    def __init__(self, probes: ProbeRegistry) -> None:
        self._queue_depth = probes.gauge("engine.queue_depth")

    def on_step(self, now: float, queue_depth: int) -> None:
        """Called after every executed timer with the remaining queue size."""
        self._queue_depth.set(now, queue_depth)


class NetworkHooks:
    """Probe adapter for the fluid-flow network and its resources."""

    __slots__ = (
        "_probes",
        "_active",
        "_recomputes",
        "_solver_iterations",
        "_completed",
        "_occupancy",
        "_achieved",
        "_model",
        "_bytes",
        "_rate_hist",
    )

    def __init__(self, probes: ProbeRegistry) -> None:
        self._probes = probes
        self._active = probes.gauge("flow.active")
        self._recomputes = probes.counter("flow.recomputes")
        self._solver_iterations = probes.counter("flow.solver_iterations")
        self._completed = probes.counter("flow.completed")
        # Per-resource instrument caches (avoid registry lookups per event).
        self._occupancy: Dict[str, Gauge] = {}
        self._achieved: Dict[str, Gauge] = {}
        self._model: Dict[str, Gauge] = {}
        self._bytes: Dict[Tuple[str, str, bool], Counter] = {}
        self._rate_hist: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _resource_gauge(self, cache: Dict[str, Gauge], name: str, resource: str) -> Gauge:
        gauge = cache.get(resource)
        if gauge is None:
            gauge = self._probes.gauge(name, resource=resource)
            cache[resource] = gauge
        return gauge

    def on_recompute(
        self,
        now: float,
        flows: Sequence["Flow"],
        loads: Dict["CapacityResource", "ResourceLoad"],
    ) -> None:
        """Called after every rate recomputation with the converged state."""
        self._recomputes.add(now, 1)
        self._active.set(now, len(flows))
        # Resources with no load this round decay to zero occupancy/rate.
        seen = {resource.name for resource in loads}
        for name, gauge in self._occupancy.items():
            if name not in seen:
                gauge.set(now, 0.0)
        for name, gauge in self._achieved.items():
            if name not in seen:
                gauge.set(now, 0.0)
        for name, gauge in self._model.items():
            if name not in seen:
                gauge.set(now, 0.0)
        for resource, load in sorted(loads.items(), key=lambda kv: kv[0].name):
            achieved = 0.0
            model = 0.0
            for flow in flows:
                if resource in flow.resources:
                    achieved += flow.rate
                    model += resource.share(load, flow)
            self._resource_gauge(
                self._occupancy, "resource.occupancy", resource.name
            ).set(now, load.n_total)
            self._resource_gauge(
                self._achieved, "resource.rate_achieved", resource.name
            ).set(now, achieved)
            self._resource_gauge(
                self._model, "resource.rate_model", resource.name
            ).set(now, model)

    def on_solve(self, now: float, iterations: int) -> None:
        """Called after every rate solve with the fixed-point iteration count.

        On a converged-state memo hit the network replays the *stored*
        iteration count, so this probe (and every export derived from it)
        is identical whether a solve ran live or was served from cache —
        solver strategy counters live in host metrics instead
        (``Observation.solver_stats``), precisely to keep it that way.
        """
        if iterations > 0:
            self._solver_iterations.add(now, iterations)

    def on_flow_complete(self, now: float, flow: "Flow") -> None:
        """Called when a flow finishes, before rates are recomputed."""
        self._completed.add(now, 1)
        for resource in flow.resources:
            key = (resource.name, flow.kind, flow.remote)
            counter = self._bytes.get(key)
            if counter is None:
                counter = self._probes.counter(
                    "resource.bytes_moved",
                    resource=resource.name,
                    kind=flow.kind,
                    remote=flow.remote,
                )
                self._bytes[key] = counter
            counter.add(now, flow.nbytes)
        elapsed = now - flow.started_at
        if elapsed > 0:
            histogram = self._rate_hist.get(flow.kind)
            if histogram is None:
                histogram = self._probes.histogram(
                    "flow.achieved_rate", kind=flow.kind
                )
                self._rate_hist[flow.kind] = histogram
            histogram.observe(now, flow.nbytes / elapsed)


class ChannelHooks:
    """Probe adapter for the versioned NVStream channel."""

    __slots__ = (
        "_published",
        "_bytes_published",
        "_waits",
        "_lag",
        "_retained",
        "_pressure",
    )

    def __init__(self, probes: ProbeRegistry) -> None:
        self._published = probes.counter("channel.versions_published")
        self._bytes_published = probes.counter("channel.bytes_published")
        self._waits = probes.counter("channel.version_waits")
        self._lag = probes.gauge("channel.reader_lag")
        self._retained = probes.gauge("channel.retained_bytes")
        self._pressure = probes.gauge("channel.retention_pressure")

    def on_reserve(self, now: float, reserved_bytes: float, capacity_bytes: float) -> None:
        """Called when the channel reserves its version ring in PMEM."""
        self._retained.set(now, reserved_bytes)
        if capacity_bytes > 0:
            self._pressure.set(now, reserved_bytes / capacity_bytes)

    def on_publish(self, now: float, stream_id: int, version: int, nbytes: float) -> None:
        """Called on every snapshot-version publication."""
        self._published.add(now, 1)
        if nbytes > 0:
            self._bytes_published.add(now, nbytes)

    def on_wait(self, now: float, stream_id: int, version: int, published: int) -> None:
        """Called when a reader blocks on a not-yet-published version."""
        self._waits.add(now, 1)
        self._lag.set(now, version - published)
