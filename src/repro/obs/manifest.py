"""Run provenance: everything needed to reproduce an exported trace.

A trace without provenance is a picture; a trace with provenance is an
experiment.  :class:`RunManifest` pins down the five inputs that determine
a simulated run bit-for-bit:

* the workflow spec (name, ranks, iterations, snapshot shape, stack);
* the scheduler configuration (Table I label);
* the calibration table, as a content hash — two manifests with the same
  ``calibration_sha256`` ran against identical device constants;
* the determinism inputs (compute jitter, socket placement) — the
  simulator has no RNG, so these *are* the seed;
* the code version (git SHA when available, package version always).

Deliberately absent: wall-clock timestamps and hostnames.  The exporters
promise byte-identical output for identical runs, and the manifest is part
of the export.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

import repro
from repro.pmem.calibration import OptaneCalibration

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.configs import SchedulerConfig
    from repro.workflow.spec import WorkflowSpec

#: Version of the manifest / export schema (bumped on breaking changes).
SCHEMA_VERSION = 1


def calibration_hash(cal: OptaneCalibration) -> str:
    """SHA-256 of the calibration table's sorted field/value JSON."""
    payload = json.dumps(
        {k: repr(v) for k, v in sorted(dataclasses.asdict(cal).items())},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def git_sha(default: str = "unknown") -> str:
    """Current git commit SHA, or *default* outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


@dataclass(frozen=True)
class RunManifest:
    """Provenance record attached to every observed run."""

    schema_version: int
    workflow: str
    config: str
    ranks: int
    iterations: int
    object_bytes: int
    objects_per_snapshot: int
    snapshot_bytes: int
    stack: str
    writer_socket: int
    reader_socket: int
    compute_jitter: float
    calibration_sha256: str
    git_sha: str
    repro_version: str
    python_version: str

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)


def build_manifest(
    spec: "WorkflowSpec",
    config: "SchedulerConfig",
    cal: OptaneCalibration,
    writer_socket: int = 0,
    reader_socket: int = 1,
    compute_jitter: float = 0.0,
) -> RunManifest:
    """Assemble the provenance record for one (spec, config, cal) run."""
    return RunManifest(
        schema_version=SCHEMA_VERSION,
        workflow=spec.name,
        config=config.label,
        ranks=spec.ranks,
        iterations=spec.iterations,
        object_bytes=int(spec.snapshot.object_bytes),
        objects_per_snapshot=int(spec.snapshot.objects_per_snapshot),
        snapshot_bytes=int(spec.snapshot.snapshot_bytes),
        stack=spec.stack_name,
        writer_socket=writer_socket,
        reader_socket=reader_socket,
        compute_jitter=compute_jitter,
        calibration_sha256=calibration_hash(cal),
        git_sha=git_sha(),
        repro_version=repro.__version__,
        python_version="{}.{}.{}".format(*sys.version_info[:3]),
    )
