"""Persistent, append-only campaign run store (JSONL under ``campaigns/``).

One campaign = one JSONL file.  The first line is a *campaign header*; every
subsequent line is a *cell record* — one (workflow, calibration) cell of the
suite, carrying the results of every scheduler configuration evaluated for
it.  Records are append-only: cells are never rewritten, a campaign is
never truncated, and re-running the same campaign under a new name yields
byte-identical ``"deterministic"`` payloads (a test enforces this).

Record layout::

    {"record": "campaign", "schema_version": 1, "campaign": ..., ...}
    {"record": "cell", "campaign": ..., "cell_id": ..., "key": ...,
     "deterministic": {...},   # byte-stable: results + manifest identity
     "host": {...},            # wall-clock self-metrics; never diffed
     "provenance": {...}}      # git SHA / versions; never diffed

The three-way split is the store's core invariant:

* ``deterministic`` — everything a diff compares: per-config makespans,
  phase breakdowns, PMEM byte counters, the winner, the paper expectation,
  and the determinism-relevant manifest fields.  Identical inputs must
  serialize identically.
* ``host`` — wall-clock cost (see :mod:`repro.obs.hostmetrics`).  Varies
  between machines and reruns by design.
* ``provenance`` — git SHA, package and Python versions: how to find the
  code, excluded from identity so a rebase does not change cell ids.

Cell ids are content hashes of the determinism-relevant manifest fields of
every configuration in the cell — same spec + configs + calibration ⇒ same
id, on any machine, at any commit.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import StorageError

#: Version of the store record schema (bumped on breaking changes).
STORE_SCHEMA_VERSION = 1

#: Default store location, relative to the working directory.
DEFAULT_CAMPAIGN_DIR = "campaigns"

#: Manifest fields that identify the code, not the experiment — excluded
#: from cell identity and from the deterministic payload.
PROVENANCE_FIELDS: Tuple[str, ...] = ("git_sha", "repro_version", "python_version")

#: Hex digits kept of the cell content hash (64 bits: ample for suites).
CELL_ID_LENGTH = 16


def canonical_json(payload: Any) -> str:
    """The byte-stable serialization used for hashing and storage."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def manifest_determinism_payload(manifest: Mapping[str, Any]) -> Dict[str, Any]:
    """A manifest dict minus its provenance fields (code-version identity)."""
    return {
        key: value
        for key, value in manifest.items()
        if key not in PROVENANCE_FIELDS
    }


def cell_id_from_manifests(manifests: Iterable[Mapping[str, Any]]) -> str:
    """Deterministic cell id from the PR-2 run manifests of a cell.

    The id hashes the determinism-relevant fields of every per-config
    manifest (sorted by config label), so the same spec + configuration
    set + calibration always produces the same id — across machines,
    commits, and campaign names.
    """
    payloads = sorted(
        (manifest_determinism_payload(m) for m in manifests),
        key=lambda m: str(m.get("config", "")),
    )
    if not payloads:
        raise StorageError("cannot derive a cell id from zero manifests")
    digest = hashlib.sha256(canonical_json(payloads).encode("utf-8"))
    return digest.hexdigest()[:CELL_ID_LENGTH]


# ----------------------------------------------------------------------
# In-memory views of stored campaigns.
# ----------------------------------------------------------------------
@dataclass
class StoredCell:
    """One cell line of a campaign file."""

    cell_id: str
    key: str
    deterministic: Dict[str, Any]
    host: Dict[str, Any] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)

    def as_record(self, campaign: str) -> Dict[str, Any]:
        return {
            "record": "cell",
            "schema_version": STORE_SCHEMA_VERSION,
            "campaign": campaign,
            "cell_id": self.cell_id,
            "key": self.key,
            "deterministic": self.deterministic,
            "host": self.host,
            "provenance": self.provenance,
        }


@dataclass
class StoredCampaign:
    """A fully parsed campaign: header plus its cells, in append order."""

    name: str
    header: Dict[str, Any]
    cells: List[StoredCell] = field(default_factory=list)

    @property
    def cells_by_key(self) -> Dict[str, StoredCell]:
        return {cell.key: cell for cell in self.cells}


# ----------------------------------------------------------------------
# Schema validation (used by tests, the CLI, and the CI campaign job).
# ----------------------------------------------------------------------
_CELL_REQUIRED = ("record", "campaign", "cell_id", "key", "deterministic", "host")
_DETERMINISTIC_REQUIRED = ("family", "ranks", "configs", "winner")


def validate_record(record: Any, index: int = 0) -> List[str]:
    """Problems with one store record; empty list means valid."""
    prefix = f"line {index + 1}"
    if not isinstance(record, dict):
        return [f"{prefix}: not a JSON object"]
    kind = record.get("record")
    problems: List[str] = []
    if kind == "campaign":
        for key in ("campaign", "schema_version", "suite"):
            if key not in record:
                problems.append(f"{prefix}: campaign header missing {key!r}")
        if record.get("schema_version") != STORE_SCHEMA_VERSION:
            problems.append(
                f"{prefix}: schema_version {record.get('schema_version')!r} "
                f"!= {STORE_SCHEMA_VERSION}"
            )
    elif kind == "cell":
        for key in _CELL_REQUIRED:
            if key not in record:
                problems.append(f"{prefix}: cell record missing {key!r}")
        deterministic = record.get("deterministic")
        if isinstance(deterministic, dict):
            for key in _DETERMINISTIC_REQUIRED:
                if key not in deterministic:
                    problems.append(
                        f"{prefix}: deterministic payload missing {key!r}"
                    )
            configs = deterministic.get("configs")
            if isinstance(configs, dict):
                for label, entry in configs.items():
                    if not isinstance(entry, dict) or "makespan" not in entry:
                        problems.append(
                            f"{prefix}: config {label!r} missing 'makespan'"
                        )
                winner = deterministic.get("winner")
                if winner is not None and winner not in configs:
                    problems.append(
                        f"{prefix}: winner {winner!r} not among configs"
                    )
        elif "deterministic" in record:
            problems.append(f"{prefix}: 'deterministic' must be an object")
        host = record.get("host")
        if host is not None and not isinstance(host, dict):
            problems.append(f"{prefix}: 'host' must be an object")
    else:
        problems.append(f"{prefix}: unknown record type {kind!r}")
    return problems


def validate_campaign_lines(lines: Iterable[str]) -> List[str]:
    """Schema-check a whole campaign file's lines."""
    problems: List[str] = []
    seen_header = False
    seen_cells: set = set()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {index + 1}: invalid JSON ({exc.msg})")
            continue
        problems.extend(validate_record(record, index))
        if isinstance(record, dict):
            if record.get("record") == "campaign":
                if seen_header:
                    problems.append(f"line {index + 1}: duplicate campaign header")
                if index != 0:
                    problems.append(
                        f"line {index + 1}: campaign header must be first"
                    )
                seen_header = True
            elif record.get("record") == "cell":
                cell_id = record.get("cell_id")
                if cell_id in seen_cells:
                    problems.append(
                        f"line {index + 1}: duplicate cell_id {cell_id!r}"
                    )
                seen_cells.add(cell_id)
    if not seen_header:
        problems.append("file has no campaign header record")
    return problems


# ----------------------------------------------------------------------
# The store.
# ----------------------------------------------------------------------
class CampaignStore:
    """Append-only JSONL store, one file per campaign, under *root*."""

    def __init__(self, root: str = DEFAULT_CAMPAIGN_DIR) -> None:
        self.root = root

    # -- paths and naming ----------------------------------------------
    def path(self, name: str) -> str:
        if not name or os.sep in name or name.startswith("."):
            raise StorageError(f"invalid campaign name {name!r}")
        return os.path.join(self.root, f"{name}.jsonl")

    def exists(self, name: str) -> bool:
        return os.path.exists(self.path(name))

    def list_campaigns(self) -> List[str]:
        """Campaign names present in the store, sorted."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry[: -len(".jsonl")]
            for entry in os.listdir(self.root)
            if entry.endswith(".jsonl")
        )

    def next_name(self, prefix: str) -> str:
        """First free ``<prefix>-NNN`` name (no wall clock involved)."""
        existing = set(self.list_campaigns())
        for counter in range(1, 10_000):
            candidate = f"{prefix}-{counter:03d}"
            if candidate not in existing:
                return candidate
        raise StorageError(f"no free campaign name under prefix {prefix!r}")

    # -- writing --------------------------------------------------------
    def create(self, name: str, header: Optional[Dict[str, Any]] = None) -> str:
        """Create an empty campaign with its header line; returns the path.

        Refuses to overwrite: the store is append-only and an existing
        campaign is immutable history.
        """
        path = self.path(name)
        if os.path.exists(path):
            raise StorageError(
                f"campaign {name!r} already exists (store is append-only)"
            )
        os.makedirs(self.root, exist_ok=True)
        record = {
            "record": "campaign",
            "schema_version": STORE_SCHEMA_VERSION,
            "campaign": name,
            "suite": "custom",
        }
        record.update(header or {})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(record) + "\n")
        return path

    def append_cell(self, name: str, cell: StoredCell) -> None:
        """Append one cell record; duplicate cell ids are rejected."""
        path = self.path(name)
        if not os.path.exists(path):
            raise StorageError(
                f"campaign {name!r} does not exist; create() it first"
            )
        existing = self.read(name)
        if any(c.cell_id == cell.cell_id for c in existing.cells):
            raise StorageError(
                f"cell {cell.cell_id} already recorded in campaign {name!r} "
                "(store is append-only; start a new campaign to re-run)"
            )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(canonical_json(cell.as_record(name)) + "\n")

    # -- reading --------------------------------------------------------
    def read(self, name: str) -> StoredCampaign:
        """Parse one campaign file into a :class:`StoredCampaign`."""
        path = self.path(name)
        if not os.path.exists(path):
            raise StorageError(
                f"no campaign {name!r} in {self.root!r}; "
                f"have {self.list_campaigns()}"
            )
        header: Dict[str, Any] = {}
        cells: List[StoredCell] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("record") == "campaign":
                    header = record
                elif record.get("record") == "cell":
                    cells.append(
                        StoredCell(
                            cell_id=record["cell_id"],
                            key=record["key"],
                            deterministic=record["deterministic"],
                            host=record.get("host", {}),
                            provenance=record.get("provenance", {}),
                        )
                    )
                else:
                    raise StorageError(
                        f"{path}: unknown record type {record.get('record')!r}"
                    )
        return StoredCampaign(name=name, header=header, cells=cells)

    def validate(self, name: str) -> List[str]:
        """Schema problems of one stored campaign (empty = valid)."""
        path = self.path(name)
        if not os.path.exists(path):
            return [f"no campaign {name!r} in {self.root!r}"]
        with open(path, "r", encoding="utf-8") as handle:
            return validate_campaign_lines(handle.readlines())
