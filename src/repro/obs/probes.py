"""The probe API: counters, gauges and histograms on the virtual clock.

Design constraints, in priority order:

1. **Zero overhead when disabled.**  Model code never builds instruments
   eagerly; it holds an optional hook object (``None`` by default) and the
   emission site is one ``is None`` branch.  A disabled
   :class:`ProbeRegistry` additionally hands out shared null instruments
   whose mutators are empty, so code that *does* hold an instrument still
   pays nothing measurable.
2. **Determinism.**  Instruments are identified by ``(kind, name, sorted
   attributes)`` and iterated in sorted order, and every sample is keyed on
   virtual time — two identical runs produce byte-identical exports.
3. **Reconcilability.**  Counters are monotonic sums; their totals must
   reconcile exactly with the quantities the metrics layer reports (bytes
   moved vs. the workflow spec, phase seconds vs.
   :meth:`~repro.sim.trace.Tracer.total_time`).  The tests enforce this.

Instruments record a bounded-cost timeseries: counters append one
``(virtual_time, cumulative_total)`` sample per update, gauges append only
on value changes, histograms keep log2 buckets plus summary stats.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

#: Attribute key/value pairs, sorted — the canonical identity of an
#: instrument alongside its kind and name.
AttrItems = Tuple[Tuple[str, Any], ...]

#: Histogram bucket index for non-positive observations (log2 undefined).
UNDERFLOW_BUCKET: int = -9999


def _attr_items(attrs: Dict[str, Any]) -> AttrItems:
    for key, value in attrs.items():
        if not isinstance(value, (str, int, float, bool)):
            raise SimulationError(
                f"probe attribute {key!r} must be a scalar, got {type(value).__name__}"
            )
    return tuple(sorted(attrs.items()))


class Instrument:
    """Common identity/bookkeeping of one named metric stream."""

    kind = "instrument"

    __slots__ = ("name", "attrs")

    def __init__(self, name: str, attrs: AttrItems) -> None:
        self.name = name
        self.attrs = attrs

    @property
    def key(self) -> Tuple[str, str, AttrItems]:
        return (self.kind, self.name, self.attrs)

    @property
    def label(self) -> str:
        """Display label: ``name{k=v,...}`` (stable, sorted attributes)."""
        if not self.attrs:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.attrs)
        return f"{self.name}{{{inner}}}"

    def as_dict(self) -> Dict[str, Any]:
        """Serializable snapshot (extended by subclasses)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "attributes": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.label}>"


class Counter(Instrument):
    """Monotonic sum keyed on virtual time (bytes moved, events, versions)."""

    kind = "counter"

    __slots__ = ("total", "samples")

    def __init__(self, name: str, attrs: AttrItems = ()) -> None:
        super().__init__(name, attrs)
        self.total: float = 0.0
        self.samples: List[Tuple[float, float]] = []

    def add(self, now: float, value: float = 1.0) -> None:
        """Increment by *value* at virtual time *now* (must be >= 0)."""
        if value < 0 or not math.isfinite(value):
            raise SimulationError(
                f"counter {self.label}: increment must be finite and >= 0, "
                f"got {value}"
            )
        self.total += value
        self.samples.append((now, self.total))

    def as_dict(self) -> Dict[str, Any]:
        data = super().as_dict()
        data["total"] = self.total
        data["samples"] = [[t, v] for t, v in self.samples]
        return data


class Gauge(Instrument):
    """Point-in-time level (queue depth, active flows, reader lag).

    Samples are recorded only when the value changes, so a gauge polled
    every event stays proportional to the number of *transitions*.
    """

    kind = "gauge"

    __slots__ = ("value", "peak", "samples")

    def __init__(self, name: str, attrs: AttrItems = ()) -> None:
        super().__init__(name, attrs)
        self.value: float = 0.0
        self.peak: float = 0.0
        self.samples: List[Tuple[float, float]] = []

    def set(self, now: float, value: float) -> None:
        """Record the gauge level at virtual time *now*."""
        if not math.isfinite(value):
            raise SimulationError(
                f"gauge {self.label}: value must be finite, got {value}"
            )
        if self.samples and value == self.value:
            return
        self.value = value
        self.peak = max(self.peak, value)
        self.samples.append((now, value))

    def as_dict(self) -> Dict[str, Any]:
        data = super().as_dict()
        data["last"] = self.value
        data["peak"] = self.peak
        data["samples"] = [[t, v] for t, v in self.samples]
        return data


class Histogram(Instrument):
    """Distribution summary (achieved flow rates, span durations).

    Values land in log2 buckets: bucket *k* holds ``2**k <= v < 2**(k+1)``
    (non-positive values land in a dedicated underflow bucket).  Cheap,
    deterministic, and enough resolution for "how far below the model
    ceiling did transfers run".
    """

    kind = "histogram"

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self, name: str, attrs: AttrItems = ()) -> None:
        super().__init__(name, attrs)
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, now: float, value: float) -> None:
        """Record one observation (*now* kept for signature symmetry)."""
        if not math.isfinite(value):
            raise SimulationError(
                f"histogram {self.label}: value must be finite, got {value}"
            )
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        bucket = int(math.floor(math.log2(value))) if value > 0 else UNDERFLOW_BUCKET
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        data = super().as_dict()
        data["count"] = self.count
        data["sum"] = self.sum
        data["min"] = self.min if self.count else None
        data["max"] = self.max if self.count else None
        data["mean"] = self.mean
        data["log2_buckets"] = {
            str(k): self.buckets[k] for k in sorted(self.buckets)
        }
        return data


def step_fraction_above(
    samples: Iterable[Tuple[float, float]], horizon: float, threshold: float
) -> float:
    """Fraction of ``[0, horizon]`` a change-point series spends above *threshold*.

    Gauge samples are ``(time, value)`` transitions recorded only on
    change; the level before the first sample is 0.  This is the
    utilization primitive: busy fraction is ``step_fraction_above(samples,
    makespan, 0.0)``, contended fraction uses threshold 1.0.
    """
    if horizon <= 0:
        return 0.0
    above = 0.0
    level = 0.0
    previous = 0.0
    for when, value in samples:
        clamped = min(max(when, 0.0), horizon)
        if level > threshold:
            above += clamped - previous
        previous = clamped
        level = value
    if level > threshold:
        above += horizon - previous
    return min(max(above / horizon, 0.0), 1.0)


def step_time_weighted_mean(
    samples: Iterable[Tuple[float, float]], horizon: float
) -> float:
    """Time-weighted mean level of a change-point series over ``[0, horizon]``."""
    if horizon <= 0:
        return 0.0
    weighted = 0.0
    level = 0.0
    previous = 0.0
    for when, value in samples:
        clamped = min(max(when, 0.0), horizon)
        weighted += level * (clamped - previous)
        previous = clamped
        level = value
    weighted += level * (horizon - previous)
    return weighted / horizon


class _NullCounter(Counter):
    __slots__ = ()

    def add(self, now: float, value: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, now: float, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, now: float, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class ProbeRegistry:
    """Factory and container for every instrument of one observed run.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    the same ``(name, attributes)`` twice returns the same instrument, so
    independent emission sites accumulate into one stream.  A disabled
    registry returns shared null instruments.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, str, AttrItems], Instrument] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, attrs: Dict[str, Any]) -> Instrument:
        items = _attr_items(attrs)
        key = (cls.kind, name, items)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, items)
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **attrs: Any) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(Counter, name, attrs)

    def gauge(self, name: str, **attrs: Any) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(Gauge, name, attrs)

    def histogram(self, name: str, **attrs: Any) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get(Histogram, name, attrs)

    # ------------------------------------------------------------------
    def instruments(self) -> List[Instrument]:
        """All instruments, sorted by (kind, name, attributes)."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def counters(self) -> List[Counter]:
        return [i for i in self.instruments() if isinstance(i, Counter)]

    def counter_total(self, name: str, **attrs: Any) -> float:
        """Summed total over counters matching *name* and the given attrs.

        Attributes act as a filter: ``counter_total("pmem.payload_bytes",
        direction="write")`` sums the write counters of every socket.
        """
        wanted = set(attrs.items())
        total = 0.0
        for instrument in self.instruments():
            if instrument.kind != "counter" or instrument.name != name:
                continue
            if wanted - set(instrument.attrs):
                continue
            total += instrument.total  # type: ignore[attr-defined]
        return total

    def find(self, name: str, **attrs: Any) -> Optional[Instrument]:
        """First instrument with this exact name whose attrs include *attrs*."""
        wanted = set(attrs.items())
        for instrument in self.instruments():
            if instrument.name == name and not (wanted - set(instrument.attrs)):
                return instrument
        return None

    def as_records(self) -> Iterable[Dict[str, Any]]:
        """Serializable snapshots of every instrument (sorted)."""
        return [instrument.as_dict() for instrument in self.instruments()]
