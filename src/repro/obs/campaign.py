"""Campaign runner, diff/regression engine, and suite dashboards.

A *campaign* executes a set of (workflow, configuration-set, calibration)
cells — by default the full 18-workflow paper suite of
:mod:`repro.apps.suite` — and appends one record per cell to the
persistent :class:`~repro.obs.store.CampaignStore`.  Each cell:

* runs every scheduler configuration under full observability
  (:func:`repro.obs.capture.observe_workflow`);
* derives its deterministic id from the PR-2 run manifests
  (:func:`repro.obs.store.cell_id_from_manifests`);
* records makespans, phase breakdowns, PMEM byte counters, the winner and
  the paper expectation in the byte-stable ``deterministic`` payload; and
* records wall-clock self-metrics (and cProfile hotspots under
  ``profile=True``) in the ``host`` payload
  (:mod:`repro.obs.hostmetrics`).

On top of the store sit the analyses Balsam-style campaign databases make
routine: :func:`diff_campaigns` (makespan drift, winner flips, paper-claim
status changes between two campaigns), :func:`campaign_report` (markdown
dashboard: config × workflow heatmap, hit rate vs the paper, host cost)
and :func:`bench_record` (the ``BENCH_campaign.json`` performance
trajectory every subsequent optimization PR measures against).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.suite import (
    CONCURRENCY_LEVELS,
    FAMILIES,
    PAPER_EXPECTATIONS,
    build_workflow,
)
from repro.core.configs import ALL_CONFIGS, SchedulerConfig
from repro.errors import ConfigurationError
from repro.metrics.analysis import best_config
from repro.obs.capture import Observation, observe_workflow
from repro.obs.hostmetrics import (
    HostMeter,
    HostMetrics,
    aggregate_host_metrics,
    host_metrics_from_record,
    simulated_host_metrics,
    threaded_host_metrics,
)
from repro.obs.manifest import calibration_hash
from repro.obs.store import (
    PROVENANCE_FIELDS,
    CampaignStore,
    StoredCampaign,
    StoredCell,
    cell_id_from_manifests,
    manifest_determinism_payload,
)
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration
from repro.units import fmt_time
from repro.workflow.spec import WorkflowSpec

#: Relative makespan change below which a drift is noise, not a regression.
DEFAULT_DRIFT_THRESHOLD = 0.02

#: A cell is one (family, ranks) suite coordinate.
CellKeyPair = Tuple[str, int]


def cell_key(family: str, ranks: int) -> str:
    """Canonical store key for one suite coordinate."""
    return f"{family}@{ranks}"


def parse_cell_key(key: str) -> CellKeyPair:
    family, _, ranks = key.rpartition("@")
    if not family:
        raise ConfigurationError(f"malformed cell key {key!r}")
    return family, int(ranks)


# ----------------------------------------------------------------------
# Suite presets.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SuitePreset:
    """A named subset of the paper suite plus an iteration override."""

    name: str
    cells: Tuple[CellKeyPair, ...]
    iterations: Optional[int] = None
    description: str = ""


def _full_cells() -> Tuple[CellKeyPair, ...]:
    return tuple(
        (family, ranks) for family in FAMILIES for ranks in CONCURRENCY_LEVELS
    )


#: ``--suite`` choices: the reduced CI campaign and the full paper suite.
SUITE_PRESETS: Dict[str, SuitePreset] = {
    "micro": SuitePreset(
        name="micro",
        cells=(("micro-64mb", 8), ("micro-2k", 8)),
        iterations=2,
        description="both microbenchmarks at 8 ranks, 2 iterations (CI-sized)",
    ),
    "full": SuitePreset(
        name="full",
        cells=_full_cells(),
        description="the full 18-workflow paper suite (§IV-C)",
    ),
}


# ----------------------------------------------------------------------
# Running a campaign.
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """One executed cell, before/after storage."""

    key: str
    family: str
    ranks: int
    cell_id: str
    deterministic: Dict[str, Any]
    host: HostMetrics
    provenance: Dict[str, Any]

    @property
    def winner(self) -> str:
        return self.deterministic["winner"]

    @property
    def paper_best(self) -> Optional[str]:
        return self.deterministic.get("paper_best")

    @property
    def paper_hit(self) -> Optional[bool]:
        return self.deterministic.get("paper_hit")

    @property
    def bottleneck(self) -> Optional[Dict[str, Any]]:
        """The winner config's attribution summary (None if unattributed)."""
        from repro.obs.explain import cell_bottleneck

        return cell_bottleneck(self.deterministic)

    def stored(self) -> StoredCell:
        return StoredCell(
            cell_id=self.cell_id,
            key=self.key,
            deterministic=self.deterministic,
            host=self.host.as_record(),
            provenance=self.provenance,
        )


@dataclass
class CampaignRun:
    """Outcome of :func:`run_campaign` (also rehydratable from the store)."""

    name: str
    suite: str
    cells: List[CellResult] = field(default_factory=list)

    @property
    def hit_rate(self) -> Tuple[int, int]:
        """(cells matching the paper winner, cells with an expectation)."""
        expected = [c for c in self.cells if c.paper_hit is not None]
        return sum(1 for c in expected if c.paper_hit), len(expected)

    def host_total(self) -> HostMetrics:
        return aggregate_host_metrics(c.host for c in self.cells)


def _config_payload(observation: Observation) -> Dict[str, Any]:
    """The deterministic per-configuration slice of a cell payload.

    Includes the compact critical-path attribution summary
    (:func:`repro.obs.explain.attribution_record`) so stored campaigns
    stay explainable after the full trace is gone — cell ids are hashed
    from manifests alone, so the extra key never perturbs identity.
    """
    from repro.obs.explain import attribution_record, explain_observation

    result = observation.result
    probes = observation.probes
    return {
        "attribution": attribution_record(explain_observation(observation)),
        "makespan": result.makespan,
        "writer_runtime": result.writer_runtime,
        "reader_runtime": result.reader_runtime,
        "writer_span": list(result.writer_span),
        "reader_span": list(result.reader_span),
        "bytes_written": result.bytes_written,
        "bytes_read": result.bytes_read,
        "phases": {
            "writer": dataclasses.asdict(result.writer_phases),
            "reader": dataclasses.asdict(result.reader_phases),
        },
        "pmem_bytes": {
            "write": probes.counter_total("pmem.payload_bytes", direction="write"),
            "read": probes.counter_total("pmem.payload_bytes", direction="read"),
        },
        "channel": {
            "versions_published": probes.counter_total(
                "channel.versions_published"
            ),
            "version_waits": probes.counter_total("channel.version_waits"),
        },
        "manifest": manifest_determinism_payload(observation.manifest.as_dict()),
    }


def results_from_config_payloads(
    workflow_name: str, config_payloads: Dict[str, Dict[str, Any]]
) -> List["Any"]:
    """Rebuild :class:`~repro.metrics.results.RunResult` objects from the
    stored per-config payloads (in payload order).

    This is the inverse of :func:`_config_payload` for the fields a
    :class:`~repro.core.autotune.TuningReport` needs — what lets the
    exhaustive tuner serve ``tune()`` straight from the service cache.
    """
    from repro.metrics.results import PhaseBreakdown, RunResult

    results = []
    for label, entry in config_payloads.items():
        try:
            results.append(
                RunResult(
                    workflow_name=workflow_name,
                    config_label=label,
                    makespan=entry["makespan"],
                    writer_span=tuple(entry["writer_span"]),
                    reader_span=tuple(entry["reader_span"]),
                    writer_phases=PhaseBreakdown(**entry["phases"]["writer"]),
                    reader_phases=PhaseBreakdown(**entry["phases"]["reader"]),
                    bytes_written=entry["bytes_written"],
                    bytes_read=entry["bytes_read"],
                )
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"config payload {label!r} is missing {exc} — cached cells "
                "written before span fields were recorded cannot be "
                "rehydrated; clear the cache and re-run"
            ) from None
    return results


def results_from_cell_payload(deterministic: Dict[str, Any]) -> List["Any"]:
    """Rebuild the per-config run results of one stored cell payload."""
    return results_from_config_payloads(
        deterministic.get("workflow", deterministic.get("family", "?")),
        deterministic.get("configs", {}),
    )


def _assemble_cell(
    spec: WorkflowSpec,
    family: str,
    ranks: int,
    cal: OptaneCalibration,
    config_payloads: Dict[str, Dict[str, Any]],
    manifests: List[Dict[str, Any]],
    host: HostMetrics,
) -> CellResult:
    """Build a :class:`CellResult` from per-config slices (any origin)."""
    winner = best_config(results_from_config_payloads(spec.name, config_payloads))
    expectation = PAPER_EXPECTATIONS.get((family, ranks))
    deterministic: Dict[str, Any] = {
        "family": family,
        "ranks": ranks,
        "workflow": spec.name,
        "iterations": spec.iterations,
        "stack": spec.stack_name,
        "calibration_sha256": calibration_hash(cal),
        "configs": config_payloads,
        "winner": winner,
        "paper_best": expectation[0] if expectation else None,
        "figure": expectation[1] if expectation else None,
        "paper_hit": (winner == expectation[0]) if expectation else None,
    }
    provenance = {key: manifests[0][key] for key in PROVENANCE_FIELDS}
    return CellResult(
        key=cell_key(family, ranks),
        family=family,
        ranks=ranks,
        cell_id=cell_id_from_manifests(manifests),
        deterministic=deterministic,
        host=host,
        provenance=provenance,
    )


def run_spec_cell(
    spec: WorkflowSpec,
    configs: Sequence[SchedulerConfig] = ALL_CONFIGS,
    cal: OptaneCalibration = DEFAULT_CALIBRATION,
    family: Optional[str] = None,
    ranks: Optional[int] = None,
    profile: bool = False,
    profile_top: Optional[int] = None,
    jobs: int = 1,
    on_observation: Optional[Callable[[Observation], None]] = None,
) -> CellResult:
    """Execute one cell for an already-built spec (suite member or not).

    ``family``/``ranks`` default to the spec's own name and rank count —
    pass the suite coordinate when the spec came from
    :func:`~repro.apps.suite.build_workflow` so paper expectations attach.
    With ``jobs > 1`` the configurations are evaluated in parallel worker
    processes (the deterministic payload is byte-identical either way).

    ``on_observation`` fires after each configuration's run completes
    (serial path only) — the service worker's telemetry hook.  The
    callback sees the finished :class:`~repro.obs.capture.Observation`;
    nothing it does can alter the deterministic payload.
    """
    if not configs:
        raise ConfigurationError("a campaign cell needs at least one config")
    family = family if family is not None else spec.name
    ranks = ranks if ranks is not None else spec.ranks
    if jobs > 1 and not profile:
        from repro.service.pool import TaskSpec, WorkerPool
        from repro.service.tasks import execute_config

        pool = WorkerPool(execute_config, jobs=jobs)
        outcomes = pool.run(
            [
                TaskSpec(
                    task_id=config.label,
                    payload={"spec": spec, "config": config, "cal": cal},
                )
                for config in configs
            ]
        )
        failed = [o for o in outcomes if not o.ok]
        if failed:
            raise ConfigurationError(
                f"{len(failed)} config worker(s) failed for {spec.name}: "
                f"{failed[0].error}"
            )
        slices = [o.result for o in outcomes]
        return _assemble_cell(
            spec,
            family,
            ranks,
            cal,
            config_payloads={s["config"]: s["payload"] for s in slices},
            manifests=[s["manifest"] for s in slices],
            host=aggregate_host_metrics(
                host_metrics_from_record(s["host"]) for s in slices
            ),
        )
    meter_kwargs: Dict[str, Any] = {"profile": profile}
    if profile_top is not None:
        meter_kwargs["profile_top"] = profile_top
    observations: List[Observation] = []
    with HostMeter(**meter_kwargs) as meter:
        for config in configs:
            observation = observe_workflow(spec, config, cal=cal)
            if on_observation is not None:
                on_observation(observation)
            observations.append(observation)
    return _assemble_cell(
        spec,
        family,
        ranks,
        cal,
        config_payloads={
            obs.manifest.config: _config_payload(obs) for obs in observations
        },
        manifests=[obs.manifest.as_dict() for obs in observations],
        host=simulated_host_metrics(meter, observations),
    )


def run_cell(
    family: str,
    ranks: int,
    configs: Sequence[SchedulerConfig] = ALL_CONFIGS,
    cal: OptaneCalibration = DEFAULT_CALIBRATION,
    iterations: Optional[int] = None,
    stack_name: str = "nvstream",
    matmul_dim: Optional[int] = None,
    profile: bool = False,
    profile_top: Optional[int] = None,
    on_observation: Optional[Callable[[Observation], None]] = None,
) -> CellResult:
    """Execute one campaign cell: every configuration of one workflow."""
    if not configs:
        raise ConfigurationError("a campaign cell needs at least one config")
    spec: WorkflowSpec = build_workflow(
        family,
        ranks,
        stack_name=stack_name,
        iterations=iterations,
        matmul_dim=matmul_dim,
    )
    return run_spec_cell(
        spec,
        configs=configs,
        cal=cal,
        family=family,
        ranks=ranks,
        profile=profile,
        profile_top=profile_top,
        on_observation=on_observation,
    )


def _progress_line(cell: CellResult) -> str:
    return (
        f"{cell.key}: winner {cell.winner}"
        + (
            f" (paper {cell.paper_best}, "
            + ("hit" if cell.paper_hit else "MISS")
            + ")"
            if cell.paper_best
            else ""
        )
        + f"  [{cell.host.wall_seconds:.2f}s host]"
    )


def run_campaign(
    suite: str = "micro",
    name: Optional[str] = None,
    store: Optional[CampaignStore] = None,
    cells: Optional[Sequence[CellKeyPair]] = None,
    configs: Sequence[SchedulerConfig] = ALL_CONFIGS,
    cal: OptaneCalibration = DEFAULT_CALIBRATION,
    iterations: Optional[int] = None,
    stack_name: str = "nvstream",
    matmul_dim: Optional[int] = None,
    profile: bool = False,
    profile_top: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> CampaignRun:
    """Run a whole campaign, optionally persisting it into *store*.

    ``suite`` picks a :data:`SUITE_PRESETS` entry; ``cells`` overrides the
    preset's cell list (for sweeps), ``iterations`` its iteration count.
    With ``jobs > 1`` cells are executed in parallel worker processes
    (via :mod:`repro.service`).

    Persistence is order-independent: cell ids are content hashes computed
    *before* running (from the run manifests), and cells are stored sorted
    by cell id — so the stored deterministic payload is byte-identical
    whatever order workers finish in, and identical to a serial run.  With
    a store and ``jobs=1`` each cell is appended as it completes (in cell-id
    order), so a crashed campaign keeps its finished prefix.  Returns the
    in-memory :class:`CampaignRun` (cells in cell-id order) either way.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    preset = SUITE_PRESETS.get(suite)
    if preset is None and cells is None:
        raise ConfigurationError(
            f"unknown suite {suite!r}; choices: {sorted(SUITE_PRESETS)} "
            "(or pass explicit cells)"
        )
    chosen_cells = tuple(cells) if cells is not None else preset.cells
    chosen_iterations = (
        iterations
        if iterations is not None
        else (preset.iterations if preset else None)
    )
    if store is not None:
        if name is None:
            name = store.next_name(suite)
        store.create(
            name,
            {
                "suite": suite,
                "cells_planned": len(chosen_cells),
                "configs": [config.label for config in configs],
                "iterations_override": chosen_iterations,
                "calibration_sha256": calibration_hash(cal),
                "profiled": profile,
            },
        )
    run = CampaignRun(name=name or f"{suite}-unsaved", suite=suite)
    # Pre-compute every cell's content id (manifests only, no simulation)
    # and fix the storage order up front: sorted by cell id.
    from repro.service.cache import cell_id_for_spec

    cell_kwargs = dict(
        stack_name=stack_name,
        iterations=chosen_iterations,
        matmul_dim=matmul_dim,
    )
    planned = sorted(
        (
            cell_id_for_spec(
                build_workflow(family, ranks, **cell_kwargs), configs, cal
            ),
            family,
            ranks,
        )
        for family, ranks in chosen_cells
    )
    run_cell_kwargs = dict(
        configs=tuple(configs),
        cal=cal,
        profile=profile,
        profile_top=profile_top,
        **cell_kwargs,
    )
    if jobs > 1:
        from repro.service.pool import TaskSpec, WorkerPool
        from repro.service.tasks import execute_cell

        pool = WorkerPool(execute_cell, jobs=jobs)
        outcomes = pool.run(
            [
                TaskSpec(
                    task_id=cell_id,
                    payload=dict(family=family, ranks=ranks, **run_cell_kwargs),
                )
                for cell_id, family, ranks in planned
            ]
        )
        failed = [o for o in outcomes if not o.ok]
        if failed:
            raise ConfigurationError(
                f"{len(failed)} campaign worker(s) failed: {failed[0].error}"
            )
        # Completion order is nondeterministic; storage order is not.
        run.cells.extend(
            sorted((o.result for o in outcomes), key=lambda c: c.cell_id)
        )
        for cell in run.cells:
            if store is not None:
                store.append_cell(name, cell.stored())
            if progress is not None:
                progress(_progress_line(cell))
        return run
    for _cell_id, family, ranks in planned:
        cell = run_cell(family, ranks, **run_cell_kwargs)
        run.cells.append(cell)
        if store is not None:
            store.append_cell(name, cell.stored())
        if progress is not None:
            progress(_progress_line(cell))
    return run


def append_emulated_run(
    store: CampaignStore,
    campaign: str,
    spec: WorkflowSpec,
    config: SchedulerConfig,
    result: "Any",
) -> StoredCell:
    """Record a :mod:`repro.runtime.threaded` run as a campaign cell.

    The deterministic payload carries only the run's identity (an emulated
    run is wall-clock by nature, so its makespan lives in ``host``); the
    host payload uses the exact record shape simulated cells use, which is
    what makes the two kinds comparable in one store.
    """
    host = threaded_host_metrics(result)
    deterministic = {
        "family": spec.name,
        "ranks": spec.ranks,
        "workflow": spec.name,
        "iterations": spec.iterations,
        "stack": spec.stack_name,
        "calibration_sha256": None,
        "configs": {config.label: {"makespan": None, "emulated": True}},
        "winner": config.label,
        "paper_best": None,
        "figure": None,
        "paper_hit": None,
        "emulated": True,
    }
    digest = hashlib.sha256(
        f"emulated|{spec.name}|{spec.ranks}|{spec.iterations}|{config.label}".encode()
    )
    cell = StoredCell(
        cell_id=digest.hexdigest()[:16],
        key=f"{spec.name}@{spec.ranks}",
        deterministic=deterministic,
        host=host.as_record(),
        provenance={},
    )
    store.append_cell(campaign, cell)
    return cell


# ----------------------------------------------------------------------
# Rehydration: stored campaign -> comparable view.
# ----------------------------------------------------------------------
def campaign_from_store(stored: StoredCampaign) -> CampaignRun:
    """Rebuild a :class:`CampaignRun` view from a stored campaign."""
    run = CampaignRun(
        name=stored.name, suite=stored.header.get("suite", "custom")
    )
    for cell in stored.cells:
        deterministic = cell.deterministic
        run.cells.append(
            CellResult(
                key=cell.key,
                family=deterministic.get("family", cell.key),
                ranks=int(deterministic.get("ranks", 0)),
                cell_id=cell.cell_id,
                deterministic=deterministic,
                host=host_metrics_from_record(cell.host),
                provenance=cell.provenance,
            )
        )
    return run


# ----------------------------------------------------------------------
# Diff / regression engine.
# ----------------------------------------------------------------------
@dataclass
class MakespanDrift:
    key: str
    config: str
    before: float
    after: float
    #: Attribution sentence for the bucket that moved most ("drain on
    #: pmem[1] grew 38.2% (...)"); None when neither cell is attributed.
    explanation: Optional[str] = None

    @property
    def relative(self) -> float:
        return (self.after - self.before) / self.before if self.before else 0.0


@dataclass
class WinnerFlip:
    key: str
    before: str
    after: str
    paper_best: Optional[str]
    #: Why the flip happened, from the before-winner's attribution shift.
    #: Always populated by :func:`diff_campaigns` (with an explicit
    #: "no attribution recorded" fallback) so every flip gets a line.
    explanation: str = "no attribution recorded for either campaign"

    @property
    def vs_paper(self) -> str:
        if self.paper_best is None:
            return "no paper expectation"
        if self.after == self.paper_best:
            return f"now matches paper ({self.paper_best})"
        if self.before == self.paper_best:
            return f"was the paper winner ({self.paper_best}), now is not"
        return f"paper expects {self.paper_best}"


@dataclass
class ClaimChange:
    key: str
    before_hit: Optional[bool]
    after_hit: Optional[bool]

    @property
    def regressed(self) -> bool:
        return bool(self.before_hit) and not self.after_hit


@dataclass
class CampaignDiff:
    """Everything that changed between two campaigns' deterministic payloads."""

    name_a: str
    name_b: str
    threshold: float
    only_in_a: List[str] = field(default_factory=list)
    only_in_b: List[str] = field(default_factory=list)
    drifts: List[MakespanDrift] = field(default_factory=list)
    winner_flips: List[WinnerFlip] = field(default_factory=list)
    claim_changes: List[ClaimChange] = field(default_factory=list)
    calibration_changed: List[str] = field(default_factory=list)
    identical_cells: int = 0

    @property
    def regressions(self) -> int:
        """Winner flips + paper-claim regressions + over-threshold drifts."""
        return (
            len(self.winner_flips)
            + sum(1 for change in self.claim_changes if change.regressed)
            + len(self.drifts)
        )

    # -- rendering ------------------------------------------------------
    def render_text(self) -> str:
        lines = [
            f"campaign diff: {self.name_a} -> {self.name_b} "
            f"(drift threshold {self.threshold:.1%})"
        ]
        for key in self.only_in_a:
            lines.append(f"-- {key}: only in {self.name_a}")
        for key in self.only_in_b:
            lines.append(f"++ {key}: only in {self.name_b}")
        for key in self.calibration_changed:
            lines.append(f"~~ {key}: calibration changed (cell id differs)")
        for flip in self.winner_flips:
            lines.append(
                f"!! {flip.key}: winner {flip.before} -> {flip.after} "
                f"({flip.vs_paper})"
            )
            lines.append(f"   why: {flip.explanation}")
        for change in self.claim_changes:
            direction = "regressed" if change.regressed else "recovered"
            lines.append(
                f"!! {change.key}: paper claim {direction} "
                f"({change.before_hit} -> {change.after_hit})"
            )
        for drift in self.drifts:
            lines.append(
                f">> {drift.key} [{drift.config}]: makespan "
                f"{fmt_time(drift.before)} -> {fmt_time(drift.after)} "
                f"({drift.relative:+.1%})"
            )
            if drift.explanation:
                lines.append(f"   why: {drift.explanation}")
        lines.append(
            f"{self.identical_cells} identical cell(s), "
            f"{self.regressions} regression(s)"
        )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [
            f"# Campaign diff: `{self.name_a}` → `{self.name_b}`",
            "",
            f"Drift threshold {self.threshold:.1%} — "
            f"**{self.regressions} regression(s)**, "
            f"{self.identical_cells} identical cell(s).",
            "",
        ]
        if self.winner_flips:
            lines += [
                "## Winner flips",
                "",
                "| cell | before | after | vs paper | why |",
                "|---|---|---|---|---|",
            ]
            lines += [
                f"| {flip.key} | {flip.before} | {flip.after} "
                f"| {flip.vs_paper} | {flip.explanation} |"
                for flip in self.winner_flips
            ]
            lines.append("")
        if self.claim_changes:
            lines += ["## Paper-claim status changes", "", "| cell | before | after |", "|---|---|---|"]
            lines += [
                f"| {change.key} | {change.before_hit} | {change.after_hit} |"
                for change in self.claim_changes
            ]
            lines.append("")
        if self.drifts:
            lines += [
                "## Makespan drift",
                "",
                "| cell | config | before | after | drift | why |",
                "|---|---|---|---|---|---|",
            ]
            lines += [
                f"| {d.key} | {d.config} | {fmt_time(d.before)} "
                f"| {fmt_time(d.after)} | {d.relative:+.1%} "
                f"| {d.explanation or '-'} |"
                for d in self.drifts
            ]
            lines.append("")
        if self.only_in_a or self.only_in_b:
            lines.append("## Coverage changes")
            lines.append("")
            lines += [f"- `{key}` only in `{self.name_a}`" for key in self.only_in_a]
            lines += [f"- `{key}` only in `{self.name_b}`" for key in self.only_in_b]
            lines.append("")
        return "\n".join(lines)


def diff_campaigns(
    a: CampaignRun,
    b: CampaignRun,
    threshold: float = DEFAULT_DRIFT_THRESHOLD,
) -> CampaignDiff:
    """Compare two campaigns cell by cell (matched on ``family@ranks``).

    Cells are matched by suite coordinate, *not* cell id, so a calibration
    change shows up as drift/flips on the same cells (plus a calibration
    note) rather than as wholesale removal + addition.
    """
    from repro.obs.explain import drift_explanation, flip_explanation

    diff = CampaignDiff(name_a=a.name, name_b=b.name, threshold=threshold)
    cells_a = {cell.key: cell for cell in a.cells}
    cells_b = {cell.key: cell for cell in b.cells}
    diff.only_in_a = sorted(set(cells_a) - set(cells_b))
    diff.only_in_b = sorted(set(cells_b) - set(cells_a))
    for key in sorted(set(cells_a) & set(cells_b)):
        cell_a, cell_b = cells_a[key], cells_b[key]
        changed = False
        if cell_a.cell_id != cell_b.cell_id:
            diff.calibration_changed.append(key)
            changed = True
        configs_a = cell_a.deterministic.get("configs", {})
        configs_b = cell_b.deterministic.get("configs", {})
        for label in sorted(set(configs_a) & set(configs_b)):
            before = configs_a[label].get("makespan")
            after = configs_b[label].get("makespan")
            if before is None or after is None:
                continue
            if before > 0 and abs(after - before) / before > threshold:
                diff.drifts.append(
                    MakespanDrift(
                        key=key,
                        config=label,
                        before=before,
                        after=after,
                        explanation=drift_explanation(
                            configs_a[label], configs_b[label]
                        ),
                    )
                )
                changed = True
        if cell_a.winner != cell_b.winner:
            diff.winner_flips.append(
                WinnerFlip(
                    key=key,
                    before=cell_a.winner,
                    after=cell_b.winner,
                    paper_best=cell_b.paper_best,
                    explanation=flip_explanation(
                        cell_a.winner, cell_b.winner, configs_a, configs_b
                    ),
                )
            )
            changed = True
        if cell_a.paper_hit != cell_b.paper_hit:
            diff.claim_changes.append(
                ClaimChange(
                    key=key,
                    before_hit=cell_a.paper_hit,
                    after_hit=cell_b.paper_hit,
                )
            )
            changed = True
        if not changed:
            diff.identical_cells += 1
    return diff


# ----------------------------------------------------------------------
# Dashboards.
# ----------------------------------------------------------------------
def _heatmap_cell(makespan: float, best: float, is_winner: bool) -> str:
    if best <= 0:
        return "-"
    normalized = makespan / best
    text = f"{normalized:.2f}"
    return f"**{text}**" if is_winner else text


def _memo_warnings(run: CampaignRun) -> List[str]:
    """Cells where the solver reuses *nothing* despite being exercised.

    GTC-class workflows were the ROADMAP's "next 10×" target because
    BENCH_simcore once showed their memo hit rate pinned at 0.0.  The
    share-state tokens (PR-10) fixed that: read-only solve phases now
    memo-hit across the congestion EWMA's drift, and untouched connected
    components replay cached rates (``solver_components_skipped``).  A
    GTC cell showing either signal is the fast path working as designed,
    so only a cell with *neither* memo hits *nor* skipped components —
    every solve recomputed from scratch — still warns.
    """
    warnings = []
    for cell in run.cells:
        if not cell.key.startswith("gtc"):
            continue
        misses = cell.host.solver_memo_misses
        reused = cell.host.solver_memo_hits + cell.host.solver_components_skipped
        if misses > 0 and reused == 0:
            warnings.append(
                f"{cell.key}: solver reused no work "
                f"(0 memo hits / {misses:.0f} misses, 0 components "
                "skipped) — every flow solve recomputed from scratch"
            )
    return warnings


def campaign_report(run: CampaignRun, markdown: bool = True) -> str:
    """The suite dashboard: heatmap, paper hit rate, host cost summary."""
    config_labels: List[str] = []
    for cell in run.cells:
        for label in cell.deterministic.get("configs", {}):
            if label not in config_labels:
                config_labels.append(label)
    lines: List[str] = []
    hits, expected = run.hit_rate
    host = run.host_total()
    memo_warnings = _memo_warnings(run)
    memo_lookups = host.solver_memo_hits + host.solver_memo_misses
    # Synthetic/imported runs without solver counters skip the memo note.
    memo_line = (
        f"solver memo hit rate {host.memo_hit_rate:.1%} "
        f"({host.solver_memo_hits:.0f}/{memo_lookups:.0f})"
        if memo_lookups
        else ""
    )
    if markdown:
        head = f"{len(run.cells)} cell(s)"
        if expected:
            head += f"; paper-winner hit rate **{hits}/{expected}**"
        if memo_line:
            head += f"; {memo_line}"
        lines += [
            f"# Campaign `{run.name}` ({run.suite} suite)",
            "",
            head + ".",
            "",
        ]
        for warning in memo_warnings:
            lines.append(f"> **Warning:** {warning}")
        if memo_warnings:
            lines.append("")
        lines += [
            "## Runtime heatmap (normalized to each cell's best config)",
            "",
            "| cell | " + " | ".join(config_labels) + " | winner | paper |",
            "|---|" + "---|" * (len(config_labels) + 2),
        ]
        for cell in run.cells:
            configs = cell.deterministic.get("configs", {})
            makespans = {
                label: entry.get("makespan")
                for label, entry in configs.items()
                if entry.get("makespan") is not None
            }
            best = min(makespans.values()) if makespans else 0.0
            row = [cell.key]
            for label in config_labels:
                makespan = makespans.get(label)
                row.append(
                    _heatmap_cell(makespan, best, label == cell.winner)
                    if makespan is not None
                    else "-"
                )
            paper = cell.paper_best or "-"
            if cell.paper_hit is True:
                paper += " ✓"
            elif cell.paper_hit is False:
                paper += " ✗"
            row += [cell.winner, paper]
            lines.append("| " + " | ".join(row) + " |")
        lines += [
            "",
            "## Host cost",
            "",
            "| metric | value |",
            "|---|---|",
            f"| wall seconds (total) | {host.wall_seconds:.2f} |",
            f"| simulated seconds (total) | {host.simulated_seconds:.2f} |",
            f"| sim-seconds / wall-second | {host.sim_seconds_per_wall_second:.1f} |",
            f"| engine events | {host.events_executed:.0f} |",
            f"| events / wall-second | {host.events_per_wall_second:.0f} |",
            f"| flow recomputations | {host.flow_recomputes:.0f} |",
            f"| solver iterations | {host.solver_iterations:.0f} |",
            f"| solver classes (summed) | {host.solver_classes:.0f} |",
            f"| memo hit rate | {host.memo_hit_rate:.1%} "
            f"({host.solver_memo_hits:.0f}/"
            f"{host.solver_memo_hits + host.solver_memo_misses:.0f}) |",
            f"| recomputes coalesced | {host.recomputes_coalesced:.0f} |",
            f"| components skipped | {host.solver_components_skipped:.0f} |",
            f"| vector batches | {host.vector_batches:.0f} |",
            f"| peak tracemalloc bytes | {host.peak_tracemalloc_bytes} |",
            "",
        ]
        if host.hotspots:
            lines += [
                "## Hotspots (aggregated cProfile, by cumulative time)",
                "",
                "| function | calls | tottime (s) | cumtime (s) |",
                "|---|---|---|---|",
            ]
            lines += [
                f"| `{spot.function}` | {spot.calls} "
                f"| {spot.tottime:.3f} | {spot.cumtime:.3f} |"
                for spot in host.hotspots
            ]
            lines.append("")
        return "\n".join(lines)
    # Terminal rendering: compact fixed-width table.
    lines.append(f"== campaign {run.name} ({run.suite} suite) ==")
    if expected:
        lines.append(f"paper-winner hit rate: {hits}/{expected}")
    if memo_line:
        lines.append(memo_line)
    for warning in memo_warnings:
        lines.append(f"WARNING: {warning}")
    header = f"{'cell':<22}" + "".join(f"{label:>9}" for label in config_labels)
    lines.append(header + f"  {'winner':>8}  paper")
    for cell in run.cells:
        configs = cell.deterministic.get("configs", {})
        makespans = {
            label: entry.get("makespan")
            for label, entry in configs.items()
            if entry.get("makespan") is not None
        }
        best = min(makespans.values()) if makespans else 0.0
        row = f"{cell.key:<22}"
        for label in config_labels:
            makespan = makespans.get(label)
            if makespan is None or best <= 0:
                row += f"{'-':>9}"
            else:
                row += f"{makespan / best:>9.2f}"
        paper = cell.paper_best or "-"
        if cell.paper_hit is True:
            paper += " hit"
        elif cell.paper_hit is False:
            paper += " MISS"
        lines.append(row + f"  {cell.winner:>8}  {paper}")
    lines.append(
        f"host: {host.wall_seconds:.2f}s wall, "
        f"{host.sim_seconds_per_wall_second:.1f} sim-s/wall-s, "
        f"{host.events_executed:.0f} events, "
        f"peak {host.peak_tracemalloc_bytes} bytes"
    )
    for spot in host.hotspots:
        lines.append(
            f"  hot {spot.function}  x{spot.calls}  "
            f"tot {spot.tottime:.3f}s  cum {spot.cumtime:.3f}s"
        )
    return "\n".join(lines)


def bench_record(run: CampaignRun) -> Dict[str, Any]:
    """The ``BENCH_campaign.json`` payload: the recorded perf trajectory."""
    host = run.host_total()
    return {
        "bench": "campaign",
        "campaign": run.name,
        "suite": run.suite,
        "cells": len(run.cells),
        "runs": host.runs,
        "wall_seconds_total": host.wall_seconds,
        "simulated_seconds_total": host.simulated_seconds,
        "sim_seconds_per_wall_second": host.sim_seconds_per_wall_second,
        "events_executed": host.events_executed,
        "events_per_wall_second": host.events_per_wall_second,
        "flow_recomputes": host.flow_recomputes,
        "solver_iterations": host.solver_iterations,
        "solver_classes": host.solver_classes,
        "solver_memo_hits": host.solver_memo_hits,
        "solver_memo_misses": host.solver_memo_misses,
        "memo_hit_rate": host.memo_hit_rate,
        "recomputes_coalesced": host.recomputes_coalesced,
        "solver_components_skipped": host.solver_components_skipped,
        "vector_batches": host.vector_batches,
        "peak_tracemalloc_bytes": host.peak_tracemalloc_bytes,
    }
