"""Observed runs: the object graph tying probes, trace, manifest, result.

An :class:`Observation` is created per run — either explicitly::

    from repro.obs import observe_workflow
    obs = observe_workflow(spec, S_LOCW)
    print(obs.result.makespan, obs.probes.counter_total("channel.versions_published"))

— or implicitly for *every* ``run_workflow`` call inside a capture
context, which is how the experiments CLI records whole experiment runs
without threading a parameter through every call site::

    from repro.obs import capture_runs
    with capture_runs() as session:
        run_experiment(...)
    export(session.observations)

The capture stack is intentionally simple (a module-level LIFO): the
simulator is single-threaded per run, and nested contexts compose by
innermost-wins.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.obs.hooks import ChannelHooks, EngineHooks, NetworkHooks
from repro.obs.manifest import RunManifest
from repro.obs.probes import ProbeRegistry
from repro.obs.spans import Span, build_spans

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.results import RunResult
    from repro.sim.engine import Engine
    from repro.sim.trace import Tracer


class Observation:
    """All observability state of one observed workflow run."""

    def __init__(self) -> None:
        self.probes = ProbeRegistry(enabled=True)
        self.manifest: Optional[RunManifest] = None
        self.tracer: Optional["Tracer"] = None
        self.result: Optional["RunResult"] = None
        self._spans: Optional[List[Span]] = None
        #: Flow-solver strategy counters (classes, memo hits/misses,
        #: coalesced recomputes), latched from the network at finalize.
        #: Host-side accounting only — deliberately NOT probes, so trace
        #: and metrics exports stay identical across solver modes.
        self.solver_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Hook factories used by the workflow runner while wiring a run.
    # ------------------------------------------------------------------
    def engine_hooks(self) -> EngineHooks:
        return EngineHooks(self.probes)

    def network_hooks(self) -> NetworkHooks:
        return NetworkHooks(self.probes)

    def channel_hooks(self) -> ChannelHooks:
        return ChannelHooks(self.probes)

    # ------------------------------------------------------------------
    @property
    def run_id(self) -> str:
        """Stable identifier: ``workflow|config``."""
        if self.manifest is None:
            return "<unbound>"
        return f"{self.manifest.workflow}|{self.manifest.config}"

    @property
    def finalized(self) -> bool:
        return self.result is not None

    def finalize(
        self,
        engine: "Engine",
        result: "RunResult",
        network: Optional[object] = None,
    ) -> None:
        """Latch end-of-run state: engine totals and the run result.

        *network*, when given, contributes the flow-solver strategy
        counters to :attr:`solver_stats` (plain attributes, not probes —
        they describe how the solve was computed, not what was simulated).
        """
        if self.finalized:
            raise SimulationError(f"observation {self.run_id} finalized twice")
        now = engine.now
        self.probes.counter("engine.events_executed").add(now, engine.events_executed)
        self.probes.counter("engine.timers_scheduled").add(now, engine.timers_scheduled)
        self.probes.counter("engine.timer_cancellations").add(
            now, engine.timers_cancelled_skipped
        )
        self.probes.gauge("engine.peak_queue_depth").set(
            now, engine.peak_queue_depth
        )
        if network is not None:
            self.solver_stats = {
                "solver_classes": network.solver_classes,
                "solver_memo_hits": network.memo_hits,
                "solver_memo_misses": network.memo_misses,
                "recomputes_coalesced": network.recomputes_coalesced,
                "solver_components_skipped": network.solver_components_skipped,
                "vector_batches": network.vector_batches,
            }
        self.result = result

    def spans(self) -> List[Span]:
        """The run's span tree (built lazily from the tracer, then cached)."""
        if self._spans is None:
            if self.tracer is None or self.result is None:
                raise SimulationError(
                    "observation has no finalized trace to build spans from"
                )
            self._spans = build_spans(
                self.tracer,
                run_name=self.run_id,
                makespan=self.result.makespan,
            )
        return self._spans


class CaptureSession:
    """Collects an :class:`Observation` per run executed inside a context."""

    def __init__(self) -> None:
        self.observations: List[Observation] = []

    def begin_run(self) -> Observation:
        """Called by ``run_workflow`` when it starts a run under capture."""
        observation = Observation()
        self.observations.append(observation)
        return observation

    @property
    def finalized(self) -> List[Observation]:
        """Observations whose runs completed (skips aborted runs)."""
        return [obs for obs in self.observations if obs.finalized]


_SESSIONS: List[CaptureSession] = []  # noqa: SVC401 process-local context stack; capture never crosses workers


def active_session() -> Optional[CaptureSession]:
    """The innermost active capture session, if any."""
    return _SESSIONS[-1] if _SESSIONS else None


@contextmanager
def capture_runs() -> Iterator[CaptureSession]:
    """Observe every ``run_workflow`` call in the dynamic extent."""
    session = CaptureSession()
    _SESSIONS.append(session)
    try:
        yield session
    finally:
        _SESSIONS.remove(session)


def observe_workflow(spec, config, **run_kwargs) -> Observation:
    """Run *spec* under *config* with full observability and return it.

    Accepts the same keyword arguments as
    :func:`repro.workflow.runner.run_workflow` (``cal``, ``compute_jitter``,
    sockets, ...).
    """
    from repro.workflow.runner import run_workflow

    observation = Observation()
    run_workflow(spec, config, observation=observation, **run_kwargs)
    return observation
