"""Exporters: Chrome trace-event JSON, JSONL span/metric records.

The Chrome trace-event format (the ``chrome://tracing`` / Perfetto JSON
dialect) is the interchange target:

* each observed run is one *process* (``pid``), named
  ``"<workflow> [<config>]"``;
* each rank is one *thread* (``tid``) inside that process — writer ranks
  at ``tid == rank``, reader ranks offset by :data:`READER_TID_OFFSET` so
  the two components group into separate bands;
* iteration and phase spans become nested ``"X"`` (complete) events on the
  rank's thread, so Perfetto renders the per-rank flamegraph directly;
* counters and gauges become ``"C"`` (counter) events, which Perfetto
  draws as per-process counter tracks (queue depth, active flows,
  bytes-moved staircases, reader lag, ...).

Timestamps are virtual seconds converted to the format's microseconds.
All output is deterministic: events are emitted in sorted-instrument and
sorted-span order and serialized with sorted keys, so two identical runs
export byte-identical JSON (a test enforces this).

A ``"repro"`` top-level key carries what the trace viewer does not:
per-run makespans, counter totals, gauge peaks and the full provenance
manifest.  The reconciliation tests (counter totals vs. the metrics
layer) and ``python -m repro.obs diff`` read that section rather than
re-deriving state from raw events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.obs.capture import Observation
from repro.obs.probes import Counter, Gauge
from repro.obs.spans import Span
from repro.units import MICROSECOND

#: Thread-id offset separating reader-rank tracks from writer-rank tracks.
READER_TID_OFFSET = 1000

#: Thread id counter events are attached to (Perfetto scopes "C" events to
#: the process, so this never collides with a rank's slice track).
COUNTER_TID = 0

#: Event phases the validator accepts (the subset this exporter emits).
VALID_PHASES = ("X", "C", "M")

#: Metadata event names the validator accepts.
METADATA_NAMES = (
    "process_name",
    "process_sort_index",
    "thread_name",
    "thread_sort_index",
)


def _microseconds(seconds: float) -> float:
    """Virtual seconds -> trace-format microseconds."""
    return seconds / MICROSECOND


def _tid(component: str, rank: int) -> int:
    """Deterministic thread id for a (component, rank) track."""
    if component == "writer":
        base = 0
    elif component == "reader":
        base = READER_TID_OFFSET
    else:
        # Unknown components (custom tracers) get bands above the readers,
        # ordered by name so the mapping is deterministic.
        base = READER_TID_OFFSET * 2
    return base + rank


def _span_event(span: Span, pid: int) -> Dict[str, Any]:
    args: Dict[str, Any] = {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "iteration": span.iteration,
    }
    for key in sorted(span.attributes):
        args[key] = span.attributes[key]
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": _microseconds(span.start),
        "dur": _microseconds(span.duration),
        "pid": pid,
        "tid": _tid(span.component, span.rank),
        "args": args,
    }


def _counter_events(
    instrument: Any, pid: int, events: List[Dict[str, Any]]
) -> None:
    for when, value in instrument.samples:
        events.append(
            {
                "name": instrument.label,
                "ph": "C",
                "ts": _microseconds(when),
                "pid": pid,
                "tid": COUNTER_TID,
                "args": {"value": value},
            }
        )


def _metadata(pid: int, tid: int, name: str, value: Any) -> Dict[str, Any]:
    key = "name" if name.endswith("_name") else "sort_index"
    return {
        "name": name,
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": {key: value},
    }


def _run_summary(observation: Observation, pid: int) -> Dict[str, Any]:
    if observation.result is None or observation.manifest is None:
        raise SimulationError(
            "cannot export an observation before its run finalized"
        )
    counters: Dict[str, float] = {}
    gauges: Dict[str, Dict[str, float]] = {}
    for instrument in observation.probes.instruments():
        if isinstance(instrument, Counter):
            counters[instrument.label] = instrument.total
        elif isinstance(instrument, Gauge):
            gauges[instrument.label] = {
                "last": instrument.value,
                "peak": instrument.peak,
            }
    result = observation.result
    return {
        "pid": pid,
        "run_id": observation.run_id,
        "makespan": result.makespan,
        "writer_runtime": result.writer_runtime,
        "reader_runtime": result.reader_runtime,
        "bytes_written": result.bytes_written,
        "bytes_read": result.bytes_read,
        "counters": counters,
        "gauges": gauges,
        "manifest": observation.manifest.as_dict(),
    }


def chrome_trace(observations: Sequence[Observation]) -> Dict[str, Any]:
    """Build the Chrome trace-event document for one or more observed runs.

    Pass the finalized observations of a capture session (or a single-item
    list).  Each run becomes its own process; loading the file in Perfetto
    shows one process group per (workflow, configuration).
    """
    if isinstance(observations, Observation):
        observations = [observations]
    events: List[Dict[str, Any]] = []
    runs: List[Dict[str, Any]] = []
    for index, observation in enumerate(observations):
        pid = index + 1
        runs.append(_run_summary(observation, pid))
        manifest = observation.manifest
        events.append(
            _metadata(
                pid, 0, "process_name", f"{manifest.workflow} [{manifest.config}]"
            )
        )
        events.append(_metadata(pid, 0, "process_sort_index", index))
        named_tids = set()
        spans = observation.spans()
        for span in spans:
            if span.category in ("run",):
                continue
            tid = _tid(span.component, span.rank)
            if tid not in named_tids:
                named_tids.add(tid)
                events.append(
                    _metadata(
                        pid, tid, "thread_name", f"{span.component} {span.rank}"
                    )
                )
                events.append(_metadata(pid, tid, "thread_sort_index", tid))
            if span.category == "rank":
                continue  # the thread itself is the rank's track
            events.append(_span_event(span, pid))
        for instrument in observation.probes.instruments():
            if isinstance(instrument, (Counter, Gauge)):
                _counter_events(instrument, pid, events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "repro": {
            "schema_version": runs[0]["manifest"]["schema_version"] if runs else 0,
            "runs": runs,
        },
    }


def to_json(document: Any) -> str:
    """Deterministic serialization (sorted keys, stable layout)."""
    return json.dumps(document, sort_keys=True, indent=1) + "\n"


# ----------------------------------------------------------------------
# JSONL record dumps (spans and metrics as flat, greppable streams).
# ----------------------------------------------------------------------
def span_records(observations: Sequence[Observation]) -> List[Dict[str, Any]]:
    """One flat dict per span across all runs (for the JSONL dump)."""
    if isinstance(observations, Observation):
        observations = [observations]
    records = []
    for observation in observations:
        for span in observation.spans():
            records.append(
                {
                    "run_id": observation.run_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "category": span.category,
                    "component": span.component,
                    "rank": span.rank,
                    "iteration": span.iteration,
                    "start": span.start,
                    "end": span.end,
                    "duration": span.duration,
                    "attributes": dict(span.attributes),
                }
            )
    return records


def metrics_records(observations: Sequence[Observation]) -> List[Dict[str, Any]]:
    """One flat dict per instrument across all runs (for the JSONL dump)."""
    if isinstance(observations, Observation):
        observations = [observations]
    records = []
    for observation in observations:
        for data in observation.probes.as_records():
            record = {"run_id": observation.run_id}
            record.update(data)
            records.append(record)
    return records


def to_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """Deterministic JSONL serialization of flat records."""
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


# ----------------------------------------------------------------------
# Schema validation.
# ----------------------------------------------------------------------
def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_common(event: Any, index: int, problems: List[str]) -> bool:
    prefix = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        problems.append(f"{prefix}: not an object")
        return False
    ok = True
    for field_name in ("name", "ph"):
        if not isinstance(event.get(field_name), str) or not event.get(field_name):
            problems.append(f"{prefix}: missing/empty {field_name!r}")
            ok = False
    for field_name in ("pid", "tid"):
        if not isinstance(event.get(field_name), int):
            problems.append(f"{prefix}: {field_name!r} must be an integer")
            ok = False
    if not _is_number(event.get("ts")) or event.get("ts", -1) < 0:
        problems.append(f"{prefix}: 'ts' must be a number >= 0")
        ok = False
    return ok


def validate_chrome_trace(document: Any) -> List[str]:
    """Check *document* against the trace-event schema this package emits.

    Returns a list of human-readable problems; an empty list means the
    document is valid.  Used by the tests, the CLI ``validate`` command and
    the CI artifact step.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["top level: expected a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: 'traceEvents' must be a list"]
    for index, event in enumerate(events):
        if not _check_common(event, index, problems):
            continue
        prefix = f"traceEvents[{index}]"
        phase = event["ph"]
        if phase not in VALID_PHASES:
            problems.append(f"{prefix}: unknown phase {phase!r}")
            continue
        if phase == "X":
            if not _is_number(event.get("dur")) or event.get("dur", -1) < 0:
                problems.append(f"{prefix}: 'X' event needs 'dur' >= 0")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{prefix}: 'C' event needs non-empty 'args'")
            elif not all(_is_number(v) for v in args.values()):
                problems.append(f"{prefix}: 'C' event args must be numeric")
        elif phase == "M":
            if event["name"] not in METADATA_NAMES:
                problems.append(
                    f"{prefix}: unknown metadata event {event['name']!r}"
                )
            if not isinstance(event.get("args"), dict):
                problems.append(f"{prefix}: 'M' event needs 'args'")
    repro = document.get("repro")
    if repro is not None:
        if not isinstance(repro, dict) or not isinstance(repro.get("runs"), list):
            problems.append("'repro' section must be an object with a 'runs' list")
        else:
            for index, run in enumerate(repro["runs"]):
                if not isinstance(run, dict):
                    problems.append(f"repro.runs[{index}]: not an object")
                    continue
                for field_name in ("run_id", "makespan", "manifest"):
                    if field_name not in run:
                        problems.append(
                            f"repro.runs[{index}]: missing {field_name!r}"
                        )
    return problems


def trace_makespans(document: Dict[str, Any]) -> Dict[str, float]:
    """``run_id -> makespan`` from an exported trace document."""
    repro: Optional[Dict[str, Any]] = document.get("repro")
    if not repro:
        return {}
    return {run["run_id"]: run["makespan"] for run in repro.get("runs", [])}
