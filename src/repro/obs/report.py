"""Text reports over observed runs: hot phases and run-to-run diffs.

``hot_phase_report`` answers "where did the virtual time go" without
leaving the terminal: leaf phase spans are aggregated per
``component;phase`` stack (flamegraph convention) and rendered as a
sorted bar chart with totals, call counts and share of makespan.

``diff_report`` compares two exported trace documents (the ``"repro"``
section written by :func:`repro.obs.export.chrome_trace`) run by run:
makespan movement, counter-total deltas and manifest changes.  Because it
reads exported files rather than live objects, it diffs anything —
two configs, two code versions, two calibration tables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.obs.capture import Observation
from repro.obs.spans import leaf_spans
from repro.units import fmt_time

#: Width of the textual bar in the hot-phase report.
BAR_WIDTH = 30

#: Relative change below which a counter/makespan delta is noise, not news.
DIFF_EPSILON = 1e-9


def _phase_totals(observation: Observation) -> Dict[str, Tuple[float, int]]:
    """``component;phase`` stack -> (total seconds, span count)."""
    totals: Dict[str, Tuple[float, int]] = {}
    for span in leaf_spans(observation.spans()):
        stack = f"{span.component};{span.name}"
        seconds, count = totals.get(stack, (0.0, 0))
        totals[stack] = (seconds + span.duration, count + 1)
    return totals


def hot_phase_report(observations: Sequence[Observation]) -> str:
    """Flamegraph-style text report of where virtual time was spent."""
    if isinstance(observations, Observation):
        observations = [observations]
    lines: List[str] = []
    for observation in observations:
        makespan = observation.result.makespan if observation.result else 0.0
        lines.append(f"== {observation.run_id} — makespan {fmt_time(makespan)} ==")
        totals = _phase_totals(observation)
        if not totals:
            lines.append("  (no trace records)")
            continue
        widest = max(totals.values(), key=lambda item: item[0])[0]
        ordered = sorted(totals.items(), key=lambda item: (-item[1][0], item[0]))
        stack_width = max(len(stack) for stack in totals)
        for stack, (seconds, count) in ordered:
            bar = "#" * max(1, round(BAR_WIDTH * seconds / widest)) if widest else ""
            share = 100.0 * seconds / makespan if makespan else 0.0
            lines.append(
                f"  {stack:<{stack_width}}  {fmt_time(seconds):>10}"
                f"  {share:5.1f}%  x{count:<5d} {bar}"
            )
        waits = observation.probes.counter_total("channel.version_waits")
        published = observation.probes.counter_total("channel.versions_published")
        events = observation.probes.counter_total("engine.events_executed")
        lines.append(
            f"  engine events {events:.0f}, versions published {published:.0f}, "
            f"reader waits {waits:.0f}"
        )
    return "\n".join(lines)


def utilization_report(observations: Sequence[Observation]) -> str:
    """Busy/wait/idle fractions per component and resource, per run.

    The ``summary`` CLI's second table (the first is the hot-phase bar
    chart); the same rows feed ``explain top``.  Component rows average
    over ranks from the leaf spans; resource rows integrate the
    ``resource.occupancy`` gauges over ``[0, makespan]``.
    """
    from repro.obs.explain import render_utilization, utilization_rows

    if isinstance(observations, Observation):
        observations = [observations]
    lines: List[str] = []
    for observation in observations:
        lines.append(f"== {observation.run_id} — utilization ==")
        lines.append(render_utilization(utilization_rows(observation)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Diffing exported traces.
# ----------------------------------------------------------------------
def _runs_by_id(document: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    repro = document.get("repro") or {}
    return {run["run_id"]: run for run in repro.get("runs", [])}


def _fmt_delta(before: float, after: float) -> str:
    delta = after - before
    if abs(before) > DIFF_EPSILON:
        return f"{before:g} -> {after:g} ({100.0 * delta / before:+.1f}%)"
    return f"{before:g} -> {after:g}"


def diff_report(
    document_a: Dict[str, Any], document_b: Dict[str, Any]
) -> str:
    """Human-readable run-by-run diff of two exported trace documents."""
    runs_a = _runs_by_id(document_a)
    runs_b = _runs_by_id(document_b)
    lines: List[str] = []
    for run_id in sorted(set(runs_a) - set(runs_b)):
        lines.append(f"-- {run_id}: only in first trace")
    for run_id in sorted(set(runs_b) - set(runs_a)):
        lines.append(f"++ {run_id}: only in second trace")
    for run_id in sorted(set(runs_a) & set(runs_b)):
        run_a, run_b = runs_a[run_id], runs_b[run_id]
        changes: List[str] = []
        makespan_a, makespan_b = run_a["makespan"], run_b["makespan"]
        if abs(makespan_b - makespan_a) > DIFF_EPSILON * max(1.0, abs(makespan_a)):
            changes.append(f"makespan: {_fmt_delta(makespan_a, makespan_b)}")
        counters_a = run_a.get("counters", {})
        counters_b = run_b.get("counters", {})
        for label in sorted(set(counters_a) | set(counters_b)):
            value_a = counters_a.get(label, 0.0)
            value_b = counters_b.get(label, 0.0)
            if abs(value_b - value_a) > DIFF_EPSILON * max(1.0, abs(value_a)):
                changes.append(f"counter {label}: {_fmt_delta(value_a, value_b)}")
        manifest_a = run_a.get("manifest", {})
        manifest_b = run_b.get("manifest", {})
        for key in sorted(set(manifest_a) | set(manifest_b)):
            if manifest_a.get(key) != manifest_b.get(key):
                changes.append(
                    f"manifest {key}: {manifest_a.get(key)!r} -> "
                    f"{manifest_b.get(key)!r}"
                )
        if changes:
            lines.append(f"== {run_id}")
            lines.extend(f"   {change}" for change in changes)
        else:
            lines.append(f"== {run_id}: identical")
    if not lines:
        lines.append("(no runs in either trace)")
    return "\n".join(lines)
