"""repro.obs — virtual-time observability for the simulator.

Everything the paper's analysis needs to *explain* a run — which rank
stalled on a version wait, which socket's PMEM saturated, how far achieved
bandwidth fell below the model ceiling — flows through this package:

* :mod:`repro.obs.probes` — the instrumentation API: counters, gauges and
  histograms keyed on **virtual** time.  The engine, the fluid-flow
  network, the PMEM devices and the NVStream channel all emit into a
  :class:`~repro.obs.probes.ProbeRegistry`; when no registry is attached
  the emission sites are a single ``is None`` branch (zero overhead).
* :mod:`repro.obs.spans` — hierarchical spans (run -> rank -> iteration ->
  phase) layered on the existing :class:`~repro.sim.trace.Tracer`,
  OTel-inspired but clocked on ``engine.now``.
* :mod:`repro.obs.manifest` — run provenance: spec, configuration,
  calibration-table hash, git SHA and determinism inputs, so every
  exported trace can be reproduced.
* :mod:`repro.obs.capture` — :class:`~repro.obs.capture.Observation`
  (one observed run) and the capture context that wires observability
  into ``run_workflow`` and the experiments CLI.
* :mod:`repro.obs.export` — Chrome trace-event JSON (loads in Perfetto /
  ``chrome://tracing``), JSONL span and metric dumps, and the trace
  schema validator.
* :mod:`repro.obs.report` — the text hot-phase report and run diffing.
* ``python -m repro.obs`` — the ``export`` / ``summary`` / ``diff`` /
  ``validate`` command line (:mod:`repro.obs.cli`).
"""

from repro.obs.capture import Observation, capture_runs, observe_workflow
from repro.obs.export import (
    chrome_trace,
    metrics_records,
    span_records,
    to_json,
    to_jsonl,
    trace_makespans,
    validate_chrome_trace,
)
from repro.obs.manifest import RunManifest, build_manifest, calibration_hash
from repro.obs.probes import Counter, Gauge, Histogram, ProbeRegistry
from repro.obs.report import diff_report, hot_phase_report
from repro.obs.spans import Span, build_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Observation",
    "ProbeRegistry",
    "RunManifest",
    "Span",
    "build_manifest",
    "build_spans",
    "calibration_hash",
    "capture_runs",
    "chrome_trace",
    "diff_report",
    "hot_phase_report",
    "metrics_records",
    "observe_workflow",
    "span_records",
    "to_json",
    "to_jsonl",
    "trace_makespans",
    "validate_chrome_trace",
]
