"""repro.obs — virtual-time observability for the simulator.

Everything the paper's analysis needs to *explain* a run — which rank
stalled on a version wait, which socket's PMEM saturated, how far achieved
bandwidth fell below the model ceiling — flows through this package:

* :mod:`repro.obs.probes` — the instrumentation API: counters, gauges and
  histograms keyed on **virtual** time.  The engine, the fluid-flow
  network, the PMEM devices and the NVStream channel all emit into a
  :class:`~repro.obs.probes.ProbeRegistry`; when no registry is attached
  the emission sites are a single ``is None`` branch (zero overhead).
* :mod:`repro.obs.spans` — hierarchical spans (run -> rank -> iteration ->
  phase) layered on the existing :class:`~repro.sim.trace.Tracer`,
  OTel-inspired but clocked on ``engine.now``.
* :mod:`repro.obs.manifest` — run provenance: spec, configuration,
  calibration-table hash, git SHA and determinism inputs, so every
  exported trace can be reproduced.
* :mod:`repro.obs.capture` — :class:`~repro.obs.capture.Observation`
  (one observed run) and the capture context that wires observability
  into ``run_workflow`` and the experiments CLI.
* :mod:`repro.obs.export` — Chrome trace-event JSON (loads in Perfetto /
  ``chrome://tracing``), JSONL span and metric dumps, and the trace
  schema validator.
* :mod:`repro.obs.report` — the text hot-phase report and run diffing.
* :mod:`repro.obs.store` — the persistent, append-only campaign store
  (JSONL under ``campaigns/``) with content-hashed cell ids and a strict
  deterministic / host / provenance payload split.
* :mod:`repro.obs.hostmetrics` — host-side self-metrics (wall clock, peak
  tracemalloc, optional cProfile hotspots); a sanctioned wall-clock
  reader outside :mod:`repro.runtime` (simlint SIM109).
* :mod:`repro.obs.telemetry` — the *wall-clock* telemetry plane for the
  scheduling service: live metrics registry (counters, gauges, latency
  histograms with p50/p95/p99), cross-process lifecycle spans with trace
  ids, Prometheus text exposition, and the stitched service trace that
  nests wall-time spans above virtual-time simulation spans.
* :mod:`repro.obs.campaign` — the campaign runner over the paper suite,
  the regression diff engine (makespan drift, winner flips, paper-claim
  changes) and the markdown/terminal dashboards.
* :mod:`repro.obs.explain` — the trace-analytics engine: critical-path
  extraction through the span tree, blame attribution decomposing
  makespan into compute/barrier/drain/pmem/remote/dram buckets per
  resource and coupling, explainable campaign diffs ("flipped because
  pmem drain on socket 1 grew 38%") and per-campaign bottleneck ranking.
* ``python -m repro.obs`` — the ``export`` / ``summary`` / ``diff`` /
  ``validate`` / ``campaign`` / ``explain`` command line
  (:mod:`repro.obs.cli`).
"""

from repro.obs.campaign import (
    CampaignDiff,
    CampaignRun,
    SUITE_PRESETS,
    bench_record,
    campaign_from_store,
    campaign_report,
    diff_campaigns,
    run_campaign,
    run_cell,
)
from repro.obs.capture import Observation, capture_runs, observe_workflow
from repro.obs.explain import (
    BUCKETS,
    PathSegment,
    RunExplanation,
    attribution_from_phases,
    attribution_record,
    campaign_bottlenecks,
    critical_path,
    explain_observation,
    explain_report,
    utilization_rows,
    validate_explain_report,
)
from repro.obs.export import (
    chrome_trace,
    metrics_records,
    span_records,
    to_json,
    to_jsonl,
    trace_makespans,
    validate_chrome_trace,
)
from repro.obs.hostmetrics import (
    HostMeter,
    HostMetrics,
    aggregate_host_metrics,
    simulated_host_metrics,
    threaded_host_metrics,
)
from repro.obs.manifest import RunManifest, build_manifest, calibration_hash
from repro.obs.probes import Counter, Gauge, Histogram, ProbeRegistry
from repro.obs.report import diff_report, hot_phase_report
from repro.obs.spans import Span, build_spans
from repro.obs.store import CampaignStore, StoredCampaign, StoredCell
from repro.obs.telemetry import (
    SpanRecorder,
    TelemetryRegistry,
    WallSpan,
    mint_trace_id,
    prometheus_exposition,
    service_chrome_trace,
    validate_exposition,
    validate_snapshot,
)

__all__ = [
    "BUCKETS",
    "CampaignDiff",
    "CampaignRun",
    "CampaignStore",
    "Counter",
    "Gauge",
    "Histogram",
    "HostMeter",
    "HostMetrics",
    "Observation",
    "PathSegment",
    "ProbeRegistry",
    "RunExplanation",
    "RunManifest",
    "SUITE_PRESETS",
    "Span",
    "SpanRecorder",
    "StoredCampaign",
    "StoredCell",
    "TelemetryRegistry",
    "WallSpan",
    "aggregate_host_metrics",
    "attribution_from_phases",
    "attribution_record",
    "bench_record",
    "build_manifest",
    "build_spans",
    "calibration_hash",
    "campaign_bottlenecks",
    "campaign_from_store",
    "campaign_report",
    "critical_path",
    "capture_runs",
    "chrome_trace",
    "diff_campaigns",
    "diff_report",
    "explain_observation",
    "explain_report",
    "hot_phase_report",
    "metrics_records",
    "mint_trace_id",
    "observe_workflow",
    "prometheus_exposition",
    "run_campaign",
    "run_cell",
    "service_chrome_trace",
    "simulated_host_metrics",
    "span_records",
    "threaded_host_metrics",
    "to_json",
    "to_jsonl",
    "trace_makespans",
    "utilization_rows",
    "validate_chrome_trace",
    "validate_explain_report",
    "validate_exposition",
    "validate_snapshot",
]
