"""Hierarchical spans layered on the flat :class:`~repro.sim.trace.Tracer`.

The tracer records one closed interval per (component, rank, phase,
iteration); this module lifts those into an OTel-style tree clocked on
virtual time:

* ``run`` — the whole workflow execution (0 .. makespan);
* ``writer[0]`` / ``reader[3]`` — one span per component rank, covering
  that rank's first to last activity;
* ``iteration 4`` — one span per iteration inside each rank, covering the
  rank's records for that iteration (records outside the iteration loop,
  ``iteration == -1``, attach directly to the rank span);
* leaf phase spans — one per :class:`~repro.sim.trace.TraceRecord`, whose
  ``detail`` becomes the span's attributes.

Span ids are assigned depth-first over the deterministically sorted record
set, so two identical runs build byte-identical span tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.trace import Tracer

#: Span id of the root ``run`` span.
ROOT_SPAN_ID = 1


@dataclass(frozen=True)
class Span:
    """One node of the span tree.

    Attributes
    ----------
    span_id / parent_id:
        Tree linkage; the root span has ``parent_id is None``.
    name:
        ``"run"``, ``"writer[0]"``, ``"iteration 3"``, or a phase name.
    category:
        ``"run"``, ``"rank"``, ``"iteration"``, or ``"phase"``.
    component / rank:
        Track identity (empty/-1 for the root span).
    start / end:
        Virtual-time bounds.
    iteration:
        Iteration index, ``-1`` outside the iteration loop.
    attributes:
        Structured extras (a phase record's ``detail``).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    component: str = ""
    rank: int = -1
    start: float = 0.0
    end: float = 0.0
    iteration: int = -1
    attributes: Dict[str, Any] = field(default_factory=dict, hash=False)

    @property
    def duration(self) -> float:
        return self.end - self.start


def build_spans(
    tracer: Tracer, run_name: str = "run", makespan: Optional[float] = None
) -> List[Span]:
    """Build the span tree for a traced run.

    The returned list is ordered root-first, then depth-first by
    (component, rank, iteration, start) — a deterministic function of the
    trace contents.
    """
    records = sorted(
        tracer.records,
        key=lambda r: (r.component, r.rank, r.iteration, r.start, r.end, r.phase),
    )
    run_start, run_end = tracer.span()
    if makespan is not None:
        run_end = max(run_end, makespan)
    spans: List[Span] = [
        Span(
            span_id=ROOT_SPAN_ID,
            parent_id=None,
            name=run_name,
            category="run",
            start=min(run_start, 0.0),
            end=run_end,
        )
    ]
    next_id = ROOT_SPAN_ID + 1

    # Group records per (component, rank) track, preserving sort order.
    by_rank: Dict[Any, List] = {}
    for record in records:
        by_rank.setdefault((record.component, record.rank), []).append(record)

    for (component, rank), track in by_rank.items():
        rank_span = Span(
            span_id=next_id,
            parent_id=ROOT_SPAN_ID,
            name=f"{component}[{rank}]",
            category="rank",
            component=component,
            rank=rank,
            start=min(r.start for r in track),
            end=max(r.end for r in track),
        )
        spans.append(rank_span)
        next_id += 1

        by_iteration: Dict[int, List] = {}
        for record in track:
            by_iteration.setdefault(record.iteration, []).append(record)
        for iteration in sorted(by_iteration):
            group = by_iteration[iteration]
            parent = rank_span.span_id
            if iteration >= 0:
                iteration_span = Span(
                    span_id=next_id,
                    parent_id=rank_span.span_id,
                    name=f"iteration {iteration}",
                    category="iteration",
                    component=component,
                    rank=rank,
                    iteration=iteration,
                    start=min(r.start for r in group),
                    end=max(r.end for r in group),
                )
                spans.append(iteration_span)
                next_id += 1
                parent = iteration_span.span_id
            for record in group:
                spans.append(
                    Span(
                        span_id=next_id,
                        parent_id=parent,
                        name=record.phase,
                        category="phase",
                        component=component,
                        rank=rank,
                        iteration=record.iteration,
                        start=record.start,
                        end=record.end,
                        attributes=dict(record.detail),
                    )
                )
                next_id += 1
    return spans


def leaf_spans(spans: List[Span]) -> List[Span]:
    """The phase-level leaves of a span tree."""
    return [span for span in spans if span.category == "phase"]


def leaf_tracks(spans: List[Span]) -> Dict[Tuple[str, int], List[Span]]:
    """Leaf spans grouped per ``(component, rank)`` track, time-ordered.

    The grouping the critical-path walker chains through: within a track
    spans are sorted by ``(start, end, name)``, and the mapping iterates
    tracks in sorted key order — both deterministic functions of the
    trace contents.
    """
    tracks: Dict[Tuple[str, int], List[Span]] = {}
    for span in leaf_spans(spans):
        tracks.setdefault((span.component, span.rank), []).append(span)
    return {
        key: sorted(tracks[key], key=lambda s: (s.start, s.end, s.name))
        for key in sorted(tracks)
    }


def last_finishing_leaf(spans: List[Span]) -> Optional[Span]:
    """The leaf whose completion defines the makespan.

    Ties on the end timestamp break toward the lexicographically largest
    ``(component, rank)`` — in practice the highest reader rank, the
    track whose finish the paper's makespan measurement observes.
    """
    leaves = leaf_spans(spans)
    if not leaves:
        return None
    return max(leaves, key=lambda s: (s.end, s.component, s.rank))
