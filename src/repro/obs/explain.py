"""Trace analytics: critical paths, tier blame, and explainable diffs.

The campaign layer answers *which* Table I configuration wins each cell;
this module answers *why* — the evidence a PMEM-aware workflow scheduler
needs before it can act on the recommendation.  Everything here is a pure,
deterministic function of already-recorded observability state (span
trees, probe series, run manifests): no new instrumentation, no wall
clock, byte-identical output for identical runs.

Three layers:

**Critical path** — :func:`critical_path` walks backward from the
last-finishing leaf phase span and chains each span to the activity that
gated its start: the previous phase on the same rank when the track is
contiguous, or — across a gap — the latest-ending leaf anywhere in the
run (how a serial reader chains to ``writers-complete``).  The resulting
segments tile ``[0, makespan]`` exactly, so their durations *sum to the
makespan by construction* (the acceptance invariant
:func:`validate_explain_report` enforces within ``TIME_EPSILON``).

**Blame attribution** — every segment lands in one bucket of
:data:`BUCKETS`:

* ``compute`` — simulation or analytics compute phases;
* ``barrier`` — writer collective time (load imbalance across ranks);
* ``drain``   — reader version waits: the NVStream channel had not yet
  drained the version the critical rank needed.  Blamed on the channel
  socket's PMEM device (plus the UPI link when the producing writer was
  remote) — "pmem drain on socket 1";
* ``pmem``    — socket-local channel I/O on the critical path;
* ``remote``  — channel I/O that crossed the UPI interconnect;
* ``dram``    — DRAM-tier I/O (always zero for the paper's App-Direct
  channel; kept so the schema covers DRAM-staged variants);
* ``idle``    — path gaps (should stay ~0; a non-zero value flags a trace
  hole, not a scheduling effect).

:func:`attribution_record` compresses an explanation into the compact
per-config summary the campaign store persists, and
:func:`attribution_from_phases` derives the same record shape from the
phase breakdowns alone — the estimator used for cells stored before
attribution existed and for rehydrated cache entries.

**Explainable diffs** — :func:`explain_shift` turns two attribution
records into one sentence ("drain on pmem[1] grew 38.2% (12.3 s ->
17.0 s)"); :func:`flip_explanation` and :func:`drift_explanation` attach
those sentences to :class:`~repro.obs.campaign.WinnerFlip` /
:class:`~repro.obs.campaign.MakespanDrift` rows, and
:func:`diff_attribution_rows` tabulates every bucket shift between two
campaigns for ``python -m repro.obs explain diff``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.configs import SchedulerConfig
from repro.errors import SimulationError
from repro.obs.probes import step_fraction_above
from repro.obs.spans import Span, last_finishing_leaf, leaf_spans, leaf_tracks
from repro.sim.engine import TIME_EPSILON
from repro.units import fmt_time

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.capture import Observation

#: Version of the explain-report schema (bumped on breaking changes).
EXPLAIN_SCHEMA_VERSION = 1

#: Attribution buckets, in render order.  ``idle`` is last on purpose:
#: it is a diagnostic (trace coverage), not a scheduling cause.
BUCKETS: Tuple[str, ...] = (
    "compute",
    "barrier",
    "drain",
    "pmem",
    "remote",
    "dram",
    "idle",
)

#: Buckets a scheduler can act on (``idle`` is excluded from dominance
#: and from diff explanations).
CAUSE_BUCKETS: Tuple[str, ...] = BUCKETS[:-1]

#: Absolute bucket shift below which a diff explanation is noise.
SHIFT_EPSILON = 1e-9

#: Relative floor on bucket shifts: movements under 0.1% of the bucket
#: explain nothing (and estimated-vs-precise records differ at float
#: noise level on identical runs).
RELATIVE_SHIFT_FLOOR = 1e-3


# ----------------------------------------------------------------------
# Critical-path extraction.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path (segments tile [0, makespan])."""

    start: float
    end: float
    bucket: str
    component: str = ""
    rank: int = -1
    phase: str = ""
    iteration: int = -1
    resources: Tuple[str, ...] = ()
    gated_by: str = "t=0"

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_record(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "bucket": self.bucket,
            "component": self.component,
            "rank": self.rank,
            "phase": self.phase,
            "iteration": self.iteration,
            "resources": list(self.resources),
            "gated_by": self.gated_by,
        }


def _upi_name(socket_a: int, socket_b: int) -> str:
    lo, hi = sorted((socket_a, socket_b))
    return f"upi[{lo}<->{hi}]"


@dataclass(frozen=True)
class _PathContext:
    """Placement facts needed to classify critical-path segments."""

    writer_local: bool
    writer_socket: int
    reader_socket: int

    @property
    def channel_socket(self) -> int:
        return self.writer_socket if self.writer_local else self.reader_socket

    @property
    def writer_remote(self) -> bool:
        return not self.writer_local

    @property
    def reader_remote(self) -> bool:
        return self.writer_local

    def io_resources(self, component: str) -> Tuple[str, ...]:
        """Resources a component's channel I/O traverses."""
        remote = self.writer_remote if component == "writer" else self.reader_remote
        path: Tuple[str, ...] = (f"pmem[{self.channel_socket}]",)
        if remote:
            path += (_upi_name(self.writer_socket, self.reader_socket),)
        return path

    def cpu_resource(self, component: str) -> Tuple[str, ...]:
        socket = self.writer_socket if component == "writer" else self.reader_socket
        return (f"cpu[{socket}]",)


def path_context(
    config_label: str, writer_socket: int = 0, reader_socket: int = 1
) -> _PathContext:
    """Build the classification context from a Table I label + sockets."""
    config = SchedulerConfig.from_label(config_label)
    return _PathContext(
        writer_local=config.writer_local,
        writer_socket=writer_socket,
        reader_socket=reader_socket,
    )


def _classify(span: Span, context: _PathContext) -> Tuple[str, Tuple[str, ...]]:
    """(bucket, resources) for one leaf span on the critical path."""
    if span.name == "compute":
        return "compute", context.cpu_resource(span.component)
    if span.name == "barrier":
        return "barrier", context.cpu_resource(span.component)
    if span.name == "wait":
        # The reader stalls until the channel drains the version it needs:
        # blame the channel's PMEM (and the UPI link feeding it, when the
        # producing writer is remote).
        return "drain", context.io_resources("writer")
    if span.name in ("write", "read"):
        remote = (
            context.writer_remote
            if span.component == "writer"
            else context.reader_remote
        )
        return ("remote" if remote else "pmem"), context.io_resources(
            span.component
        )
    # Future phases default to compute: they consume the critical rank's
    # time without touching the channel.
    return "compute", context.cpu_resource(span.component)


def _describe(span: Optional[Span]) -> str:
    if span is None:
        return "t=0"
    suffix = f" v{span.iteration}" if span.iteration >= 0 else ""
    return f"{span.component}[{span.rank}] {span.name}{suffix}"


def _gate(
    span: Span,
    tracks: Mapping[Tuple[str, int], List[Span]],
    ordered: Sequence[Span],
    boundary: float,
) -> Optional[Span]:
    """The leaf whose completion gated *span*'s start (None at t=0).

    Same-rank chaining wins while the track is contiguous; across a gap
    (the span's track has nothing ending at its start — a serial reader's
    first read, gated on ``writers-complete``) the chain jumps to the
    latest-ending leaf anywhere in the run that finished by the boundary.
    """
    if boundary <= TIME_EPSILON:
        return None
    track = tracks[(span.component, span.rank)]
    previous: Optional[Span] = None
    for candidate in track:
        if candidate is span:
            break
        if candidate.end <= boundary + TIME_EPSILON:
            previous = candidate
    if previous is not None and previous.end >= boundary - TIME_EPSILON:
        return previous
    # Cross-track jump: latest-ending leaf that finished by the boundary.
    best: Optional[Span] = None
    for candidate in ordered:
        if candidate is span:
            continue
        if candidate.end > boundary + TIME_EPSILON:
            continue
        if best is None or candidate.end > best.end + TIME_EPSILON:
            best = candidate
    return best if best is not None else previous


def critical_path(
    spans: Sequence[Span], makespan: float, context: _PathContext
) -> List[PathSegment]:
    """Extract the gating chain of leaf spans, tiling ``[0, makespan]``.

    The walk starts at the last-finishing leaf (ties broken by the
    deterministic ``(component, rank)`` order) and follows :func:`_gate`
    backward.  Chain gaps become explicit ``idle`` segments, so the
    returned durations always sum to the makespan exactly — attribution
    never silently loses time.
    """
    span_list = list(spans)
    leaves = leaf_spans(span_list)
    if not leaves or makespan <= 0:
        return (
            [PathSegment(start=0.0, end=makespan, bucket="idle")]
            if makespan > 0
            else []
        )
    tracks = leaf_tracks(span_list)
    ordered = [leaf for track in tracks.values() for leaf in track]
    current: Optional[Span] = last_finishing_leaf(span_list)
    segments: List[PathSegment] = []
    cursor = makespan
    # Each step consumes at least one leaf or closes a gap; 2n+2 bounds it.
    for _ in range(2 * len(ordered) + 2):
        if current is None or cursor <= TIME_EPSILON:
            break
        if current.end < cursor - TIME_EPSILON:
            # Nothing on the chain covers (current.end, cursor): trace gap.
            segments.append(
                PathSegment(
                    start=current.end,
                    end=cursor,
                    bucket="idle",
                    gated_by=_describe(current),
                )
            )
            cursor = current.end
        seg_start = max(min(current.start, cursor), 0.0)
        gate = _gate(current, tracks, ordered, seg_start)
        if cursor - seg_start > TIME_EPSILON:
            bucket, resources = _classify(current, context)
            segments.append(
                PathSegment(
                    start=seg_start,
                    end=cursor,
                    bucket=bucket,
                    component=current.component,
                    rank=current.rank,
                    phase=current.name,
                    iteration=current.iteration,
                    resources=resources,
                    gated_by=_describe(gate),
                )
            )
        cursor = seg_start
        current = gate
    if cursor > TIME_EPSILON:
        segments.append(PathSegment(start=0.0, end=cursor, bucket="idle"))
    segments.reverse()
    return segments


# ----------------------------------------------------------------------
# Utilization (shared by `summary` and `explain`).
# ----------------------------------------------------------------------
def utilization_rows(observation: "Observation") -> List[Dict[str, Any]]:
    """Busy/wait/idle fractions per component and per resource.

    Component rows come from the leaf spans (busy = compute + channel
    I/O, wait = barriers + version waits, averaged over ranks); resource
    rows come from the ``resource.occupancy`` gauges (busy = any flow or
    poller active, wait = contended, i.e. more than one occupant).
    Everything is measured on virtual time over ``[0, makespan]``.
    """
    makespan = observation.result.makespan if observation.result else 0.0
    rows: List[Dict[str, Any]] = []
    busy_time: Dict[str, float] = {}
    wait_time: Dict[str, float] = {}
    ranks: Dict[str, set] = {}
    for span in leaf_spans(observation.spans()):
        ranks.setdefault(span.component, set()).add(span.rank)
        if span.name in ("wait", "barrier"):
            wait_time[span.component] = (
                wait_time.get(span.component, 0.0) + span.duration
            )
        else:
            busy_time[span.component] = (
                busy_time.get(span.component, 0.0) + span.duration
            )
    for component in sorted(ranks):
        denominator = makespan * max(len(ranks[component]), 1)
        busy = busy_time.get(component, 0.0) / denominator if denominator else 0.0
        wait = wait_time.get(component, 0.0) / denominator if denominator else 0.0
        rows.append(
            {
                "name": component,
                "kind": "component",
                "busy": busy,
                "wait": wait,
                "idle": max(0.0, 1.0 - busy - wait),
            }
        )
    for instrument in observation.probes.instruments():
        if instrument.kind != "gauge" or instrument.name != "resource.occupancy":
            continue
        attrs = dict(instrument.attrs)
        resource = str(attrs.get("resource", instrument.label))
        samples = getattr(instrument, "samples", [])
        busy = step_fraction_above(samples, makespan, 0.0)
        contended = step_fraction_above(samples, makespan, 1.0)
        rows.append(
            {
                "name": resource,
                "kind": "resource",
                "busy": busy,
                "wait": contended,
                "idle": max(0.0, 1.0 - busy),
            }
        )
    return rows


def render_utilization(rows: Sequence[Mapping[str, Any]]) -> str:
    """Fixed-width busy/wait/idle table (one frame of ``summary``)."""
    if not rows:
        return "  (no utilization data)"
    width = max(len(str(row["name"])) for row in rows)
    lines = [
        f"  {'track':<{width}}  {'kind':<9}  {'busy':>6}  {'wait':>6}  {'idle':>6}"
    ]
    for row in rows:
        lines.append(
            f"  {str(row['name']):<{width}}  {str(row['kind']):<9}"
            f"  {row['busy']:>6.1%}  {row['wait']:>6.1%}  {row['idle']:>6.1%}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Run explanation.
# ----------------------------------------------------------------------
@dataclass
class RunExplanation:
    """The full root-cause analysis of one observed run."""

    run_id: str
    workflow: str
    config: str
    makespan: float
    segments: List[PathSegment] = field(default_factory=list)
    buckets: Dict[str, float] = field(default_factory=dict)
    resource_seconds: Dict[str, float] = field(default_factory=dict)
    critical_track: str = ""
    coupling: str = ""
    channel_socket: int = 0
    utilization: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def dominant(self) -> str:
        """The largest actionable bucket (ties: :data:`BUCKETS` order)."""
        return max(CAUSE_BUCKETS, key=lambda b: (self.buckets.get(b, 0.0), ))

    @property
    def dominant_fraction(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.buckets.get(self.dominant, 0.0) / self.makespan

    def as_record(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "workflow": self.workflow,
            "config": self.config,
            "makespan": self.makespan,
            "buckets": {bucket: self.buckets.get(bucket, 0.0) for bucket in BUCKETS},
            "dominant": self.dominant,
            "dominant_fraction": self.dominant_fraction,
            "critical_track": self.critical_track,
            "coupling": self.coupling,
            "channel_socket": self.channel_socket,
            "resource_seconds": dict(sorted(self.resource_seconds.items())),
            "segments": [segment.as_record() for segment in self.segments],
            "utilization": self.utilization,
        }

    # -- rendering ------------------------------------------------------
    def render_text(self, segments: bool = False) -> str:
        lines = [
            f"== {self.run_id} — makespan {fmt_time(self.makespan)} ==",
            f"  critical track {self.critical_track or '(none)'}, "
            f"coupling {self.coupling}, "
            f"dominant {self.dominant} ({self.dominant_fraction:.1%})",
        ]
        for bucket in BUCKETS:
            seconds = self.buckets.get(bucket, 0.0)
            if seconds <= 0 and bucket != self.dominant:
                continue
            share = seconds / self.makespan if self.makespan else 0.0
            lines.append(
                f"    {bucket:<8} {fmt_time(seconds):>10}  {share:6.1%}"
            )
        if self.resource_seconds:
            lines.append("  critical seconds per resource:")
            for resource, seconds in sorted(self.resource_seconds.items()):
                lines.append(f"    {resource:<14} {fmt_time(seconds):>10}")
        if self.utilization:
            lines.append("  utilization (busy/wait/idle on virtual time):")
            lines.append(render_utilization(self.utilization))
        if segments:
            lines.append("  critical path (oldest first):")
            for segment in self.segments:
                label = (
                    f"{segment.component}[{segment.rank}] {segment.phase}"
                    if segment.component
                    else "(gap)"
                )
                lines.append(
                    f"    {fmt_time(segment.start):>10} .. "
                    f"{fmt_time(segment.end):>10}  {segment.bucket:<8} "
                    f"{label:<20} gated by {segment.gated_by}"
                )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [
            f"### `{self.run_id}` — makespan {fmt_time(self.makespan)}",
            "",
            f"Critical track `{self.critical_track or '(none)'}`, coupling "
            f"`{self.coupling}`, dominant **{self.dominant}** "
            f"({self.dominant_fraction:.1%}).",
            "",
            "| bucket | seconds | share |",
            "|---|---|---|",
        ]
        for bucket in BUCKETS:
            seconds = self.buckets.get(bucket, 0.0)
            share = seconds / self.makespan if self.makespan else 0.0
            lines.append(f"| {bucket} | {fmt_time(seconds)} | {share:.1%} |")
        lines.append("")
        return "\n".join(lines)


def explain_observation(observation: "Observation") -> RunExplanation:
    """Root-cause one observed run (critical path + blame + utilization)."""
    if observation.result is None or observation.manifest is None:
        raise SimulationError("explain needs a finalized observation")
    manifest = observation.manifest
    context = path_context(
        manifest.config,
        writer_socket=manifest.writer_socket,
        reader_socket=manifest.reader_socket,
    )
    makespan = observation.result.makespan
    segments = critical_path(observation.spans(), makespan, context)
    buckets = {bucket: 0.0 for bucket in BUCKETS}
    resource_seconds: Dict[str, float] = {}
    for segment in segments:
        buckets[segment.bucket] += segment.duration
        for resource in segment.resources:
            resource_seconds[resource] = (
                resource_seconds.get(resource, 0.0) + segment.duration
            )
    phase_segments = [s for s in segments if s.component]
    critical_track = (
        f"{phase_segments[-1].component}[{phase_segments[-1].rank}]"
        if phase_segments
        else ""
    )
    return RunExplanation(
        run_id=observation.run_id,
        workflow=manifest.workflow,
        config=manifest.config,
        makespan=makespan,
        segments=segments,
        buckets=buckets,
        resource_seconds=resource_seconds,
        critical_track=critical_track,
        coupling=f"writer->reader via pmem[{context.channel_socket}]",
        channel_socket=context.channel_socket,
        utilization=utilization_rows(observation),
    )


def explain_spec(spec, config, cal=None, **run_kwargs) -> RunExplanation:
    """Run *spec* under *config* and explain it in one call."""
    from repro.obs.capture import observe_workflow

    if cal is not None:
        run_kwargs["cal"] = cal
    return explain_observation(observe_workflow(spec, config, **run_kwargs))


# ----------------------------------------------------------------------
# Compact attribution records (what the campaign store persists).
# ----------------------------------------------------------------------
def attribution_record(explanation: RunExplanation) -> Dict[str, Any]:
    """The byte-stable per-config summary stored in a campaign cell."""
    return {
        "schema": EXPLAIN_SCHEMA_VERSION,
        "buckets": {
            bucket: explanation.buckets.get(bucket, 0.0) for bucket in BUCKETS
        },
        "dominant": explanation.dominant,
        "dominant_fraction": explanation.dominant_fraction,
        "critical_track": explanation.critical_track,
        "coupling": explanation.coupling,
        "channel_socket": explanation.channel_socket,
        "resource_seconds": dict(sorted(explanation.resource_seconds.items())),
    }


def attribution_from_phases(
    config_label: str,
    makespan: float,
    phases: Mapping[str, Mapping[str, float]],
    writer_socket: int = 0,
    reader_socket: int = 1,
) -> Dict[str, Any]:
    """Estimate an attribution record from phase breakdowns alone.

    The critical-path engine needs the full trace; cells stored before
    attribution existed (and rehydrated cache entries) only kept per-rank
    phase averages.  This estimator maps those onto the same buckets: the
    reader's averages always count (its last rank ends the run), the
    writer's only in serial mode (in parallel mode writer time surfaces
    as reader drain).  Marked ``"estimated": true`` so consumers can tell
    the two apart.
    """
    config = SchedulerConfig.from_label(config_label)
    context = _PathContext(
        writer_local=config.writer_local,
        writer_socket=writer_socket,
        reader_socket=reader_socket,
    )
    buckets = {bucket: 0.0 for bucket in BUCKETS}
    reader = phases.get("reader", {})
    writer = phases.get("writer", {})
    buckets["compute"] += float(reader.get("compute", 0.0))
    buckets["drain"] += float(reader.get("wait", 0.0))
    buckets["remote" if context.reader_remote else "pmem"] += float(
        reader.get("io", 0.0)
    )
    if not config.parallel:
        buckets["compute"] += float(writer.get("compute", 0.0))
        buckets["barrier"] += float(writer.get("wait", 0.0))
        buckets["remote" if context.writer_remote else "pmem"] += float(
            writer.get("io", 0.0)
        )
    accounted = sum(buckets.values())
    buckets["idle"] = max(0.0, makespan - accounted)
    dominant = max(CAUSE_BUCKETS, key=lambda b: (buckets.get(b, 0.0), ))
    return {
        "schema": EXPLAIN_SCHEMA_VERSION,
        "estimated": True,
        "buckets": buckets,
        "dominant": dominant,
        "dominant_fraction": (
            buckets[dominant] / makespan if makespan > 0 else 0.0
        ),
        "critical_track": "",
        "coupling": f"writer->reader via pmem[{context.channel_socket}]",
        "channel_socket": context.channel_socket,
        "resource_seconds": {},
    }


def config_attribution(entry: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The attribution record of one stored per-config payload entry.

    Prefers the precise critical-path record written since this module
    existed; falls back to the phase estimator for older cells; returns
    None when the entry has neither (emulated runs).
    """
    attribution = entry.get("attribution")
    if isinstance(attribution, dict) and "buckets" in attribution:
        return attribution
    makespan = entry.get("makespan")
    phases = entry.get("phases")
    manifest = entry.get("manifest") or {}
    config_label = manifest.get("config")
    if makespan is None or not isinstance(phases, Mapping) or not config_label:
        return None
    try:
        return attribution_from_phases(
            config_label,
            float(makespan),
            phases,
            writer_socket=int(manifest.get("writer_socket", 0)),
            reader_socket=int(manifest.get("reader_socket", 1)),
        )
    except (ValueError, TypeError):
        return None


def blame_resource(attribution: Mapping[str, Any], bucket: str) -> str:
    """The resource a bucket's time is blamed on, for diff sentences."""
    socket = attribution.get("channel_socket", 0)
    if bucket in ("drain", "pmem", "remote", "dram"):
        return f"pmem[{socket}]"
    return "cpu"


def why_line(attribution: Optional[Mapping[str, Any]]) -> str:
    """One compact cause phrase: ``"drain 61.8% on pmem[1]"``."""
    if not attribution:
        return "-"
    dominant = attribution.get("dominant", "?")
    fraction = attribution.get("dominant_fraction", 0.0)
    line = f"{dominant} {fraction:.1%}"
    if dominant in ("drain", "pmem", "remote", "dram"):
        line += f" on {blame_resource(attribution, dominant)}"
    if attribution.get("estimated"):
        line += " (est.)"
    return line


# ----------------------------------------------------------------------
# Explainable diffs.
# ----------------------------------------------------------------------
def bucket_shift(
    attribution_a: Mapping[str, Any], attribution_b: Mapping[str, Any]
) -> Optional[Tuple[str, float, float]]:
    """The actionable bucket that moved most, as (bucket, before, after)."""
    buckets_a = attribution_a.get("buckets", {})
    buckets_b = attribution_b.get("buckets", {})
    best: Optional[Tuple[str, float, float]] = None
    best_delta = 0.0
    for bucket in CAUSE_BUCKETS:
        before = float(buckets_a.get(bucket, 0.0))
        after = float(buckets_b.get(bucket, 0.0))
        delta = abs(after - before)
        if delta <= max(
            SHIFT_EPSILON, RELATIVE_SHIFT_FLOOR * max(abs(before), abs(after))
        ):
            continue
        if delta > best_delta:
            best_delta = delta
            best = (bucket, before, after)
    return best


def explain_shift(
    attribution_a: Mapping[str, Any], attribution_b: Mapping[str, Any]
) -> Optional[str]:
    """One sentence for the dominant bucket movement between two runs."""
    shift = bucket_shift(attribution_a, attribution_b)
    if shift is None:
        return None
    bucket, before, after = shift
    resource = blame_resource(attribution_b, bucket)
    verb = "grew" if after > before else "shrank"
    if before > SHIFT_EPSILON:
        change = f"{abs(after - before) / before:.1%}"
    else:
        change = f"to {fmt_time(after)}"
    sentence = (
        f"{bucket} on {resource} {verb} {change} "
        f"({fmt_time(before)} -> {fmt_time(after)})"
    )
    if attribution_a.get("estimated") or attribution_b.get("estimated"):
        sentence += " [estimated]"
    return sentence


def flip_explanation(
    before_label: str,
    after_label: str,
    configs_a: Mapping[str, Mapping[str, Any]],
    configs_b: Mapping[str, Mapping[str, Any]],
) -> str:
    """Why a cell's winner flipped between two campaigns.

    The question a flip raises is "what happened to the old winner?", so
    the sentence compares the *before*-winner's attribution across the
    two campaigns; if that config was not re-run, the new winner's own
    history is the fallback evidence.
    """
    for label in (before_label, after_label):
        entry_a = configs_a.get(label)
        entry_b = configs_b.get(label)
        if entry_a is None or entry_b is None:
            continue
        attribution_a = config_attribution(entry_a)
        attribution_b = config_attribution(entry_b)
        if attribution_a is None or attribution_b is None:
            continue
        sentence = explain_shift(attribution_a, attribution_b)
        if sentence is not None:
            return f"flipped because {label} {sentence}"
    return "no attribution recorded for either campaign"


def drift_explanation(
    entry_a: Mapping[str, Any], entry_b: Mapping[str, Any]
) -> Optional[str]:
    """Why one config's makespan drifted (None when nothing shifted)."""
    attribution_a = config_attribution(entry_a)
    attribution_b = config_attribution(entry_b)
    if attribution_a is None or attribution_b is None:
        return None
    return explain_shift(attribution_a, attribution_b)


def diff_attribution_rows(
    cells_a: Mapping[str, Any], cells_b: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    """Every bucket shift between two campaigns' matched cells.

    *cells_a* / *cells_b* map cell key -> a ``configs`` payload mapping
    (config label -> per-config entry).  One row per matched (cell,
    config) whose attributions differ, sorted by absolute shift.
    """
    rows: List[Dict[str, Any]] = []
    for key in sorted(set(cells_a) & set(cells_b)):
        configs_a = cells_a[key]
        configs_b = cells_b[key]
        for label in sorted(set(configs_a) & set(configs_b)):
            attribution_a = config_attribution(configs_a[label])
            attribution_b = config_attribution(configs_b[label])
            if attribution_a is None or attribution_b is None:
                continue
            shift = bucket_shift(attribution_a, attribution_b)
            if shift is None:
                continue
            bucket, before, after = shift
            rows.append(
                {
                    "key": key,
                    "config": label,
                    "bucket": bucket,
                    "resource": blame_resource(attribution_b, bucket),
                    "before": before,
                    "after": after,
                    "delta": after - before,
                }
            )
    rows.sort(key=lambda row: (-abs(row["delta"]), row["key"], row["config"]))
    return rows


def render_diff_rows(rows: Sequence[Mapping[str, Any]], markdown: bool = False) -> str:
    if not rows:
        return (
            "no attribution shifts between the campaigns"
            if not markdown
            else "No attribution shifts between the campaigns.\n"
        )
    if markdown:
        lines = [
            "| cell | config | bucket | resource | before | after | delta |",
            "|---|---|---|---|---|---|---|",
        ]
        for row in rows:
            lines.append(
                f"| {row['key']} | {row['config']} | {row['bucket']} "
                f"| {row['resource']} | {fmt_time(row['before'])} "
                f"| {fmt_time(row['after'])} | {row['delta']:+.3g} s |"
            )
        return "\n".join(lines) + "\n"
    lines = []
    for row in rows:
        lines.append(
            f"{row['key']} [{row['config']}]: {row['bucket']} on "
            f"{row['resource']} {fmt_time(row['before'])} -> "
            f"{fmt_time(row['after'])} ({row['delta']:+.3g} s)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Campaign-level bottleneck ranking (`explain top`).
# ----------------------------------------------------------------------
def cell_bottleneck(deterministic: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The winner config's attribution summary for one stored cell."""
    winner = deterministic.get("winner")
    configs = deterministic.get("configs", {})
    entry = configs.get(winner) if winner else None
    if entry is None:
        return None
    attribution = config_attribution(entry)
    if attribution is None:
        return None
    return {
        "winner": winner,
        "dominant": attribution.get("dominant", "?"),
        "fraction": float(attribution.get("dominant_fraction", 0.0)),
        "resource": blame_resource(
            attribution, attribution.get("dominant", "compute")
        ),
        "estimated": bool(attribution.get("estimated", False)),
        "why": why_line(attribution),
    }


def campaign_bottlenecks(cells: Sequence[Any]) -> List[Dict[str, Any]]:
    """Per-cell winner bottlenecks, worst (most dominated) first.

    *cells* are :class:`~repro.obs.campaign.CellResult`-shaped objects
    (``.key`` + ``.deterministic``); duck-typed to keep this module free
    of a campaign import cycle.
    """
    rows: List[Dict[str, Any]] = []
    for cell in cells:
        bottleneck = cell_bottleneck(cell.deterministic)
        if bottleneck is None:
            continue
        rows.append({"key": cell.key, **bottleneck})
    rows.sort(key=lambda row: (-row["fraction"], row["key"]))
    return rows


def render_top(rows: Sequence[Mapping[str, Any]], markdown: bool = False) -> str:
    """The ranked bottleneck table of one campaign."""
    if not rows:
        return (
            "no attributed cells in the campaign"
            if not markdown
            else "No attributed cells in the campaign.\n"
        )
    if markdown:
        lines = [
            "| cell | winner | bottleneck | share | resource |",
            "|---|---|---|---|---|",
        ]
        for row in rows:
            bucket = row["dominant"] + (" (est.)" if row["estimated"] else "")
            lines.append(
                f"| {row['key']} | {row['winner']} | {bucket} "
                f"| {row['fraction']:.1%} | {row['resource']} |"
            )
        return "\n".join(lines) + "\n"
    width = max(len(row["key"]) for row in rows)
    lines = [
        f"{'cell':<{width}}  {'winner':<8}  {'bottleneck':<12}  "
        f"{'share':>6}  resource"
    ]
    for row in rows:
        bucket = row["dominant"] + (" est." if row["estimated"] else "")
        lines.append(
            f"{row['key']:<{width}}  {row['winner']:<8}  {bucket:<12}  "
            f"{row['fraction']:>6.1%}  {row['resource']}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Report document + schema validator.
# ----------------------------------------------------------------------
def explain_report(explanations: Sequence[RunExplanation]) -> Dict[str, Any]:
    """The JSON explain-report document (``explain run --out``)."""
    return {
        "record": "explain_report",
        "schema_version": EXPLAIN_SCHEMA_VERSION,
        "generator": "repro.obs.explain",
        "runs": [explanation.as_record() for explanation in explanations],
    }


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and (
        math.isfinite(value)
    )


def validate_explain_report(document: Any) -> List[str]:
    """Problems with an explain-report document; empty list means valid.

    Beyond shape, this enforces the module's core invariants: buckets are
    the known set, non-negative, and sum to the makespan within
    ``TIME_EPSILON``; segments (when present) tile ``[0, makespan]``
    contiguously.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["report: not a JSON object"]
    if document.get("record") != "explain_report":
        problems.append(
            f"report: record type {document.get('record')!r} != 'explain_report'"
        )
    if document.get("schema_version") != EXPLAIN_SCHEMA_VERSION:
        problems.append(
            f"report: schema_version {document.get('schema_version')!r} != "
            f"{EXPLAIN_SCHEMA_VERSION}"
        )
    runs = document.get("runs")
    if not isinstance(runs, list):
        return problems + ["report: 'runs' must be a list"]
    for index, run in enumerate(runs):
        prefix = f"runs[{index}]"
        if not isinstance(run, dict):
            problems.append(f"{prefix}: not an object")
            continue
        for key in ("run_id", "config", "dominant"):
            if not isinstance(run.get(key), str):
                problems.append(f"{prefix}: {key!r} must be a string")
        makespan = run.get("makespan")
        if not _is_number(makespan):
            problems.append(f"{prefix}: 'makespan' must be a finite number")
            continue
        buckets = run.get("buckets")
        if not isinstance(buckets, dict):
            problems.append(f"{prefix}: 'buckets' must be an object")
            continue
        unknown = sorted(set(buckets) - set(BUCKETS))
        if unknown:
            problems.append(f"{prefix}: unknown bucket(s) {unknown}")
        total = 0.0
        for bucket, seconds in sorted(buckets.items()):
            if not _is_number(seconds) or seconds < 0:
                problems.append(
                    f"{prefix}: bucket {bucket!r} must be a non-negative number"
                )
                continue
            total += seconds
        tolerance = max(TIME_EPSILON, 64 * len(buckets) * abs(makespan) * 1e-16)
        if abs(total - makespan) > tolerance:
            problems.append(
                f"{prefix}: buckets sum to {total!r}, makespan is "
                f"{makespan!r} (|delta| > {tolerance:g})"
            )
        if run.get("dominant") not in BUCKETS:
            problems.append(
                f"{prefix}: dominant {run.get('dominant')!r} not in BUCKETS"
            )
        segments = run.get("segments", [])
        if not isinstance(segments, list):
            problems.append(f"{prefix}: 'segments' must be a list")
            continue
        cursor = 0.0
        for seg_index, segment in enumerate(segments):
            seg_prefix = f"{prefix}.segments[{seg_index}]"
            if not isinstance(segment, dict):
                problems.append(f"{seg_prefix}: not an object")
                break
            start, end = segment.get("start"), segment.get("end")
            if not _is_number(start) or not _is_number(end) or end < start:
                problems.append(f"{seg_prefix}: bad interval {start!r}..{end!r}")
                break
            if abs(start - cursor) > TIME_EPSILON:
                problems.append(
                    f"{seg_prefix}: starts at {start!r}, previous ended at "
                    f"{cursor!r} (path must tile [0, makespan])"
                )
            if segment.get("bucket") not in BUCKETS:
                problems.append(
                    f"{seg_prefix}: unknown bucket {segment.get('bucket')!r}"
                )
            cursor = end
        if segments and abs(cursor - makespan) > TIME_EPSILON:
            problems.append(
                f"{prefix}: path ends at {cursor!r}, makespan is {makespan!r}"
            )
    return problems
