"""Wall-clock telemetry: live metrics, lifecycle spans, Prometheus text.

Everything else in :mod:`repro.obs` is clocked on *virtual* time and must
be byte-identical across reruns; this module is the opposite — it is the
live sensor plane of the scheduling service, clocked on the host's
wall clock.  It provides:

* :class:`TelemetryRegistry` — labelled counters, gauges, and
  fixed-bucket latency histograms with p50/p95/p99 derivation
  (Prometheus-style cumulative buckets with linear interpolation);
* :class:`SpanRecorder` + :class:`WallSpan` — a per-job lifecycle event
  stream.  A ``trace_id`` is minted at submit (:func:`mint_trace_id`, a
  pure function of the job id so nothing new needs persisting), carried
  through :class:`~repro.service.pool.WorkerPool` task payloads into the
  worker process, and stitched back into one trace in the parent;
* exporters — JSONL snapshot records (:meth:`TelemetryRegistry.snapshot`),
  the Prometheus text exposition format
  (:func:`prometheus_exposition`), and a Chrome trace-event document
  (:func:`service_chrome_trace`) in which wall-time service spans nest
  *above* the virtual-time simulation spans of the runs they triggered
  (virtual time is linearly rescaled into each run's measured wall
  window, so Perfetto shows one coherent timeline per job);
* in-tree validators for both exposition text and snapshot records
  (:func:`validate_exposition`, :func:`validate_snapshot`) — used by the
  tests and the CI service job.

Telemetry is strictly additive: a disabled registry/recorder hands out
shared null instruments whose mutators are empty, and nothing in this
module ever writes into a deterministic artifact — cell ids, campaign
stores, and queue payloads are byte-identical with telemetry on or off
(a regression test enforces this).  This module is a sanctioned host
clock reader (simlint SIM109, dataflow rule SIM201); wall-clock values it
produces must never flow into trace/store/manifest sinks.
"""

from __future__ import annotations

import hashlib
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import SimulationError
from repro.units import MICROSECOND

#: Version of the telemetry snapshot schema (bumped on breaking changes).
TELEMETRY_SCHEMA_VERSION = 1

#: Default latency histogram bucket upper bounds, in seconds.  Chosen to
#: resolve both cache-hit service latencies (sub-millisecond) and real
#: simulation runs (seconds to minutes); the implicit final bucket is +Inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

#: Quantiles every histogram snapshot derives.
DERIVED_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

#: Prometheus metric-name grammar (also applied to snapshot names).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Prometheus label-name grammar.
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: ``tid`` of the wall-time service track inside each job's trace process.
SERVICE_TID = 0

#: ``tid`` offset separating simulated reader tracks from writer tracks in
#: a stitched service trace (mirrors :mod:`repro.obs.export`).
READER_TID_OFFSET = 1000


def mint_trace_id(job_id: str) -> str:
    """The trace id of one submitted job.

    A pure function of the job id: stable across processes and restarts,
    and — crucially — it needs no new field in the queue file, so queue
    bytes are identical whether or not telemetry is enabled.
    """
    return hashlib.sha256(f"trace|{job_id}".encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Instruments.
# ----------------------------------------------------------------------
LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    for key, value in labels.items():
        if not LABEL_NAME_RE.match(key):
            raise SimulationError(f"invalid telemetry label name {key!r}")
        if not isinstance(value, str):
            raise SimulationError(
                f"telemetry label {key!r} must be a string, got "
                f"{type(value).__name__}"
            )
    return tuple(sorted(labels.items()))


class WallInstrument:
    """Identity of one wall-clock metric stream (name + sorted labels)."""

    kind = "instrument"

    __slots__ = ("name", "labels", "help_text")

    def __init__(self, name: str, labels: LabelItems, help_text: str) -> None:
        if not METRIC_NAME_RE.match(name):
            raise SimulationError(f"invalid telemetry metric name {name!r}")
        self.name = name
        self.labels = labels
        self.help_text = help_text

    @property
    def key(self) -> Tuple[str, str, LabelItems]:
        return (self.kind, self.name, self.labels)

    @property
    def label(self) -> str:
        """Display label: ``name{k="v",...}`` (stable, sorted labels)."""
        if not self.labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "help": self.help_text,
        }


class WallCounter(WallInstrument):
    """Monotonic wall-side total (jobs submitted, cache hits, retries)."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems = (), help_text: str = ""):
        super().__init__(name, labels, help_text)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise SimulationError(
                f"counter {self.label}: increment must be >= 0, got {amount}"
            )
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        data = super().as_dict()
        data["value"] = self.value
        return data


class WallGauge(WallInstrument):
    """Point-in-time wall-side level (queue depth, worker utilization)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelItems = (), help_text: str = ""):
        super().__init__(name, labels, help_text)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> Dict[str, Any]:
        data = super().as_dict()
        data["value"] = self.value
        return data


class WallHistogram(WallInstrument):
    """Fixed-bucket wall-time histogram with derived quantiles.

    Buckets are cumulative upper bounds in the Prometheus style; the final
    implicit bucket is +Inf.  Quantiles are derived the way
    ``histogram_quantile()`` derives them: find the bucket the target rank
    falls in and interpolate linearly between its bounds.
    """

    kind = "histogram"

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, labels, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise SimulationError(f"histogram {name!r} needs >= 1 bucket")
        if len(set(bounds)) != len(bounds):
            raise SimulationError(f"histogram {name!r} has duplicate buckets")
        self.buckets = bounds
        #: One count per finite bucket plus the +Inf overflow bucket —
        #: *non*-cumulative internally; cumulated at snapshot time.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(le, cumulative_count), ...]`` ending with the +Inf bucket."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated value at quantile *q* in [0, 1] (0.0 when empty)."""
        if self.count <= 0:
            return 0.0
        target = q * self.count
        previous_bound = 0.0
        previous_cum = 0
        for bound, cum in self.cumulative():
            if cum >= target:
                if bound == float("inf"):
                    # Observations beyond the largest finite bucket: the
                    # histogram cannot resolve further, report the bound.
                    return self.buckets[-1]
                span = cum - previous_cum
                if span <= 0:
                    return bound
                fraction = (target - previous_cum) / span
                return previous_bound + (bound - previous_bound) * fraction
            previous_bound, previous_cum = bound, cum
        return self.buckets[-1]

    def as_dict(self) -> Dict[str, Any]:
        data = super().as_dict()
        data["buckets"] = [
            [bound, cum]
            for bound, cum in self.cumulative()
            if bound != float("inf")
        ]
        data["sum"] = self.sum
        data["count"] = self.count
        for q in DERIVED_QUANTILES:
            data[f"p{int(q * 100)}"] = self.quantile(q)
        return data


class _NullInstrument:
    """Shared no-op instrument a disabled registry hands out."""

    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


# ----------------------------------------------------------------------
# The registry.
# ----------------------------------------------------------------------
class TelemetryRegistry:
    """Wall-clock metric registry with Prometheus-compatible snapshots.

    Disabled registries (``enabled=False``) return shared null instruments
    and produce empty snapshots — the emission sites in the service cost
    one attribute access and nothing else.
    """

    def __init__(
        self, enabled: bool = True, clock: Callable[[], float] = time.time
    ) -> None:
        self.enabled = enabled
        self._clock = clock
        self._instruments: Dict[Tuple[str, str, LabelItems], WallInstrument] = {}
        self.started_at = clock() if enabled else 0.0

    # -- instrument factories -------------------------------------------
    def _get(self, cls, name: str, help_text: str, labels: Dict[str, str], **kw):
        if not self.enabled:
            return _NULL_INSTRUMENT
        items = _label_items(labels)
        key = (cls.kind, name, items)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, items, help_text, **kw)
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "", **labels: str):
        return self._get(WallCounter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str):
        return self._get(WallGauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ):
        return self._get(
            WallHistogram, name, help_text, labels, buckets=buckets
        )

    # -- reading --------------------------------------------------------
    def instruments(self) -> List[WallInstrument]:
        """Every instrument, sorted by (kind, name, labels) — stable."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(
        self, extra: Optional[Dict[str, Any]] = None, final: bool = False
    ) -> Dict[str, Any]:
        """One JSONL snapshot record of the registry's current state."""
        now = self._clock() if self.enabled else 0.0
        record: Dict[str, Any] = {
            "record": "telemetry_snapshot",
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "at": now,
            "uptime_seconds": (now - self.started_at) if self.enabled else 0.0,
            "final": final,
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for instrument in self.instruments():
            record[instrument.kind + "s"].append(instrument.as_dict())
        if extra:
            for key, value in extra.items():
                record[key] = value
        return record


# ----------------------------------------------------------------------
# Snapshot validation (tests + the CI service job).
# ----------------------------------------------------------------------
_SNAPSHOT_REQUIRED = (
    "record",
    "schema_version",
    "at",
    "counters",
    "gauges",
    "histograms",
)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_snapshot(record: Any) -> List[str]:
    """Problems with one snapshot record; empty list means valid."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["snapshot: not a JSON object"]
    for key in _SNAPSHOT_REQUIRED:
        if key not in record:
            problems.append(f"snapshot: missing {key!r}")
    if record.get("record") != "telemetry_snapshot":
        problems.append(
            f"snapshot: record type {record.get('record')!r} != "
            "'telemetry_snapshot'"
        )
    if record.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        problems.append(
            f"snapshot: schema_version {record.get('schema_version')!r} != "
            f"{TELEMETRY_SCHEMA_VERSION}"
        )
    for section in ("counters", "gauges", "histograms"):
        entries = record.get(section)
        if not isinstance(entries, list):
            problems.append(f"snapshot: {section!r} must be a list")
            continue
        for index, entry in enumerate(entries):
            prefix = f"{section}[{index}]"
            if not isinstance(entry, dict):
                problems.append(f"{prefix}: not an object")
                continue
            name = entry.get("name")
            if not isinstance(name, str) or not METRIC_NAME_RE.match(name):
                problems.append(f"{prefix}: invalid metric name {name!r}")
            if section in ("counters", "gauges"):
                if not _is_number(entry.get("value")):
                    problems.append(f"{prefix}: 'value' must be a number")
                continue
            buckets = entry.get("buckets")
            if not isinstance(buckets, list) or not buckets:
                problems.append(f"{prefix}: 'buckets' must be a non-empty list")
                continue
            previous_bound, previous_cum = float("-inf"), -1
            ok = True
            for pair in buckets:
                if (
                    not isinstance(pair, list)
                    or len(pair) != 2
                    or not _is_number(pair[0])
                    or not _is_number(pair[1])
                ):
                    problems.append(f"{prefix}: malformed bucket {pair!r}")
                    ok = False
                    break
                bound, cum = pair
                if bound <= previous_bound:
                    problems.append(f"{prefix}: bucket bounds not increasing")
                    ok = False
                    break
                if cum < previous_cum:
                    problems.append(f"{prefix}: bucket counts not cumulative")
                    ok = False
                    break
                previous_bound, previous_cum = bound, cum
            if ok:
                count = entry.get("count")
                if not _is_number(count):
                    problems.append(f"{prefix}: 'count' must be a number")
                elif buckets and count < buckets[-1][1]:
                    problems.append(
                        f"{prefix}: count {count} < last cumulative bucket "
                        f"{buckets[-1][1]}"
                    )
                if not _is_number(entry.get("sum")):
                    problems.append(f"{prefix}: 'sum' must be a number")
    return problems


# ----------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4).
# ----------------------------------------------------------------------
def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sample(name: str, labels: Dict[str, str], value: float) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{v}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def prometheus_exposition(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot record as Prometheus text exposition format.

    Working from the snapshot (not the live registry) means the same code
    path serves live scrapes and the offline ``repro-service metrics``
    command replaying a persisted snapshot.
    """
    lines: List[str] = []
    typed: set = set()

    def _header(name: str, kind: str, help_text: str) -> None:
        if name in typed:
            return
        typed.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", []):
        _header(entry["name"], "counter", entry.get("help", ""))
        lines.append(_sample(entry["name"], entry.get("labels", {}), entry["value"]))
    for entry in snapshot.get("gauges", []):
        _header(entry["name"], "gauge", entry.get("help", ""))
        lines.append(_sample(entry["name"], entry.get("labels", {}), entry["value"]))
    for entry in snapshot.get("histograms", []):
        name = entry["name"]
        labels = entry.get("labels", {})
        _header(name, "histogram", entry.get("help", ""))
        cumulative = 0
        for bound, cum in entry.get("buckets", []):
            cumulative = cum
            lines.append(
                _sample(
                    name + "_bucket",
                    {**labels, "le": _format_value(bound)},
                    cum,
                )
            )
        count = entry.get("count", cumulative)
        lines.append(
            _sample(name + "_bucket", {**labels, "le": "+Inf"}, count)
        )
        lines.append(_sample(name + "_sum", labels, entry.get("sum", 0.0)))
        lines.append(_sample(name + "_count", labels, count))
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')


def validate_exposition(text: str) -> List[str]:
    """Problems with Prometheus exposition text; empty list means valid."""
    problems: List[str] = []
    declared: Dict[str, str] = {}
    histogram_buckets: Dict[str, List[Tuple[float, float]]] = {}
    histogram_counts: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            if parts[2] in declared:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {parts[2]!r}"
                )
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            problems.append(f"line {lineno}: unknown comment directive")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample line")
            continue
        name = match.group("name")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                pair_match = _LABEL_PAIR_RE.match(pair.strip())
                if not pair_match:
                    problems.append(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
                    break
                labels[pair_match.group(1)] = pair_match.group(2)
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf"))
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value {raw_value!r}")
            continue
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        if base not in declared:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
            continue
        if declared[base] == "histogram":
            series = base + "|" + ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: histogram bucket without 'le'"
                    )
                    continue
                bound = float(labels["le"].replace("+Inf", "inf"))
                histogram_buckets.setdefault(series, []).append((bound, value))
            elif name.endswith("_count"):
                histogram_counts[series] = value
    for series, buckets in histogram_buckets.items():
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            problems.append(f"histogram {series}: 'le' bounds out of order")
        counts = [c for _, c in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            problems.append(f"histogram {series}: buckets not cumulative")
        if bounds and bounds[-1] != float("inf"):
            problems.append(f"histogram {series}: missing '+Inf' bucket")
        declared_count = histogram_counts.get(series)
        if (
            declared_count is not None
            and counts
            and abs(declared_count - counts[-1]) > 0
        ):
            problems.append(
                f"histogram {series}: _count {declared_count} != +Inf bucket "
                f"{counts[-1]}"
            )
    return problems


# ----------------------------------------------------------------------
# Wall spans: the cross-process job lifecycle stream.
# ----------------------------------------------------------------------
@dataclass
class WallSpan:
    """One wall-clock lifecycle span of a traced service job.

    ``start``/``end`` are epoch seconds (``time.time``) — the one clock
    every process on the host shares, which is what lets a worker's
    ``simulate`` span land inside the parent's ``worker`` span without any
    cross-process clock negotiation.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    os_pid: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_record(self) -> Dict[str, Any]:
        return {
            "record": "wall_span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "os_pid": self.os_pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "WallSpan":
        return cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            name=record["name"],
            start=record["start"],
            end=record["end"],
            os_pid=record.get("os_pid", 0),
            attrs=dict(record.get("attrs", {})),
        )


class SpanRecorder:
    """Collects :class:`WallSpan` records for one process.

    Span ids are ``<trace_id>/p<os_pid>.<seq>`` — unique across the
    parent and every worker without coordination.  Disabled recorders
    swallow everything.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.time,
        os_pid: Optional[int] = None,
    ) -> None:
        import os

        self.enabled = enabled
        self._clock = clock
        self.os_pid = os_pid if os_pid is not None else os.getpid()
        self.spans: List[WallSpan] = []
        self._seq = 0

    def _next_id(self, trace_id: str) -> str:
        self._seq += 1
        return f"{trace_id}/p{self.os_pid}.{self._seq}"

    def record(
        self,
        trace_id: str,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[WallSpan]:
        """Append one explicit span (times supplied by the caller)."""
        if not self.enabled:
            return None
        span = WallSpan(
            trace_id=trace_id,
            span_id=span_id if span_id is not None else self._next_id(trace_id),
            parent_id=parent_id,
            name=name,
            start=start,
            end=end,
            os_pid=self.os_pid,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def mark(
        self,
        trace_id: str,
        name: str,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[WallSpan]:
        """Append an instant (zero-duration) span at the current time."""
        if not self.enabled:
            return None
        now = self._clock()
        return self.record(trace_id, name, now, now, parent_id, **attrs)

    @contextmanager
    def span(
        self,
        trace_id: str,
        name: str,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[Dict[str, Any]]:
        """Time a block; yields the attrs dict so callers can annotate."""
        if not self.enabled:
            yield {}
            return
        start = self._clock()
        live_attrs: Dict[str, Any] = dict(attrs)
        try:
            yield live_attrs
        finally:
            self.record(
                trace_id,
                name,
                start,
                self._clock(),
                parent_id,
                span_id=span_id,
                **live_attrs,
            )

    def extend(self, records: Sequence[Dict[str, Any]]) -> None:
        """Stitch spans recorded in another process (JSON records) in."""
        if not self.enabled:
            return
        for record in records:
            self.spans.append(WallSpan.from_record(record))

    def by_trace(self) -> Dict[str, List[WallSpan]]:
        """``trace_id -> spans`` (each list in recording order)."""
        grouped: Dict[str, List[WallSpan]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped


# ----------------------------------------------------------------------
# Stitched Chrome trace: wall-time service spans over virtual-time runs.
# ----------------------------------------------------------------------
def _sim_tid(component: str, rank: int) -> int:
    """Thread id of a simulated (component, rank) track (service trace)."""
    if component == "writer":
        base = 0
    elif component == "reader":
        base = READER_TID_OFFSET
    else:
        base = READER_TID_OFFSET * 2
    # +1 keeps every simulated track clear of the wall-time service track.
    return base + rank + 1


def _metadata(pid: int, tid: int, name: str, value: Any) -> Dict[str, Any]:
    key = "name" if name.endswith("_name") else "sort_index"
    return {
        "name": name,
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": {key: value},
    }


def service_chrome_trace(
    job_traces: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """One Chrome trace document for a traced service run.

    *job_traces* carries one entry per traced job::

        {"trace_id": ..., "label": "job-0000-... micro-2k@8",
         "wall_spans": [<WallSpan record>, ...],
         "sim_runs": [{"run_id": ..., "makespan": ...,
                       "start": <epoch>, "end": <epoch>,
                       "spans": [<repro.obs.export.span_records row>, ...]},
                      ...]}

    Each job becomes one trace process: its wall-time lifecycle spans
    (submit → queue-wait → worker → result) render on the ``service``
    thread, and each simulated run's virtual-time spans are linearly
    rescaled into the run's measured wall window — so the simulation
    flamegraph nests *under* the ``simulate`` span that produced it, on
    one coherent wall-clock timeline.  Every event carries its
    ``trace_id`` in ``args``, which is what links spans recorded in
    different processes.
    """
    events: List[Dict[str, Any]] = []
    traced_jobs: List[Dict[str, Any]] = []
    starts = [
        span["start"]
        for trace in job_traces
        for span in trace.get("wall_spans", [])
    ]
    t0 = min(starts) if starts else 0.0

    def _us(epoch: float) -> float:
        return max(0.0, (epoch - t0) / MICROSECOND)

    for index, trace in enumerate(sorted(
        job_traces, key=lambda item: item.get("trace_id", "")
    )):
        pid = index + 1
        trace_id = trace.get("trace_id", "")
        events.append(
            _metadata(pid, 0, "process_name", trace.get("label", trace_id))
        )
        events.append(_metadata(pid, 0, "process_sort_index", index))
        events.append(_metadata(pid, SERVICE_TID, "thread_name", "service"))
        events.append(
            _metadata(pid, SERVICE_TID, "thread_sort_index", SERVICE_TID)
        )
        wall_spans = trace.get("wall_spans", [])
        for record in wall_spans:
            events.append(
                {
                    "name": record["name"],
                    "cat": "service",
                    "ph": "X",
                    "ts": _us(record["start"]),
                    "dur": max(0.0, record["end"] - record["start"])
                    / MICROSECOND,
                    "pid": pid,
                    "tid": SERVICE_TID,
                    "args": {
                        "trace_id": trace_id,
                        "span_id": record["span_id"],
                        "parent_id": record.get("parent_id"),
                        "os_pid": record.get("os_pid", 0),
                        **record.get("attrs", {}),
                    },
                }
            )
        named_tids = {SERVICE_TID}
        sim_spans_total = 0
        for run in trace.get("sim_runs", []):
            window_start = run["start"]
            window = max(0.0, run["end"] - run["start"])
            makespan = max(float(run.get("makespan") or 0.0), 1e-12)
            scale = window / makespan
            for span in run.get("spans", []):
                if span.get("category") in ("run", "rank"):
                    continue
                tid = _sim_tid(span.get("component", ""), span.get("rank", 0))
                if tid not in named_tids:
                    named_tids.add(tid)
                    events.append(
                        _metadata(
                            pid,
                            tid,
                            "thread_name",
                            f"sim {span.get('component', '?')} "
                            f"{span.get('rank', 0)}",
                        )
                    )
                    events.append(_metadata(pid, tid, "thread_sort_index", tid))
                events.append(
                    {
                        "name": span["name"],
                        "cat": "sim-" + span.get("category", "phase"),
                        "ph": "X",
                        "ts": _us(window_start + span["start"] * scale),
                        "dur": max(0.0, span.get("duration", 0.0)) * scale
                        / MICROSECOND,
                        "pid": pid,
                        "tid": tid,
                        "args": {
                            "trace_id": trace_id,
                            "run_id": run.get("run_id"),
                            "virtual_start": span["start"],
                            "virtual_end": span["end"],
                            "iteration": span.get("iteration", -1),
                        },
                    }
                )
                sim_spans_total += 1
        traced_jobs.append(
            {
                "pid": pid,
                "trace_id": trace_id,
                "label": trace.get("label", trace_id),
                "wall_spans": len(wall_spans),
                "sim_runs": len(trace.get("sim_runs", [])),
                "sim_spans": sim_spans_total,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "repro": {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "runs": [],
            "service": {
                "epoch_origin": t0,
                "jobs": traced_jobs,
            },
        },
    }
