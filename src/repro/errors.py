"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific exceptions."""


class SimulationError(ReproError):
    """Raised when the discrete-event engine reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when the engine runs out of events while processes are blocked."""


class ConfigurationError(ReproError):
    """Raised for invalid platform, workload, or scheduler configurations."""


class ValidationError(ConfigurationError):
    """Raised when pre-run validation rejects a spec, platform, or placement.

    Carries the structured findings of :mod:`repro.analysis.validate` in
    ``diagnostics`` (a tuple of :class:`repro.analysis.diagnostics.Diagnostic`)
    so callers can inspect rule codes programmatically instead of parsing
    the message.
    """

    def __init__(self, diagnostics=(), message=""):
        self.diagnostics = tuple(diagnostics)
        if not message:
            rendered = "; ".join(d.render() for d in self.diagnostics)
            count = len(self.diagnostics)
            message = f"validation failed with {count} diagnostic(s): {rendered}"
        super().__init__(message)

    @property
    def codes(self):
        """The rule codes of the carried diagnostics, in report order."""
        return tuple(d.code for d in self.diagnostics)


class PlacementError(ConfigurationError):
    """Raised when a component cannot be placed (e.g. not enough cores)."""


class StorageError(ReproError):
    """Raised by storage-stack models (e.g. reading an unpublished version)."""


class CalibrationError(ReproError):
    """Raised when device-model calibration constants are inconsistent."""
