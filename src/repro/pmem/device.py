"""The Optane device as a flow-network resource.

:class:`OptaneDeviceResource` is the single shared resource through which
every PMEM transfer targeting one socket's interleaved DIMM set passes.  It
overrides :meth:`~repro.sim.flow.CapacityResource.share` to hand each flow a
kind-, locality-, and granularity-specific instantaneous rate, composing the
curves in :mod:`repro.pmem.bandwidth`:

* reads share the read-capacity ramp; writes share the write ramp;
* concurrent reads and writes mutually interfere (XPBuffer thrash), with
  extra back-pressure on writes when the readers are remote;
* remote flows additionally pay the cross-NUMA degradation factors;
* small accesses pay granularity and DIMM-contention de-ratings.

:class:`OptaneDevice` wraps the resource with capacity accounting so the
storage layer can allocate/free channel space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import StorageError
import math

from repro.pmem.bandwidth import (
    access_efficiency,
    mix_read_penalty,
    mix_write_penalty,
    read_bandwidth_total,
    remote_read_factor,
    remote_write_factor,
    sustained_congestion_factor,
    write_bandwidth_total,
)
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration
from repro.pmem.interleave import InterleaveSet
from repro.sim.flow import CapacityResource, ResourceLoad
from repro.units import GiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.flow import Flow


class OptaneDeviceResource(CapacityResource):
    """Flow-network resource implementing the Optane sharing policy.

    Stateful: the resource tracks an exponentially weighted moving average
    of its remote-write occupancy (updated by the flow network through
    :meth:`observe`).  Sustained remote write streams congest the
    UPI/coherence path far beyond what a transient checkpoint burst causes;
    the EWMA is what distinguishes the two.
    """

    __slots__ = (
        "cal",
        "_remote_write_ewma",
        "_last_observed",
        "_held_occupancy",
        "_pollers_local",
        "_pollers_remote",
    )

    #: :meth:`share` dispatches purely on the flow's kind and locality —
    #: every other input comes from the :class:`ResourceLoad` — so the
    #: solver may evaluate one share per (kind, remote) group per resource
    #: instead of one per equivalence class (see
    #: :attr:`CapacityResource.share_signature_fields`).
    share_signature_fields = ("kind", "remote")

    def __init__(self, name: str, cal: OptaneCalibration) -> None:
        super().__init__(name)
        cal.validate()
        self.cal = cal
        self._remote_write_ewma = 0.0
        self._last_observed = 0.0
        self._held_occupancy = 0.0
        self._pollers_local = 0
        self._pollers_remote = 0

    # ------------------------------------------------------------------
    @property
    def remote_write_ewma(self) -> float:
        """Current sustained remote-write occupancy estimate."""
        return self._remote_write_ewma

    def observe(self, now: float, load: ResourceLoad) -> None:
        """Update the congestion EWMA and latch the new occupancy.

        Called by the flow network whenever rates are recomputed.  The EWMA
        first relaxes toward the occupancy that *held* since the previous
        observation (with time constant ``remote_write_congestion_tau``),
        then latches the new instantaneous duty-weighted remote-write count
        for the next interval — so an idle gap genuinely cools the link
        before a fresh burst arrives.
        """
        dt = now - self._last_observed
        self._last_observed = now
        if dt > 0:
            alpha = 1.0 - math.exp(-dt / self.cal.remote_write_congestion_tau)
            self._remote_write_ewma += alpha * (
                self._held_occupancy - self._remote_write_ewma
            )
        self._held_occupancy = load.congestion_write_remote

    def solver_state_token(self) -> object:
        """Mutable state :meth:`share` reads, for the solver's memo key.

        ``_write_share`` depends on the congestion EWMA and ``_read_share``
        on the poller counts; ``_held_occupancy``/``_last_observed`` only
        feed *future* EWMA updates via :meth:`observe` and are deliberately
        excluded — they don't change what ``share`` returns now.
        """
        return (
            self._remote_write_ewma,
            self._pollers_local,
            self._pollers_remote,
        )

    def share_state_token(self, kind: str, remote: bool) -> object:
        """Per-(kind, remote) refinement of :meth:`solver_state_token`.

        ``_read_share`` reads no mutable device state at all, so read
        tokens are empty — a read-only component survives poller churn and
        EWMA decay without re-solving.  ``_write_share`` reads the poller
        counts (mix interference) for every write and additionally the
        congestion EWMA for remote writes.
        """
        if kind == "read":
            return ()
        if remote:
            return (
                self._remote_write_ewma,
                self._pollers_local,
                self._pollers_remote,
            )
        return (self._pollers_local, self._pollers_remote)

    # ------------------------------------------------------------------
    # Pollers: readers blocked on an unpublished version busy-poll the
    # channel's metadata in this device's PMEM.  They contribute to mix
    # interference (weighted) without consuming bulk bandwidth.
    # ------------------------------------------------------------------
    def add_poller(self, remote: bool) -> None:
        """Register a blocked reader polling this device's metadata."""
        if remote:
            self._pollers_remote += 1
        else:
            self._pollers_local += 1

    def remove_poller(self, remote: bool) -> None:
        """Unregister a poller (raises if none registered)."""
        if remote:
            if self._pollers_remote <= 0:
                raise StorageError(f"{self.name}: no remote poller to remove")
            self._pollers_remote -= 1
        else:
            if self._pollers_local <= 0:
                raise StorageError(f"{self.name}: no local poller to remove")
            self._pollers_local -= 1

    @property
    def poller_count(self) -> int:
        return self._pollers_local + self._pollers_remote

    # ------------------------------------------------------------------
    def share(self, load: ResourceLoad, flow: "Flow") -> float:
        """Instantaneous rate for *flow* under the current device load."""
        if flow.kind == "read":
            return self._read_share(load, flow.remote)
        return self._write_share(load, flow.remote)

    def _read_share(self, load: ResourceLoad, remote: bool) -> float:
        cal = self.cal
        # While this flow is being served at least one reader is on the
        # device, so instantaneous read concurrency is never below 1.
        n_inst = max(1.0, load.n_reads)
        total = read_bandwidth_total(cal, n_inst)
        # Interference keys on raw opposing threads: sparse ops from
        # software-bound writers still disrupt the XPBuffer.
        raw_writers = load.raw_write_local + load.raw_write_remote
        total *= mix_read_penalty(cal, float(raw_writers))
        raw_readers = load.raw_read_local + load.raw_read_remote
        total *= access_efficiency(cal, "read", load.read_op_bytes, raw_readers)
        if remote:
            total *= remote_read_factor(cal, max(1.0, load.n_read_remote))
        return total / n_inst

    def _write_share(self, load: ResourceLoad, remote: bool) -> float:
        cal = self.cal
        n_inst = max(1.0, load.n_writes)
        total = write_bandwidth_total(cal, n_inst)
        # Raw active readers plus weighted pollers interfere with writes.
        w = cal.poll_interference_weight
        readers_local = load.raw_read_local + w * self._pollers_local
        readers_remote = load.raw_read_remote + w * self._pollers_remote
        readers = readers_local + readers_remote
        remote_reader_fraction = readers_remote / readers if readers > 0 else 0.0
        total *= mix_write_penalty(
            cal, readers, remote_reader_fraction, writer_remote=remote
        )
        raw_writers = load.raw_write_local + load.raw_write_remote
        total *= access_efficiency(cal, "write", load.write_op_bytes, raw_writers)
        if remote:
            # The knee keys on the effective remote stream count: each
            # thread is a write-combining / coherence stream, but only
            # counts while it streams a meaningful fraction of the time.
            streams = min(
                float(load.raw_write_remote),
                cal.remote_write_knee_duty_factor * load.n_write_remote,
            )
            total *= remote_write_factor(cal, max(1.0, streams), load.write_op_bytes)
            # Sustained congestion: the EWMA blends the instantaneous
            # occupancy with history, so a brand-new burst on a cold link
            # is cheap while a steady stream pays in full.
            total *= sustained_congestion_factor(cal, self._remote_write_ewma)
            # A single remote writer cannot match a local one even on an
            # idle link (extra hop, RFO round trips).
            return min(total / n_inst, cal.remote_write_thread_cap)
        return total / n_inst


@dataclass
class OptaneDevice:
    """One socket's interleaved Optane DIMM set, with space accounting.

    Attributes
    ----------
    socket_id:
        Socket the DIMMs are attached to.
    capacity_bytes:
        Total App-Direct capacity (6 x 512 GB on the paper's testbed).
    cal:
        The device calibration (shared across sockets in practice).
    """

    socket_id: int
    capacity_bytes: int = 6 * 512 * GiB
    cal: OptaneCalibration = field(default_factory=lambda: DEFAULT_CALIBRATION)
    resource: OptaneDeviceResource = field(init=False)
    interleave: InterleaveSet = field(init=False)
    _allocated: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.resource = OptaneDeviceResource(f"pmem[{self.socket_id}]", self.cal)
        self.interleave = InterleaveSet(
            chunk_bytes=self.cal.interleave_chunk, ndimms=self.cal.dimms_per_socket
        )

    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._allocated

    def allocate(self, nbytes: int) -> None:
        """Reserve *nbytes* of App-Direct space for a channel or log."""
        if nbytes < 0:
            raise StorageError(f"cannot allocate negative bytes: {nbytes}")
        if self._allocated + nbytes > self.capacity_bytes:
            raise StorageError(
                f"PMEM on socket {self.socket_id} exhausted: requested "
                f"{nbytes} with {self.free_bytes} free"
            )
        self._allocated += nbytes

    def free(self, nbytes: int) -> None:
        """Release previously allocated space."""
        if nbytes < 0 or nbytes > self._allocated:
            raise StorageError(
                f"invalid free of {nbytes} bytes (allocated={self._allocated})"
            )
        self._allocated -= nbytes
