"""Optane bandwidth curves: concurrency scaling, locality, mix, granularity.

Pure functions of an :class:`~repro.pmem.calibration.OptaneCalibration` and
the current load.  The device resource (:mod:`repro.pmem.device`) composes
them; tests exercise them directly.

All thread counts ``n`` are *effective* (duty-weighted) concurrencies, which
may be fractional — see :mod:`repro.sim.flow` for how software overhead
reduces effective device concurrency.
"""

from __future__ import annotations

import math

from repro.pmem.calibration import OptaneCalibration


def read_bandwidth_total(cal: OptaneCalibration, n: float) -> float:
    """Aggregate local read bandwidth with *n* effective concurrent readers.

    Concave ramp saturating at the 39.4 GB/s peak around 17 threads
    [paper §II-B]; monotonically non-decreasing in ``n``.
    """
    if n <= 0:
        return 0.0
    return cal.local_read_peak * (1.0 - math.exp(-n / cal.read_ramp_scale))


def write_bandwidth_total(cal: OptaneCalibration, n: float) -> float:
    """Aggregate local write bandwidth with *n* effective concurrent writers.

    Ramps to the 13.9 GB/s peak by ~4 threads, then declines gently as
    additional writers thrash the WPQ/XPBuffer [paper §II-B, FAST20].
    """
    if n <= 0:
        return 0.0
    ramp = cal.local_write_peak * (1.0 - math.exp(-n / cal.write_ramp_scale))
    over = max(0.0, n - cal.write_peak_threads)
    return ramp / (1.0 + cal.write_decay * over)


def remote_read_factor(cal: OptaneCalibration, n_remote: float) -> float:
    """Multiplier on read bandwidth when the readers are on the remote socket.

    Gentle: the paper measures only a 1.3x slowdown at 24 concurrent remote
    reads [paper §II-B].
    """
    if not cal.enable_remote_penalty or n_remote <= 0:
        return 1.0
    return 1.0 / (1.0 + cal.remote_read_slope * n_remote)


def _small_remote_write_factor(cal: OptaneCalibration, n_remote: float) -> float:
    """Small-access remote write collapse: the paper's 15x drop at 24 ops."""
    if n_remote <= cal.remote_write_collapse_n0:
        return 1.0
    return (cal.remote_write_collapse_n0 / n_remote) ** cal.remote_write_collapse_exp


def _streaming_remote_write_factor(cal: OptaneCalibration, n_remote: float) -> float:
    """Streaming remote write knee: mild until UPI/coherence saturates."""
    exponent = (n_remote - cal.remote_write_knee) / cal.remote_write_knee_width
    # Clamp to keep exp() well behaved for extreme inputs.
    exponent = min(60.0, max(-60.0, exponent))
    floor = cal.remote_write_floor
    return floor + (1.0 - floor) / (1.0 + math.exp(exponent))


def remote_write_factor(
    cal: OptaneCalibration, n_remote: float, op_bytes: float = 64.0
) -> float:
    """Multiplier on write bandwidth when the writers are on the remote socket.

    Granularity dependent [paper §II-B, FAST20]:

    * accesses at or below the 4 KB interleave chunk (raw stores,
      block-granular filesystems) collapse as ``(n0/n)**p`` — the paper's
      measured 15x drop at 24 concurrent writes, "under 1 GB/s" quickly;
    * large streaming transfers (non-temporal, write-combined) degrade
      mildly until ~18 concurrent writers, then step down to a floor;
    * log-linear blend between one chunk and one full stripe.

    ``op_bytes`` is the granularity the *device* observes (after any stack
    coalescing); the default of one cache line models raw store benchmarks.
    """
    if not cal.enable_remote_penalty or n_remote <= 0:
        return 1.0
    small = _small_remote_write_factor(cal, n_remote)
    streaming = _streaming_remote_write_factor(cal, n_remote)
    lo = cal.remote_small_access_bytes
    hi = float(cal.stripe_bytes)
    if op_bytes <= lo:
        return small
    if op_bytes >= hi:
        return streaming
    # Log-linear interpolation between the two regimes.
    weight = (math.log(op_bytes) - math.log(lo)) / (math.log(hi) - math.log(lo))
    return small + weight * (streaming - small)


def _saturating(n: float, half: float, exponent: float = 2.0) -> float:
    """Power-law count saturation ``n^p / (n^p + half^p)`` in [0, 1).

    Super-linear onset: a few opposing threads barely interfere, a
    socketful of them thrashes the device's internal buffering.
    """
    if n <= 0:
        return 0.0
    return n**exponent / (n**exponent + half**exponent)


def sustained_congestion_factor(cal: OptaneCalibration, sustained_occupancy: float) -> float:
    """Remote-write degradation from *sustained* occupancy (EWMA-driven).

    ``1 / (1 + (u / scale) ** exp)`` — continuous remote write streams build
    up UPI/coherence queue pressure that transient checkpoint bursts never
    reach.  ``u`` is the device's time-averaged remote-write occupancy.
    """
    if not cal.enable_remote_penalty or sustained_occupancy <= 0:
        return 1.0
    ratio = sustained_occupancy / cal.remote_write_congestion_scale
    return 1.0 / (1.0 + ratio ** cal.remote_write_congestion_exp)


def mix_read_penalty(cal: OptaneCalibration, n_writers: float) -> float:
    """Multiplier on read capacity when writers are concurrently active.

    Mixed read/write traffic thrashes the per-DIMM XPBuffer.  The onset is
    sharp (quartic in the writer count): a few writers coexist with reads,
    but once the writer population approaches write-port saturation, read
    bandwidth collapses [FAST20 §4.3].
    """
    if not cal.enable_mix_interference or n_writers <= 0:
        return 1.0
    h = cal.mix_read_half_saturation
    p = cal.mix_read_sat_exponent
    sat = n_writers**p / (n_writers**p + h**p)
    return 1.0 / (1.0 + cal.mix_gamma_read * sat)


def mix_write_penalty(
    cal: OptaneCalibration,
    n_readers: float,
    remote_reader_fraction: float = 0.0,
    writer_remote: bool = False,
) -> float:
    """Multiplier on write capacity when readers are concurrently active.

    Writes are more fragile than reads (their baseline is 2.8x lower).
    Two locality amplifiers [paper §VI-A, fit]:

    * *remote readers* create interconnect back-pressure on the device's
      internal buffering, slowing even local writes — the paper's
      explanation for why P-LocW loses to S-LocW when bandwidth-bound;
    * a *remote writer* facing concurrent reads loses its write-combining
      efficiency on top of the plain remote penalty, which is why P-LocR
      is the worst configuration for bandwidth-bound workflows.
    """
    if not cal.enable_mix_interference:
        return 1.0
    gamma = cal.mix_gamma_write * (
        1.0
        + cal.mix_remote_read_boost * max(0.0, min(1.0, remote_reader_fraction))
        + (cal.mix_remote_write_boost if writer_remote else 0.0)
    )
    return 1.0 / (
        1.0
        + gamma
        * _saturating(n_readers, cal.mix_half_saturation, cal.mix_write_sat_exponent)
    )


def access_efficiency(
    cal: OptaneCalibration, kind: str, op_bytes: float, raw_threads: int
) -> float:
    """Device-level efficiency of accesses of ``op_bytes`` granularity.

    Two effects [paper §II-B, FAST20]:

    * sub-stripe accesses amortize the internal 256 B XPLine / prefetch
      window poorly — saturating ``op / (op + half)`` efficiency;
    * with >= 6 threads issuing accesses at or below the 4 KB interleave
      chunk, threads collide on individual DIMMs (non-uniform stripe
      distribution) — a constant de-rating.
    """
    if not cal.enable_size_effects:
        return 1.0
    if op_bytes <= 0:
        return 1.0
    half = cal.read_size_half if kind == "read" else cal.write_size_half
    eff = op_bytes / (op_bytes + half)
    if (
        raw_threads >= cal.dimm_contention_threads
        and op_bytes <= cal.interleave_chunk
    ):
        eff *= cal.dimm_contention_factor
    return eff
