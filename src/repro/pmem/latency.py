"""Idle access latency model for Optane PMEM.

The latency term enters each transfer's *self cap* (see
:mod:`repro.sim.flow`): a streaming read of one object costs at least one
dependent device access per interleave chunk traversed, so small objects are
latency-bound and large objects amortize latency into bandwidth.  Writes are
acknowledged by the iMC write-pending queue, so their latency is low and
nearly locality-insensitive — the asymmetry behind the paper's
"prioritize reads when bandwidth is not constrained" rule (§VIII).
"""

from __future__ import annotations

from repro.pmem.calibration import OptaneCalibration


def op_latency(
    cal: OptaneCalibration, kind: str, remote: bool, op_bytes: float
) -> float:
    """Latency charged per object operation, in seconds.

    One full idle-latency stall for the first access of the object, plus a
    small dependent-access cost per additional interleave chunk (the
    device's read-ahead hides most, but not all, of the per-chunk latency;
    writes stream through the WPQ and pay only the initial stall).
    """
    if kind == "read":
        base = cal.read_latency_remote if remote else cal.read_latency_local
        extra_chunks = max(0.0, op_bytes / cal.interleave_chunk - 1.0)
        # Read-ahead hides ~95 % of per-chunk latency for streaming reads.
        return base + 0.05 * base * extra_chunks
    base = cal.write_latency_remote if remote else cal.write_latency_local
    return base
