"""Calibration constants for the first-generation Optane PMEM model.

Every constant is annotated with its source:

* **[paper]** — the reproduced paper itself (§II-B "Optane PMEM").
* **[FAST20]** — Yang et al., *An Empirical Guide to the Behavior and Use of
  Scalable Persistent Memory*, FAST 2020 (the paper's ref [2]).
* **[IZR19]** — Izraelevitz et al., *Basic Performance Measurements of the
  Intel Optane DC Persistent Memory Module*, arXiv:1903.05714 (ref [14]).
* **[MEMSYS19]** — Peng et al., *System Evaluation of the Intel Optane
  Byte-addressable NVM*, MEMSYS 2019 (ref [3]).
* **[fit]** — a free parameter of our fluid model, fitted so the simulated
  workflow suite reproduces the paper's configuration rankings and reported
  gaps (see EXPERIMENTS.md).  These have no hardware meaning beyond the fit.

The dataclass is frozen: derive variants with :meth:`OptaneCalibration.replace`.
Ablation toggles (``enable_*``) let benchmarks switch individual model terms
off to show which paper observation each term is responsible for.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from repro.errors import CalibrationError
from repro.units import GB, KiB, NANOSECOND


@dataclass(frozen=True)
class OptaneCalibration:
    """All constants of the Optane device model (units: bytes, seconds)."""

    # ------------------------------------------------------------------
    # Aggregate bandwidth ceilings.  [paper §II-B / IZR19]
    # ------------------------------------------------------------------
    #: Maximum local read bandwidth in interleaved mode (39.4 GB/s). [paper]
    local_read_peak: float = 39.4 * GB
    #: Maximum local write bandwidth in interleaved mode (13.9 GB/s). [paper]
    local_write_peak: float = 13.9 * GB

    # ------------------------------------------------------------------
    # Concurrency scaling.  The concave ramps are parameterized as
    # ``peak * (1 - exp(-n / scale))`` which matches the shape of the
    # scaling plots in [IZR19] (read bandwidth scales up to ~17 concurrent
    # ops, write scaling stops around 4 [paper §II-B]).
    # ------------------------------------------------------------------
    #: e-folding constant of the read ramp; yields ~94 % of peak at 17
    #: threads and a single-thread read rate of ~6 GB/s. [IZR19, fit]
    read_ramp_scale: float = 6.0
    #: e-folding constant of the write ramp; ~90 % of peak at 4 threads and
    #: a single-thread ntstore rate of ~6.2 GB/s. [IZR19, fit]
    write_ramp_scale: float = 1.7
    #: Gentle decline of aggregate write bandwidth beyond the 4-thread peak
    #: (contention in the WPQ / XPBuffer): capacity is multiplied by
    #: ``1 / (1 + write_decay * max(0, n - 4))``. [FAST20, fit]
    write_decay: float = 0.010
    #: Thread count at which write bandwidth peaks. [paper §II-B]
    write_peak_threads: float = 4.0

    # ------------------------------------------------------------------
    # Remote (cross-NUMA) degradation.  [paper §II-B / MEMSYS19]
    #
    # The degradation depends strongly on access granularity:
    #
    # * *small* accesses (at or below the 4 KB interleave chunk, e.g. raw
    #   store benchmarks or block-granular filesystems) collapse as
    #   ``(n0 / n) ** p`` — the paper's measured 15x drop at 24 concurrent
    #   writes, "under 1 GB/s" beyond a few ops;
    # * *streaming* accesses (large non-temporal, write-combined transfers,
    #   e.g. NVStream's coalesced log appends or multi-MB checkpoints)
    #   degrade mildly until the UPI / coherence machinery saturates around
    #   ~18 concurrent writers, then step down to a floor — a logistic knee
    #   fitted to the workflow-level gaps the paper reports (S-LocR optimal
    #   for GTC at 16 ranks but S-LocW at 24, §VI-A/B).
    # ------------------------------------------------------------------
    #: Small-access remote write collapse: ``(n0 / n) ** p``. [paper, fit]
    remote_write_collapse_n0: float = 2.0
    remote_write_collapse_exp: float = 1.09
    #: Streaming remote write knee: factor
    #: ``floor + (1 - floor) / (1 + exp((n - knee) / width))`` of the
    #: effective remote *stream* count ``min(raw_threads,
    #: knee_duty_factor * duty_weighted_threads)`` — a thread only counts
    #: toward coherence-path saturation if it actively streams a meaningful
    #: fraction of the time. [fit]
    remote_write_knee: float = 18.5
    remote_write_knee_width: float = 1.2
    #: Multiplier on the duty-weighted count in the knee's stream count. [fit]
    remote_write_knee_duty_factor: float = 3.0
    remote_write_floor: float = 0.70
    #: Sustained congestion: a continuous remote write stream additionally
    #: degrades as the UPI/coherence queues build up.  The device keeps an
    #: exponentially weighted moving average ``u`` of remote-write occupancy
    #: and applies ``1 / (1 + (u / scale) ** exp)``.  Bursty writers (GTC's
    #: checkpoint every couple of seconds) keep ``u`` low and stay fast at
    #: <= 16 ranks; continuous streams (the 64 MB microbenchmark) pay in
    #: full — the distinction behind S-LocR being viable for GTC at 16
    #: ranks while S-LocW wins the 64 MB workflow everywhere. [fit]
    remote_write_congestion_scale: float = 14.0
    remote_write_congestion_exp: float = 2.0
    #: Time constant (seconds) of the congestion EWMA. [fit]
    remote_write_congestion_tau: float = 2.0
    #: Single-thread remote write rate cap: one remote writer cannot match
    #: a local one even with the link idle (extra hop, RFO round trips).
    #: [FAST20, fit]
    remote_write_thread_cap: float = 3.7 * GB
    #: Device access size (bytes) below which the small-access collapse
    #: fully applies; the streaming knee fully applies above one interleave
    #: stripe, log-linear blend between. [fit]
    remote_small_access_bytes: float = 4.0 * KiB
    #: Remote reads degrade with concurrency: ``1 / (1 + slope * n)``.
    #: The paper quotes a 1.3x slowdown at 24 concurrent reads; we fit a
    #: somewhat steeper slope (1.5x at 24) because the workflow-level
    #: placement orderings (Figs. 6b/8b vs 8c/9b) require remote reads to
    #: hurt I/O-intensive readers noticeably more than sparse ones — see
    #: EXPERIMENTS.md for the documented deviation. [paper §II-B, fit]
    remote_read_slope: float = 0.022
    #: Aggregate UPI capacity between the two sockets (both directions
    #: pooled; includes coherence overhead). [MEMSYS19, fit]
    upi_bandwidth: float = 30.0 * GB

    # ------------------------------------------------------------------
    # Mixed read/write interference.  Concurrent reads and writes thrash
    # the 16 KB per-DIMM XPBuffer; each class's capacity is multiplied by
    # ``1 / (1 + gamma * s(n_other))`` with ``s(n) = n / (n + n_half)``.
    # [FAST20 §4.3, fit]
    # ------------------------------------------------------------------
    #: Read-capacity penalty from concurrent writers.  Optane reads are
    #: extremely sensitive to interleaved ntstores (even minority write
    #: ratios collapse read bandwidth via XPBuffer thrash). [FAST20, fit]
    mix_gamma_read: float = 6.0
    #: Write-capacity penalty from concurrent readers. [fit]
    mix_gamma_write: float = 1.6
    #: Extra write penalty when the interfering readers are *remote*: remote
    #: reads hold device/interconnect resources longer, creating the
    #: back-pressure described in §VI-A of the paper. [paper, fit]
    mix_remote_read_boost: float = 1.2
    #: Extra penalty on *remote* writes that face concurrent reads: the
    #: write-combined remote stream loses badly once the device's buffering
    #: is also serving reads. [fit]
    mix_remote_write_boost: float = 0.2
    #: Half-saturation of the quadratic interference saturation applied to
    #: *writes* facing readers: ``s(n) = n^2 / (n^2 + h^2)``.  The count
    #: used is the raw opposing thread count (plus weighted pollers), not
    #: the duty-weighted one: even a software-bound thread's sparse
    #: operations disrupt the device's internal buffering. [FAST20, fit]
    mix_half_saturation: float = 8.0
    #: Exponent of the write-side interference saturation. [fit]
    mix_write_sat_exponent: float = 2.0
    #: The read-side crush from concurrent writers has a sharper onset: it
    #: only materializes once the writer population approaches write-port
    #: saturation (quartic saturation with this half point). [FAST20, fit]
    mix_read_half_saturation: float = 12.0
    mix_read_sat_exponent: float = 4.0
    #: Interference contribution of a *blocked* reader busy-polling the
    #: channel's version metadata in PMEM (userspace streaming stacks spin
    #: on version counters), as a fraction of an active reader. [fit]
    poll_interference_weight: float = 0.3

    # ------------------------------------------------------------------
    # Access granularity.  [paper §II-B / FAST20]
    # ------------------------------------------------------------------
    #: Interleaving chunk: 4 KB contiguous per DIMM. [paper]
    interleave_chunk: int = 4 * KiB
    #: Number of interleaved DIMMs per socket. [paper]
    dimms_per_socket: int = 6
    #: XPLine (internal 3D-XPoint access granule): 256 B. [FAST20]
    xpline_bytes: int = 256
    #: Reads smaller than the device prefetch window lose efficiency:
    #: ``eff = op / (op + read_size_half)``. [FAST20, fit]
    read_size_half: float = 512.0
    #: Writes below one XPLine pay write amplification; above, efficiency
    #: ``eff = op / (op + write_size_half)``. [FAST20, fit]
    write_size_half: float = 256.0
    #: Extra de-rating when >= 6 threads issue accesses at (or below) the
    #: 4 KB interleave granularity: non-uniform stripe distribution makes
    #: threads contend for individual DIMMs. [paper §II-B, FAST20]
    dimm_contention_factor: float = 0.85
    #: Thread count at which DIMM contention for small accesses kicks in.
    #: [paper §II-B]
    dimm_contention_threads: float = 6.0

    # ------------------------------------------------------------------
    # Idle access latency.  [paper §II-B]
    # ------------------------------------------------------------------
    #: Idle local read latency (169 ns). [paper]
    read_latency_local: float = 169 * NANOSECOND
    #: Idle local write latency (90 ns — absorbed by the iMC WPQ). [paper]
    write_latency_local: float = 90 * NANOSECOND
    #: Idle remote read latency (~1.8x local). [FAST20]
    read_latency_remote: float = 305 * NANOSECOND
    #: Idle remote write latency (writes complete into the WPQ, so the
    #: remote penalty is smaller). [FAST20]
    write_latency_remote: float = 150 * NANOSECOND

    # ------------------------------------------------------------------
    # Ablation toggles (model terms, not hardware).
    # ------------------------------------------------------------------
    #: Apply the mixed read/write interference penalties.
    enable_mix_interference: bool = True
    #: Apply the remote collapse/degradation factors.
    enable_remote_penalty: bool = True
    #: Apply access-granularity efficiency and DIMM-contention factors.
    enable_size_effects: bool = True

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Sanity-check internal consistency; raises :class:`CalibrationError`."""
        if not (0 < self.local_write_peak <= self.local_read_peak):
            raise CalibrationError(
                "expected 0 < write peak <= read peak (Optane is read-favoured), got "
                f"write={self.local_write_peak}, read={self.local_read_peak}"
            )
        for name in (
            "read_ramp_scale",
            "write_ramp_scale",
            "write_peak_threads",
            "remote_write_collapse_n0",
            "remote_write_collapse_exp",
            "remote_write_knee",
            "remote_write_knee_width",
            "remote_write_knee_duty_factor",
            "remote_write_congestion_scale",
            "remote_write_congestion_exp",
            "remote_write_congestion_tau",
            "remote_write_thread_cap",
            "remote_small_access_bytes",
            "upi_bandwidth",
            "mix_half_saturation",
            "mix_read_half_saturation",
            "mix_read_sat_exponent",
            "mix_write_sat_exponent",
            "read_size_half",
            "write_size_half",
        ):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        for name in (
            "write_decay",
            "remote_read_slope",
            "mix_gamma_read",
            "mix_gamma_write",
            "mix_remote_read_boost",
            "mix_remote_write_boost",
            "poll_interference_weight",
        ):
            if getattr(self, name) < 0:
                raise CalibrationError(f"{name} must be non-negative")
        if not (0 < self.remote_write_floor <= 1):
            raise CalibrationError("remote_write_floor must be in (0, 1]")
        if not (0 < self.dimm_contention_factor <= 1):
            raise CalibrationError("dimm_contention_factor must be in (0, 1]")
        if self.interleave_chunk <= 0 or self.dimms_per_socket <= 0:
            raise CalibrationError("interleave geometry must be positive")
        for name in (
            "read_latency_local",
            "write_latency_local",
            "read_latency_remote",
            "write_latency_remote",
        ):
            if getattr(self, name) < 0:
                raise CalibrationError(f"{name} must be non-negative")
        if self.read_latency_remote < self.read_latency_local:
            raise CalibrationError("remote read latency must be >= local")
        if self.write_latency_remote < self.write_latency_local:
            raise CalibrationError("remote write latency must be >= local")

    def replace(self, **changes: object) -> "OptaneCalibration":
        """Return a copy with *changes* applied (validated)."""
        new = dataclasses.replace(self, **changes)
        new.validate()
        return new

    @property
    def stripe_bytes(self) -> int:
        """One full interleave stripe: chunk * DIMM count (24 KB). [paper]"""
        return self.interleave_chunk * self.dimms_per_socket

    def single_thread_read(self) -> float:
        """Single-thread local read bandwidth implied by the ramp."""
        return self.local_read_peak * (1.0 - math.exp(-1.0 / self.read_ramp_scale))

    def single_thread_write(self) -> float:
        """Single-thread local write bandwidth implied by the ramp."""
        return self.local_write_peak * (1.0 - math.exp(-1.0 / self.write_ramp_scale))


#: The default first-generation Optane calibration used by the experiments.
DEFAULT_CALIBRATION = OptaneCalibration()
DEFAULT_CALIBRATION.validate()
