"""DIMM interleaving geometry (RAID-0 style striping).

Optane modules are configured in interleaved mode: 4 KB contiguous chunks
striped across the 6 DIMMs of a socket, forming 24 KB stripes [paper §II-B].
The workflow experiments only need the aggregate consequences of this
geometry (captured by :func:`repro.pmem.bandwidth.access_efficiency`), but
the explicit mapping is provided for allocator realism, for the DIMM
imbalance statistics used in tests, and as executable documentation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError
from repro.units import KiB


@dataclass(frozen=True)
class InterleaveSet:
    """Striping of a contiguous PMEM region across ``ndimms`` modules.

    Parameters
    ----------
    chunk_bytes:
        Contiguous bytes placed on one DIMM before moving to the next
        (4 KiB on first-generation Optane).
    ndimms:
        Number of interleaved modules (6 per socket on the paper's testbed).
    """

    chunk_bytes: int = 4 * KiB
    ndimms: int = 6

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0 or self.ndimms <= 0:
            raise ConfigurationError("interleave geometry must be positive")

    @property
    def stripe_bytes(self) -> int:
        """Bytes in one full stripe across all DIMMs (24 KiB by default)."""
        return self.chunk_bytes * self.ndimms

    def dimm_of(self, offset: int) -> int:
        """DIMM index holding byte *offset*."""
        if offset < 0:
            raise ConfigurationError(f"negative offset: {offset}")
        return (offset // self.chunk_bytes) % self.ndimms

    def chunks_of(self, offset: int, nbytes: int) -> List[int]:
        """DIMM index of every chunk touched by ``[offset, offset + nbytes)``."""
        if nbytes <= 0:
            return []
        first = offset // self.chunk_bytes
        last = (offset + nbytes - 1) // self.chunk_bytes
        return [(c % self.ndimms) for c in range(first, last + 1)]

    def dimm_histogram(self, accesses: Iterable[Sequence[int]]) -> Dict[int, int]:
        """Chunk-touch counts per DIMM for ``(offset, nbytes)`` accesses."""
        counter: Counter = Counter()
        for offset, nbytes in accesses:
            counter.update(self.chunks_of(offset, nbytes))
        return {d: counter.get(d, 0) for d in range(self.ndimms)}

    def imbalance(self, accesses: Iterable[Sequence[int]]) -> float:
        """Max/mean ratio of per-DIMM chunk touches (1.0 = perfectly even).

        The paper notes that non-uniform distribution of random 4 KB
        accesses by >= 6 threads concentrates load on individual DIMMs;
        this statistic quantifies that concentration for a trace.
        """
        histogram = self.dimm_histogram(accesses)
        total = sum(histogram.values())
        if total == 0:
            return 1.0
        mean = total / self.ndimms
        return max(histogram.values()) / mean
