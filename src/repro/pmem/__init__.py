"""Intel Optane DC Persistent Memory device model.

This package encodes the published first-generation Optane PMEM performance
characteristics that drive every observation in the paper:

* :mod:`repro.pmem.calibration` — all model constants, each annotated with
  its literature source (the paper itself, Yang et al. FAST'20, Izraelevitz
  et al. arXiv:1903.05714, Peng et al. MEMSYS'19).
* :mod:`repro.pmem.bandwidth` — concurrency-scaling, locality, mixed
  read/write interference, and access-granularity curves.
* :mod:`repro.pmem.latency` — idle access latency model.
* :mod:`repro.pmem.interleave` — DIMM interleaving (4 KB chunks striped
  across 6 DIMMs) and per-DIMM contention statistics.
* :mod:`repro.pmem.device` — the :class:`OptaneDevice` wired into the
  fluid-flow network as a :class:`~repro.sim.flow.CapacityResource`.
"""

from repro.pmem.bandwidth import (
    access_efficiency,
    mix_read_penalty,
    mix_write_penalty,
    read_bandwidth_total,
    remote_read_factor,
    remote_write_factor,
    write_bandwidth_total,
)
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration
from repro.pmem.device import OptaneDevice, OptaneDeviceResource
from repro.pmem.interleave import InterleaveSet
from repro.pmem.latency import op_latency

__all__ = [
    "DEFAULT_CALIBRATION",
    "InterleaveSet",
    "OptaneCalibration",
    "OptaneDevice",
    "OptaneDeviceResource",
    "access_efficiency",
    "mix_read_penalty",
    "mix_write_penalty",
    "op_latency",
    "read_bandwidth_total",
    "remote_read_factor",
    "remote_write_factor",
    "write_bandwidth_total",
]
