"""Pre-simulation structural validation of specs, placements, and platforms.

A bad configuration fed to the simulator rarely crashes — it produces a
*plausible-but-wrong* runtime deep into a run (a placement on a nonexistent
socket silently falls back nowhere; a non-monotone bandwidth table makes
the fluid solver converge to nonsense).  This module checks the structure
*before* any simulated event executes and reports findings as structured
:class:`~repro.analysis.diagnostics.Diagnostic` records with stable rule
codes (``SPEC2xx`` for workflow specs, ``PLAT3xx`` for platform and
calibration tables — see :mod:`repro.analysis.rules`).

:func:`validate_run` is the aggregate hook the runtime layers call; it
raises :class:`repro.errors.ValidationError` carrying every finding.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics
from repro.analysis.rules import get_rule
from repro.errors import CalibrationError, ValidationError
from repro.pmem.bandwidth import read_bandwidth_total, write_bandwidth_total
from repro.units import fmt_bytes


def _finding(code: str, obj: str, message: str, hint: str = "") -> Diagnostic:
    return Diagnostic(
        code=code,
        message=message,
        severity=get_rule(code).severity,
        obj=obj,
        hint=hint,
    )


# ---------------------------------------------------------------------------
# Workflow-spec structure (SPEC201, SPEC202, SPEC205).
# ---------------------------------------------------------------------------
def _find_cycle(edges: Sequence[tuple], nodes: Iterable[str]) -> Optional[List[str]]:
    """Return one cycle as a role list, or ``None`` if the graph is a DAG."""
    adjacency: Dict[str, List[str]] = {node: [] for node in nodes}
    for producer, consumer in edges:
        adjacency.setdefault(producer, []).append(consumer)
        adjacency.setdefault(consumer, [])
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        color[node] = GRAY
        stack.append(node)
        for neighbour in adjacency[node]:
            if color[neighbour] == GRAY:
                return stack[stack.index(neighbour):] + [neighbour]
            if color[neighbour] == WHITE:
                cycle = visit(neighbour)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(adjacency):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def validate_workflow(spec) -> List[Diagnostic]:
    """Structural checks of one :class:`~repro.workflow.spec.WorkflowSpec`.

    * ``SPEC201`` — the coupling graph has a cycle (a reader would wait on
      a version whose writer transitively waits on the reader: deadlock by
      construction, which the engine would only discover at run time).
    * ``SPEC202`` — a coupling endpoint names a role the workflow does not
      define (the channel would dangle with no process on one end).
    * ``SPEC205`` — the named storage stack is not modelled.
    """
    label = f"spec {spec.name!r}"
    diagnostics: List[Diagnostic] = []
    roles: Set[str] = set(getattr(spec, "roles", ("simulation", "analytics")))
    couplings = tuple(getattr(spec, "couplings", ()))

    valid_edges = []
    for producer, consumer in couplings:
        dangling = [role for role in (producer, consumer) if role not in roles]
        for role in dangling:
            diagnostics.append(
                _finding(
                    "SPEC202",
                    label,
                    f"coupling {producer!r} -> {consumer!r} references "
                    f"undefined component role {role!r}",
                    f"declared roles are {sorted(roles)}",
                )
            )
        if not dangling:
            valid_edges.append((producer, consumer))

    cycle = _find_cycle(valid_edges, roles)
    if cycle is not None:
        diagnostics.append(
            _finding(
                "SPEC201",
                label,
                "coupling graph has a cycle: " + " -> ".join(cycle),
                "writer/reader couplings must form a DAG",
            )
        )

    from repro.storage import stack_by_name

    try:
        stack_by_name(spec.stack_name)
    except ValueError as exc:
        diagnostics.append(
            _finding("SPEC205", label, str(exc), "use 'nvstream' or 'novafs'")
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Placement on a concrete node (SPEC203, SPEC204, SPEC206, SPEC207).
# ---------------------------------------------------------------------------
def validate_placement(
    spec,
    config,
    node,
    writer_socket: int = 0,
    reader_socket: int = 1,
) -> List[Diagnostic]:
    """Check that *spec* under *config* actually fits on *node*.

    * ``SPEC203`` — writer/reader placement references a socket the node
      does not have.
    * ``SPEC206`` — both components on one socket (§II-A dedicates a
      socket per component; the channel-locality model assumes it).
    * ``SPEC204`` — a component's rank count exceeds the free cores of its
      socket.
    * ``SPEC207`` — the snapshot versions the channel must retain exceed
      the channel socket's free PMEM capacity (serial mode retains every
      version — the real capacity cost of serial scheduling).
    """
    label = f"spec {spec.name!r} under {config.label}"
    diagnostics: List[Diagnostic] = []
    n_sockets = node.n_sockets

    bad_socket = False
    for role, socket_id in (("writer", writer_socket), ("reader", reader_socket)):
        if not 0 <= socket_id < n_sockets:
            bad_socket = True
            diagnostics.append(
                _finding(
                    "SPEC203",
                    label,
                    f"{role} placed on socket {socket_id}, but the node has "
                    f"sockets 0..{n_sockets - 1}",
                    "place components on sockets that exist on the platform",
                )
            )
    if bad_socket:
        return diagnostics  # everything below needs real sockets

    if writer_socket == reader_socket:
        diagnostics.append(
            _finding(
                "SPEC206",
                label,
                f"writer and reader both placed on socket {writer_socket}",
                "dedicate one socket per component (§II-A)",
            )
        )
        return diagnostics

    for role, socket_id in (("writer", writer_socket), ("reader", reader_socket)):
        free = node.socket(socket_id).cores.available
        if spec.ranks > free:
            diagnostics.append(
                _finding(
                    "SPEC204",
                    label,
                    f"{role} needs {spec.ranks} cores on socket {socket_id}, "
                    f"only {free} free",
                    "reduce ranks or use a larger platform preset",
                )
            )

    channel_socket = writer_socket if config.writer_local else reader_socket
    retained = spec.iterations if not config.parallel else 2
    required = spec.snapshot.snapshot_bytes * spec.ranks * retained
    free_pmem = node.socket(channel_socket).pmem.free_bytes
    if required > free_pmem:
        diagnostics.append(
            _finding(
                "SPEC207",
                label,
                f"channel must retain {retained} version(s) = "
                f"{fmt_bytes(required)}, but socket {channel_socket} has "
                f"{fmt_bytes(free_pmem)} PMEM free",
                "fewer iterations, smaller snapshots, or parallel mode "
                "(which recycles a 2-version ring)",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Calibration and platform tables (PLAT301, PLAT302, PLAT303, PLAT304).
# ---------------------------------------------------------------------------
#: Thread range over which the bandwidth curves were calibrated (the
#: paper's testbed has 28 cores per socket; curves must behave through it).
CALIBRATED_THREADS = 28


def validate_calibration(cal, max_threads: int = CALIBRATED_THREADS) -> List[Diagnostic]:
    """Numeric sanity of one :class:`~repro.pmem.calibration.OptaneCalibration`.

    * ``PLAT304`` — the calibration's own per-field consistency checks fail.
    * ``PLAT301`` — a bandwidth curve goes negative, or is non-monotone
      where the model requires monotonicity: reads must be non-decreasing
      over the whole calibrated thread range, writes non-decreasing up to
      the write-peak thread count (beyond it a gentle decline is physical).
    * ``PLAT302`` — an idle latency constant is not strictly positive.
    """
    label = "calibration"
    diagnostics: List[Diagnostic] = []
    try:
        cal.validate()
    except CalibrationError as exc:
        diagnostics.append(
            _finding("PLAT304", label, str(exc), "fix the named constant")
        )

    for kind, curve, monotone_until in (
        ("read", read_bandwidth_total, max_threads),
        ("write", write_bandwidth_total, int(cal.write_peak_threads)),
    ):
        previous = 0.0
        for n in range(1, max_threads + 1):
            try:
                value = curve(cal, float(n))
            except (ValueError, OverflowError, ZeroDivisionError) as exc:
                diagnostics.append(
                    _finding(
                        "PLAT301",
                        label,
                        f"{kind} bandwidth curve raises at n={n}: {exc}",
                        "check the ramp/decay constants",
                    )
                )
                break
            if value < 0:
                diagnostics.append(
                    _finding(
                        "PLAT301",
                        label,
                        f"{kind} bandwidth is negative at n={n} "
                        f"({value:.3g} B/s)",
                        "bandwidth curves must be non-negative",
                    )
                )
                break
            if n <= monotone_until and value < previous:
                diagnostics.append(
                    _finding(
                        "PLAT301",
                        label,
                        f"{kind} bandwidth decreases from {previous:.3g} to "
                        f"{value:.3g} B/s between n={n - 1} and n={n}, inside "
                        f"the calibrated ramp (n <= {monotone_until})",
                        "the concurrency ramp must be non-decreasing",
                    )
                )
                break
            previous = value

    for name in (
        "read_latency_local",
        "write_latency_local",
        "read_latency_remote",
        "write_latency_remote",
    ):
        if getattr(cal, name) <= 0:
            diagnostics.append(
                _finding(
                    "PLAT302",
                    label,
                    f"{name} must be strictly positive, got {getattr(cal, name)}",
                    "idle latencies are hardware constants > 0",
                )
            )
    return diagnostics


def validate_node(node, cal) -> List[Diagnostic]:
    """Cross-check a node's devices against the calibration geometry.

    * ``PLAT303`` — a socket's interleave set disagrees with the
      calibration's stripe geometry (chunk size or DIMM count), so the
      granularity model and the allocator would assume different devices.
    """
    diagnostics: List[Diagnostic] = []
    for socket in node.sockets:
        label = f"socket {socket.socket_id}"
        interleave = socket.pmem.interleave
        if interleave.ndimms != cal.dimms_per_socket:
            diagnostics.append(
                _finding(
                    "PLAT303",
                    label,
                    f"device interleaves across {interleave.ndimms} DIMMs, "
                    f"calibration expects {cal.dimms_per_socket}",
                    "device geometry and calibration must agree",
                )
            )
        if interleave.chunk_bytes != cal.interleave_chunk:
            diagnostics.append(
                _finding(
                    "PLAT303",
                    label,
                    f"interleave chunk is {interleave.chunk_bytes} B, "
                    f"calibration expects {cal.interleave_chunk} B",
                    "device geometry and calibration must agree",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Aggregate pre-run hook.
# ---------------------------------------------------------------------------
def validate_run(
    spec,
    config,
    node,
    cal,
    writer_socket: int = 0,
    reader_socket: int = 1,
) -> List[Diagnostic]:
    """Validate everything a run depends on; raise on any error finding.

    Called by :func:`repro.workflow.runner.run_workflow` (and transitively
    by every experiment) before the first simulated event.  Raises
    :class:`repro.errors.ValidationError` carrying the full diagnostic
    list; returns the (warning-only) diagnostics otherwise.
    """
    diagnostics = (
        validate_workflow(spec)
        + validate_calibration(cal)
        + validate_node(node, cal)
    )
    # Placement checks assume a structurally sound spec and platform.
    if not diagnostics:
        diagnostics += validate_placement(
            spec, config, node, writer_socket=writer_socket, reader_socket=reader_socket
        )
    diagnostics = sort_diagnostics(diagnostics)
    if any(d.severity is Severity.ERROR for d in diagnostics):
        raise ValidationError(diagnostics)
    return diagnostics
