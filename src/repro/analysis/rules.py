"""Rule registry: every diagnostic code the analysis passes can emit.

Codes are grouped by family:

* ``SIM1xx`` — simulator-determinism lint rules (AST pass over source).
* ``SPEC2xx`` — workflow-spec structural validation (pre-run pass).
* ``PLAT3xx`` — platform/calibration table validation (pre-run pass).

The registry is the single source of truth for ``--select`` / ``--ignore``
filtering, the ``--list-rules`` CLI output, and the rule-code section of the
README.  Registering two rules under one code is a programming error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.analysis.diagnostics import Severity


@dataclass(frozen=True)
class Rule:
    """Metadata for one diagnostic code."""

    code: str
    name: str
    summary: str
    severity: Severity = Severity.ERROR


_REGISTRY: Dict[str, Rule] = {}


def register(
    code: str, name: str, summary: str, severity: Severity = Severity.ERROR
) -> Rule:
    """Register a rule; returns the :class:`Rule` for the checker to keep."""
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    rule = Rule(code=code, name=name, summary=summary, severity=severity)
    _REGISTRY[code] = rule
    return rule


def get_rule(code: str) -> Rule:
    """Look up a registered rule by code (raises ``KeyError`` if unknown)."""
    return _REGISTRY[code]


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def resolve_codes(spec: Optional[Iterable[str]]) -> Optional[FrozenSet[str]]:
    """Expand a ``--select``/``--ignore`` list into a set of full codes.

    Accepts full codes ("SIM101") and family prefixes ("SIM", "SPEC2");
    unknown entries raise ``ValueError`` so typos fail loudly.
    """
    if spec is None:
        return None
    resolved = set()
    for entry in spec:
        entry = entry.strip().upper()
        if not entry:
            continue
        matches = [code for code in _REGISTRY if code.startswith(entry)]
        if not matches:
            raise ValueError(
                f"unknown rule or prefix {entry!r}; known codes: "
                f"{', '.join(sorted(_REGISTRY))}"
            )
        resolved.update(matches)
    return frozenset(resolved)


# ---------------------------------------------------------------------------
# SIM1xx — determinism lint (repro.analysis.simlint).
# ---------------------------------------------------------------------------
SIM100 = register(
    "SIM100",
    "syntax-error",
    "file does not parse; nothing else can be checked",
)
SIM101 = register(
    "SIM101",
    "wall-clock-source",
    "wall-clock call (time.time / time.monotonic / datetime.now / ...) in "
    "simulator code; virtual time must come from Engine.now",
)
SIM102 = register(
    "SIM102",
    "unseeded-random",
    "module-level random (random.random / numpy.random.*) or unseeded RNG "
    "constructor in simulator code; seed an explicit Random(seed) instead",
)
SIM103 = register(
    "SIM103",
    "float-time-equality",
    "== / != on float virtual timestamps; exact comparison breaks once "
    "flow completions introduce rounding",
)
SIM104 = register(
    "SIM104",
    "mutable-default-argument",
    "mutable default argument; the shared instance leaks state across "
    "calls and across simulated runs",
)
SIM105 = register(
    "SIM105",
    "blocking-io-in-sim",
    "blocking I/O (open / time.sleep / sockets / subprocess) inside "
    "sim-process code; simulated processes must only yield events",
)
SIM106 = register(
    "SIM106",
    "magic-size-literal",
    "raw byte/bandwidth magnitude literal; use the repro.units constants "
    "(KiB/MiB/GiB, KB/MB/GB, GIGA)",
)
SIM108 = register(
    "SIM108",
    "raw-trace-record-append",
    "direct append to Tracer.records bypasses the timestamp validation in "
    "Tracer.record(); only repro.sim.trace and repro.obs may touch the "
    "record list",
)
SIM109 = register(
    "SIM109",
    "stray-host-clock",
    "host-clock call (time.perf_counter / time.time / ...) outside the "
    "sanctioned readers; wall-clock measurement belongs in "
    "repro.obs.hostmetrics or repro.runtime so host cost stays out of "
    "deterministic payloads",
)
SIM110 = register(
    "SIM110",
    "host-concurrency-import",
    "multiprocessing / concurrent.futures / threading / signal import "
    "outside repro.service and repro.runtime; host concurrency anywhere "
    "else lets scheduling nondeterminism leak into simulator code",
)

SIM111 = register(
    "SIM111",
    "hotpath-allocation",
    "dict / ResourceLoad constructed inside a loop of a function marked "
    "'# simlint: hotpath'; per-iteration allocation churn is exactly what "
    "the solver fast path exists to avoid — reset objects in place",
)

# ---------------------------------------------------------------------------
# SIM2xx — whole-program determinism taint (repro.analysis.taint).
# ---------------------------------------------------------------------------
SIM201 = register(
    "SIM201",
    "host-clock-taint",
    "host-clock value (time.time / perf_counter / datetime.now, possibly "
    "returned through helper calls) flows into a deterministic sink — "
    "trace record, store cell, manifest, or cell-id hash; wall-clock "
    "readings may only travel via repro.obs.hostmetrics into the "
    "segregated host section",
)
SIM202 = register(
    "SIM202",
    "entropy-taint",
    "host-entropy value (random.* / os.urandom / uuid4 / os.getpid / "
    "builtin hash) flows into a deterministic sink; derive identifiers "
    "and payloads from the spec instead",
)
SIM203 = register(
    "SIM203",
    "iteration-order-taint",
    "unordered iteration (set / os.listdir / glob / unsorted dict view) "
    "is accumulated order-sensitively (list append) and reaches a "
    "deterministic sink; sort before accumulating so the stored order is "
    "input-determined",
)

# ---------------------------------------------------------------------------
# SVC4xx — service atomicity / worker-safety (repro.analysis.svc).
# ---------------------------------------------------------------------------
SVC401 = register(
    "SVC401",
    "shared-mutable-worker-state",
    "mutable module-level container is mutated in code reachable from a "
    "repro.service worker entrypoint; forked workers each see a private "
    "copy, so cross-worker state silently diverges — pass state "
    "explicitly or keep it in the store",
)
SVC402 = register(
    "SVC402",
    "unsanctioned-store-write",
    "direct file write under service/ or campaigns/ outside the "
    "sanctioned atomic-append helpers (CampaignStore / JobQueue / result "
    "cache); concurrent writers corrupt the append-only JSONL stores",
)
SVC403 = register(
    "SVC403",
    "completion-order-dependence",
    "results consumed in worker completion order (imap_unordered / "
    "as_completed / pool run) reach a store or record sink without a "
    "sort-by-cell-id; byte-identity across worker counts requires "
    "order-normalized persistence",
)

# ---------------------------------------------------------------------------
# UNIT6xx — unit/dimension checking (repro.analysis.units_check).
# ---------------------------------------------------------------------------
UNIT601 = register(
    "UNIT601",
    "mixed-dimension-arithmetic",
    "+ or - between values of different physical dimensions (bytes vs "
    "seconds vs bytes/second) in model math; the result is meaningless "
    "even though the floats happily add",
    severity=Severity.ERROR,
)
UNIT602 = register(
    "UNIT602",
    "mixed-dimension-comparison",
    "ordering/equality comparison between values of different physical "
    "dimensions; comparisons must be like-with-like",
    severity=Severity.ERROR,
)
UNIT603 = register(
    "UNIT603",
    "dimension-mismatch-binding",
    "a name/argument/return that declares a dimension by convention "
    "(*_bytes, *_seconds, *_bps, latency, bandwidth, ...) receives a "
    "value inferred to have a different dimension",
    severity=Severity.WARNING,
)

# ---------------------------------------------------------------------------
# SPEC2xx — workflow-spec validation (repro.analysis.validate).
# ---------------------------------------------------------------------------
SPEC201 = register(
    "SPEC201",
    "cyclic-coupling",
    "workflow coupling graph has a cycle; writer/reader couplings must "
    "form a DAG or no snapshot version can ever be published first",
)
SPEC202 = register(
    "SPEC202",
    "dangling-channel-endpoint",
    "coupling references a component role the workflow does not define",
)
SPEC203 = register(
    "SPEC203",
    "bad-socket-reference",
    "placement references a socket the platform does not have",
)
SPEC204 = register(
    "SPEC204",
    "ranks-exceed-cores",
    "component rank count exceeds the free cores of its socket",
)
SPEC205 = register(
    "SPEC205",
    "unknown-storage-stack",
    "workflow names a storage stack the library does not model",
)
SPEC206 = register(
    "SPEC206",
    "components-share-socket",
    "writer and reader are placed on the same socket (the paper's "
    "workflows dedicate one socket per component, §II-A)",
)
SPEC207 = register(
    "SPEC207",
    "channel-exceeds-pmem",
    "retained snapshot versions exceed the channel socket's PMEM capacity "
    "(serial mode retains every version)",
)

# ---------------------------------------------------------------------------
# PLAT3xx — platform/calibration validation (repro.analysis.validate).
# ---------------------------------------------------------------------------
PLAT301 = register(
    "PLAT301",
    "bandwidth-curve-invalid",
    "bandwidth curve is negative or non-monotone over the calibrated "
    "thread range",
)
PLAT302 = register(
    "PLAT302",
    "non-positive-latency",
    "device latency constant is not strictly positive",
)
PLAT303 = register(
    "PLAT303",
    "interleave-geometry-mismatch",
    "device interleave geometry (stripe/DIMM count) disagrees with the "
    "calibration constants",
)
PLAT304 = register(
    "PLAT304",
    "calibration-inconsistent",
    "calibration constants fail their own consistency checks",
)


#: Every (code, summary) pair, for docs and the CLI.
RULE_TABLE: Tuple[Tuple[str, str], ...] = tuple(
    (rule.code, rule.summary) for rule in all_rules()
)
