"""Baseline suppression: adopt the analyzers without a flag day.

A *baseline file* records the findings a repository has accepted (or not
yet fixed).  With a baseline loaded, the CLI fails only on **new**
findings — existing debt stays visible in ``--format json``/``sarif``
output but does not break CI.  This is how a whole-program analyzer can
gate a tree that predates it.

Matching is deliberately **line-number independent**: a finding is
identified by ``(code, normalized path, message)``, so unrelated edits
above a baselined finding do not resurrect it.  Messages include the
enclosing function name, which keeps the key stable under line churn but
specific enough that a *second* identical violation in another function
is still new.  The committed file is ``analysis-baseline.json`` at the
repository root; the CLI auto-loads it from the working directory (or
``--baseline PATH`` explicitly, ``--no-baseline`` to see everything).

Refresh with ``python -m repro.analysis --write-baseline`` after fixing
or accepting findings; the file is sorted and stable so diffs review
cleanly.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.analysis.diagnostics import Diagnostic

#: Default committed baseline filename (repository root).
DEFAULT_BASELINE = "analysis-baseline.json"

_FORMAT_VERSION = 1

Key = Tuple[str, str, str]


def _normalize_path(path: str) -> str:
    # Keys must match no matter how the tree was addressed: relativize
    # absolute paths against the working directory (where the baseline
    # file lives) so ``repro.analysis src/`` and ``repro.analysis
    # /abs/path/src/`` agree on identity.
    if path and os.path.isabs(path):
        try:
            relative = os.path.relpath(path, os.getcwd())
        except ValueError:
            relative = path
        if not relative.startswith(".."):
            path = relative
    path = path.replace("\\", "/")
    while path.startswith("./"):
        path = path[2:]
    return path.lstrip("/")


def finding_key(diagnostic: Diagnostic) -> Key:
    """The line-independent identity of a finding."""
    return (
        diagnostic.code,
        _normalize_path(diagnostic.path or ""),
        diagnostic.message,
    )


class Baseline:
    """A set of accepted finding keys."""

    def __init__(self, keys: Iterable[Key] = ()) -> None:
        self.keys: Set[Key] = set(keys)

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, diagnostic: Diagnostic) -> bool:
        return finding_key(diagnostic) in self.keys

    # -- partitioning ------------------------------------------------------
    def split(
        self, diagnostics: Iterable[Diagnostic]
    ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """``(new, baselined)`` partition of *diagnostics*."""
        new: List[Diagnostic] = []
        old: List[Diagnostic] = []
        for diagnostic in diagnostics:
            (old if diagnostic in self else new).append(diagnostic)
        return new, old

    def unused(self, diagnostics: Iterable[Diagnostic]) -> List[Key]:
        """Baseline entries no current finding matches (fixed debt)."""
        present = {finding_key(d) for d in diagnostics}
        return sorted(self.keys - present)

    # -- serialization -----------------------------------------------------
    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        return cls(finding_key(d) for d in diagnostics)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(f"{path}: not a baseline file")
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r}"
            )
        keys = []
        for entry in payload["findings"]:
            keys.append(
                (
                    str(entry["code"]),
                    _normalize_path(str(entry["path"])),
                    str(entry["message"]),
                )
            )
        return cls(keys)

    def dump(self, path: str) -> None:
        payload: Dict[str, Any] = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Accepted analysis findings; CI fails only on findings "
                "not listed here. Refresh: python -m repro.analysis "
                "--write-baseline"
            ),
            "findings": [
                {"code": code, "path": norm_path, "message": message}
                for code, norm_path, message in sorted(self.keys)
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")


def find_default_baseline(cwd: str = ".") -> str:
    """Path to the auto-loaded baseline file, or ``""`` if absent."""
    candidate = os.path.join(cwd, DEFAULT_BASELINE)
    return candidate if os.path.isfile(candidate) else ""
