"""SARIF 2.1.0 output for the analysis passes.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is the
interchange format CI systems ingest for code-scanning annotations.  This
emitter produces one ``run`` with the full rule registry as
``tool.driver.rules`` and one ``result`` per diagnostic, carrying the
rule index, level, message (with the repository's hint appended), and a
``physicalLocation`` with 1-based line/column.

The module also ships :func:`validate_sarif` — a structural validator for
the subset of the 2.1.0 schema we emit.  The container deliberately has
no third-party ``jsonschema``, so the validator is hand-rolled; it exists
so a regression in the emitter fails a unit test rather than a CI upload.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-analysis"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_index() -> Dict[str, int]:
    return {rule.code: index for index, rule in enumerate(all_rules())}


def sarif_document(diagnostics: Iterable[Diagnostic]) -> Dict[str, Any]:
    """Build the SARIF run as a plain dict (stable key order)."""
    index = _rule_index()
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": _LEVELS.get(rule.severity, "warning")
            },
        }
        for rule in all_rules()
    ]
    results: List[Dict[str, Any]] = []
    for diagnostic in diagnostics:
        message = diagnostic.message
        if diagnostic.hint:
            message = f"{message} ({diagnostic.hint})"
        result: Dict[str, Any] = {
            "ruleId": diagnostic.code,
            "level": _LEVELS.get(diagnostic.severity, "warning"),
            "message": {"text": message},
        }
        if diagnostic.code in index:
            result["ruleIndex"] = index[diagnostic.code]
        if diagnostic.path is not None:
            location: Dict[str, Any] = {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diagnostic.path.replace("\\", "/"),
                    }
                }
            }
            region: Dict[str, Any] = {}
            if diagnostic.line is not None:
                region["startLine"] = max(1, diagnostic.line)
            if diagnostic.col is not None:
                region["startColumn"] = diagnostic.col + 1
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/repro/repro#static-analysis"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(diagnostics: Iterable[Diagnostic]) -> str:
    """The SARIF document as a JSON string."""
    return json.dumps(sarif_document(diagnostics), indent=2, sort_keys=False)


# ---------------------------------------------------------------------------
# Structural validation (the subset of the 2.1.0 schema we emit).
# ---------------------------------------------------------------------------
def validate_sarif(document: Any) -> List[str]:
    """Structural errors in *document*; empty list means valid."""
    errors: List[str] = []

    def expect(cond: bool, message: str) -> bool:
        if not cond:
            errors.append(message)
        return cond

    if not expect(isinstance(document, dict), "document must be an object"):
        return errors
    expect(
        document.get("version") == SARIF_VERSION,
        f"version must be {SARIF_VERSION!r}",
    )
    runs = document.get("runs")
    if not expect(
        isinstance(runs, list) and runs, "runs must be a non-empty array"
    ):
        return errors
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not expect(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if expect(
            isinstance(driver, dict), f"{where}.tool.driver must be an object"
        ):
            expect(
                isinstance(driver.get("name"), str) and driver["name"],
                f"{where}.tool.driver.name must be a non-empty string",
            )
            rules = driver.get("rules", [])
            expect(
                isinstance(rules, list),
                f"{where}.tool.driver.rules must be an array",
            )
            rule_count = len(rules) if isinstance(rules, list) else 0
            for rule_i, rule in enumerate(
                rules if isinstance(rules, list) else []
            ):
                expect(
                    isinstance(rule, dict) and isinstance(rule.get("id"), str),
                    f"{where}.tool.driver.rules[{rule_i}].id must be a string",
                )
        else:
            rule_count = 0
        results = run.get("results")
        if not expect(
            isinstance(results, list), f"{where}.results must be an array"
        ):
            continue
        for result_index, result in enumerate(results):
            rwhere = f"{where}.results[{result_index}]"
            if not expect(
                isinstance(result, dict), f"{rwhere} must be an object"
            ):
                continue
            expect(
                isinstance(result.get("ruleId"), str),
                f"{rwhere}.ruleId must be a string",
            )
            message = result.get("message")
            expect(
                isinstance(message, dict)
                and isinstance(message.get("text"), str),
                f"{rwhere}.message.text must be a string",
            )
            level = result.get("level")
            if level is not None:
                expect(
                    level in ("none", "note", "warning", "error"),
                    f"{rwhere}.level must be a SARIF level",
                )
            rule_index = result.get("ruleIndex")
            if rule_index is not None:
                expect(
                    isinstance(rule_index, int)
                    and 0 <= rule_index < rule_count,
                    f"{rwhere}.ruleIndex out of range",
                )
            for loc_index, location in enumerate(
                result.get("locations", []) or []
            ):
                lwhere = f"{rwhere}.locations[{loc_index}]"
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not expect(
                    isinstance(physical, dict),
                    f"{lwhere}.physicalLocation must be an object",
                ):
                    continue
                artifact = physical.get("artifactLocation")
                expect(
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str),
                    f"{lwhere}.physicalLocation.artifactLocation.uri "
                    "must be a string",
                )
                region = physical.get("region")
                if region is not None and expect(
                    isinstance(region, dict),
                    f"{lwhere}.physicalLocation.region must be an object",
                ):
                    for field in ("startLine", "startColumn"):
                        value = region.get(field)
                        if value is not None:
                            expect(
                                isinstance(value, int) and value >= 1,
                                f"{lwhere}.physicalLocation.region."
                                f"{field} must be a positive integer",
                            )
    return errors
