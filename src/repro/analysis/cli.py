"""``python -m repro.analysis`` — run the static-analysis passes.

Examples::

    python -m repro.analysis src/                 # lint + dataflow analyses
    python -m repro.analysis src/ --format json   # machine-readable
    python -m repro.analysis src/ --format sarif  # CI code-scanning upload
    python -m repro.analysis src/ --select SIM2,SVC4,UNIT6
    python -m repro.analysis src/ --ignore SIM106
    python -m repro.analysis src/ --fix           # rewrite magic literals
    python -m repro.analysis --list-rules
    python -m repro.analysis --platform-only      # just the platform tables
    python -m repro.analysis src/ --write-baseline  # accept current findings

Three layers run by default:

* the per-file lint (``SIM1xx``) over every ``*.py`` given;
* the whole-program dataflow analyses (``SIM2xx`` determinism taint,
  ``SVC4xx`` service atomicity, ``UNIT6xx`` dimension checking) over the
  project model built from the same paths;
* the platform/calibration table validation (``PLAT3xx``) — part of the
  repository's correctness floor, checked in microseconds.

If ``analysis-baseline.json`` exists in the working directory (or
``--baseline PATH`` is given) the accepted findings listed there do not
fail the run — only **new** findings do.  ``--no-baseline`` shows
everything; ``--write-baseline`` refreshes the file from the current
findings.

Exit status: 0 when no (non-baselined) error-severity diagnostics were
found, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    find_default_baseline,
)
from repro.analysis.diagnostics import (
    DiagnosticSink,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.rules import all_rules, resolve_codes
from repro.analysis.sarif import render_sarif
from repro.analysis.simlint import lint_paths
from repro.analysis.validate import validate_calibration, validate_node


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part for part in value.replace(",", " ").split() if part]


def _run_dataflow(paths: List[str], sink: DiagnosticSink) -> None:
    """The whole-program analyses (SIM2xx / SVC4xx / UNIT6xx)."""
    from repro.analysis.project import Project
    from repro.analysis.svc import check_service_atomicity
    from repro.analysis.taint import check_determinism_taint
    from repro.analysis.units_check import check_units

    project = Project.load(paths)
    check_determinism_taint(project, sink=sink)
    check_service_atomicity(project, sink=sink)
    check_units(project, sink=sink)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=(
            "Determinism lint, dataflow analyses, and platform validation "
            "for the simulator."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/ if present)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="only report these rule codes or prefixes (comma-separated)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="suppress these rule codes or prefixes (comma-separated)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its summary and exit",
    )
    parser.add_argument(
        "--platform-only",
        action="store_true",
        help="skip source analysis; only validate platform/calibration tables",
    )
    parser.add_argument(
        "--no-dataflow",
        action="store_true",
        help="skip the whole-program analyses (lint + platform only)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite SIM106 magic literals in place before analyzing",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of accepted findings (default: "
            f"{DEFAULT_BASELINE} in the working directory, if present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report and fail on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: write them to the baseline file",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  [{rule.severity.value}]  {rule.name}: {rule.summary}")
        return 0

    try:
        select = resolve_codes(_split_codes(args.select))
        ignore = resolve_codes(_split_codes(args.ignore)) or frozenset()
    except ValueError as exc:
        parser.error(str(exc))

    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    for path in paths:
        if not os.path.exists(path):
            parser.error(f"no such file or directory: {path}")

    if args.fix:
        from repro.analysis.autofix import fix_paths

        for path, count in sorted(fix_paths(paths).items()):
            print(f"fixed {count} magic literal(s) in {path}")

    sink = DiagnosticSink(select=select, ignore=ignore)

    # Platform/calibration tables: always part of the correctness floor.
    from repro.platform.builder import paper_testbed
    from repro.pmem.calibration import DEFAULT_CALIBRATION

    for diagnostic in validate_calibration(DEFAULT_CALIBRATION) + validate_node(
        paper_testbed(), DEFAULT_CALIBRATION
    ):
        sink.emit(diagnostic)

    if not args.platform_only:
        lint_paths(paths, sink=sink)
        if not args.no_dataflow:
            _run_dataflow(paths, sink)

    diagnostics = sink.sorted()

    baseline_path = args.baseline or find_default_baseline()
    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        Baseline.from_diagnostics(diagnostics).dump(target)
        print(f"wrote {len(diagnostics)} finding(s) to {target}")
        return 0

    baselined_count = 0
    if baseline_path and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load baseline: {exc}")
        diagnostics, baselined = baseline.split(diagnostics)
        baselined_count = len(baselined)

    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "sarif":
        print(render_sarif(diagnostics))
    elif diagnostics:
        print(render_text(diagnostics))
        if baselined_count:
            print(f"({baselined_count} baselined finding(s) not shown)")
    else:
        suffix = (
            f" ({baselined_count} baselined)" if baselined_count else ""
        )
        print(f"0 error(s), 0 warning(s){suffix}")
    return 1 if any(d.severity is Severity.ERROR for d in diagnostics) else 0


def entry() -> None:  # pragma: no cover - console_scripts wrapper
    sys.exit(main())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
