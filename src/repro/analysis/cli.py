"""``python -m repro.analysis`` — run the static-analysis passes.

Examples::

    python -m repro.analysis src/                 # lint the tree
    python -m repro.analysis src/ --format json   # machine-readable
    python -m repro.analysis src/ --select SIM101,SIM105
    python -m repro.analysis src/ --ignore SIM106
    python -m repro.analysis --list-rules
    python -m repro.analysis --platform-only      # just the platform tables

Alongside the source lint, the CLI always validates the default platform
and calibration tables (``PLAT3xx``) — they are part of the repository's
correctness floor, and checking them takes microseconds.

Exit status: 0 when no error-severity diagnostics were found, 1 otherwise,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.diagnostics import (
    DiagnosticSink,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.rules import all_rules, resolve_codes
from repro.analysis.simlint import lint_paths
from repro.analysis.validate import validate_calibration, validate_node


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part for part in value.replace(",", " ").split() if part]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="Determinism lint + platform validation for the simulator.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if present)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="only report these rule codes or prefixes (comma-separated)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="suppress these rule codes or prefixes (comma-separated)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its summary and exit",
    )
    parser.add_argument(
        "--platform-only",
        action="store_true",
        help="skip the source lint; only validate platform/calibration tables",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  [{rule.severity.value}]  {rule.name}: {rule.summary}")
        return 0

    try:
        select = resolve_codes(_split_codes(args.select))
        ignore = resolve_codes(_split_codes(args.ignore)) or frozenset()
    except ValueError as exc:
        parser.error(str(exc))

    sink = DiagnosticSink(select=select, ignore=ignore)

    # Platform/calibration tables: always part of the correctness floor.
    from repro.platform.builder import paper_testbed
    from repro.pmem.calibration import DEFAULT_CALIBRATION

    for diagnostic in validate_calibration(DEFAULT_CALIBRATION) + validate_node(
        paper_testbed(), DEFAULT_CALIBRATION
    ):
        sink.emit(diagnostic)

    if not args.platform_only:
        paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
        for path in paths:
            if not os.path.exists(path):
                parser.error(f"no such file or directory: {path}")
        lint_paths(paths, sink=sink)

    diagnostics = sink.sorted()
    if args.format == "json":
        print(render_json(diagnostics))
    elif diagnostics:
        print(render_text(diagnostics))
    else:
        print("0 error(s), 0 warning(s)")
    return 1 if any(d.severity is Severity.ERROR for d in diagnostics) else 0


def entry() -> None:  # pragma: no cover - console_scripts wrapper
    sys.exit(main())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
