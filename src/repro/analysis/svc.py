"""SVC4xx — service-atomicity analysis for the scheduling service.

:mod:`repro.service` promises byte-identical campaign stores *regardless
of worker order* (PR 4's shuffled-completion-order regression test).  The
three rules here make the invariants behind that promise statically
checkable instead of only empirically observed:

``SVC401`` shared mutable module-level state
    A module-level ``list``/``dict``/``set`` that some function *mutates*,
    in a module transitively imported by the worker entrypoints
    (:mod:`repro.service.tasks`, :mod:`repro.service.pool`).  Under
    ``multiprocessing`` each worker gets its own copy-on-write instance,
    so such state silently diverges between parent and workers — reads
    look fine, aggregates are wrong.
``SVC402`` unsanctioned writes into service/campaign storage
    ``open(..., "w"/"a"/"x")`` on paths inside ``service/`` or
    ``campaigns/`` anywhere outside the sanctioned append helpers
    (:mod:`repro.obs.store`, :mod:`repro.service.queue`,
    :mod:`repro.service.cache`).  Those helpers are the atomicity boundary
    — they validate, serialize canonically, and append whole lines; a raw
    ``open`` bypasses all three.
``SVC403`` order-sensitive consumption of parallel results
    Results consumed *in completion order* (``imap_unordered``,
    ``concurrent.futures.as_completed``) accumulated into an
    order-preserving container that reaches a deterministic store sink
    without an intervening ``sorted(...)`` — the exact bug class the
    scheduler's sort-by-cell-id persistence exists to prevent.  This
    reuses the SIM2xx taint engine with a ``completion-order`` label and
    the same sinks/sanitizers.  ``WorkerPool.run`` is *not* a source: it
    returns outcomes in submission order by contract (only its
    ``on_outcome`` callback fires in completion order).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow import TaintPolicy, TaintWalker, run_taint_analysis
from repro.analysis.diagnostics import Diagnostic, DiagnosticSink, sort_diagnostics
from repro.analysis.noqa import filter_noqa
from repro.analysis.project import (
    ModuleInfo,
    Project,
    dotted_name,
)
from repro.analysis.rules import get_rule
from repro.analysis.taint import DeterminismTaintPolicy

#: Modules whose functions run inside worker processes (pool entrypoints).
WORKER_ENTRY_MODULES: Tuple[str, ...] = (
    "repro.service.tasks",
    "repro.service.pool",
)

#: The sanctioned atomic-append helpers for service/campaign storage.
SANCTIONED_WRITER_MODULES: FrozenSet[str] = frozenset(
    {"repro.obs.store", "repro.service.queue", "repro.service.cache"}
)

#: Mutating container methods (SVC401).
_MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "appendleft",
        "popleft",
    }
)

#: Write modes for open() (SVC402).
_WRITE_MODES = ("w", "a", "x", "r+", "w+", "a+")

#: Path fragments that mean "inside the persistent stores".
_STORE_PATH_MARKERS = ("campaign", "service", "queue.jsonl", "cache")

#: Names that, appearing in a path expression, tie it to the stores.
_STORE_PATH_NAMES: FrozenSet[str] = frozenset(
    {"DEFAULT_CAMPAIGN_DIR", "DEFAULT_SERVICE_DIR", "QUEUE_FILENAME"}
)

#: Completion-order label for SVC403.
COMPLETION_ORDER = "completion-order"


def _module_tail_in(name: str, allowed: FrozenSet[str]) -> bool:
    return name in allowed or any(
        name.endswith("." + entry) for entry in allowed
    )


# ---------------------------------------------------------------------------
# SVC401 — shared mutable module-level state.
# ---------------------------------------------------------------------------
def _local_names(fn_node: ast.AST) -> Set[str]:
    """Parameter and locally-assigned names of a function (shadow check)."""
    names: Set[str] = set()
    args = fn_node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    # ``global X`` un-shadows X on purpose.
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            names -= set(node.names)
    return names


def _mutations_of_global(
    module: ModuleInfo, name: str, project: Project
) -> List[Tuple[ModuleInfo, ast.AST, str]]:
    """(module, node, how) sites that mutate module-level *name*."""
    sites: List[Tuple[ModuleInfo, ast.AST, str]] = []
    qualified = f"{module.name}.{name}"

    def scan(info: ModuleInfo, fn_node: ast.AST, shadowed: Set[str]) -> None:
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr not in _MUTATOR_METHODS:
                    continue
                receiver = dotted_name(node.func.value)
                if receiver is None:
                    continue
                resolved = info.imports.resolve(receiver)
                if (info is module and receiver == name and name not in shadowed) or (
                    resolved == qualified
                    or project.resolve_symbol(resolved) == qualified
                ):
                    sites.append((info, node, f".{node.func.attr}()"))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    receiver = dotted_name(target.value)
                    if receiver is None:
                        continue
                    resolved = info.imports.resolve(receiver)
                    if (
                        info is module
                        and receiver == name
                        and name not in shadowed
                    ) or resolved == qualified:
                        sites.append((info, node, "[...] assignment"))

    for info in project.modules.values():
        for function in info.functions:
            scan(info, function.node, _local_names(function.node))
    return sites


def check_shared_state(
    project: Project, sink: DiagnosticSink
) -> List[Diagnostic]:
    """SVC401 over modules reachable from the worker entrypoints."""
    roots = [m for m in WORKER_ENTRY_MODULES if m in project.modules]
    # Fall back to suffix matching for path-derived module names.
    if not roots:
        roots = [
            name
            for name in project.modules
            if any(name.endswith("." + r) or name == r for r in WORKER_ENTRY_MODULES)
        ]
    reachable = project.reachable_modules(roots)
    diagnostics: List[Diagnostic] = []
    for name in sorted(reachable):
        module = project.modules[name]
        for global_name in sorted(module.mutable_globals):
            if global_name == "__all__":
                continue
            sites = _mutations_of_global(module, global_name, project)
            if not sites:
                continue
            node = module.mutable_globals[global_name]
            where = ", ".join(
                sorted(
                    {
                        f"{info.name}:{getattr(site, 'lineno', '?')}"
                        for info, site, _ in sites
                    }
                )[:3]
            )
            rule = get_rule("SVC401")
            diagnostics.append(
                Diagnostic(
                    code="SVC401",
                    message=(
                        f"module-level mutable {global_name!r} is mutated "
                        f"({where}) and reachable from service workers; "
                        "each worker process sees its own diverging copy"
                    ),
                    severity=rule.severity,
                    path=module.path,
                    line=getattr(node, "lineno", None),
                    col=getattr(node, "col_offset", None),
                    hint=(
                        "pass the state explicitly through job payloads / "
                        "results, or make the module-level value immutable"
                    ),
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# SVC402 — unsanctioned writes into service/campaign storage.
# ---------------------------------------------------------------------------
def _mentions_store_path(
    node: ast.AST, assignments: Dict[str, ast.AST], depth: int = 0
) -> bool:
    if depth > 4 or node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            lowered = sub.value.lower()
            if any(marker in lowered for marker in _STORE_PATH_MARKERS):
                return True
        elif isinstance(sub, ast.Name):
            if sub.id in _STORE_PATH_NAMES:
                return True
            target = assignments.get(sub.id)
            if target is not None and _mentions_store_path(
                target, {}, depth + 1
            ):
                return True
        elif isinstance(sub, ast.Attribute):
            if sub.attr in _STORE_PATH_NAMES:
                return True
    return False


def _open_mode(call: ast.Call) -> Optional[str]:
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def check_store_writes(
    project: Project, sink: DiagnosticSink
) -> List[Diagnostic]:
    """SVC402 over every module of the project."""
    diagnostics: List[Diagnostic] = []
    for name in sorted(project.modules):
        module = project.modules[name]
        if _module_tail_in(module.name, SANCTIONED_WRITER_MODULES):
            continue
        assignments: Dict[str, ast.AST] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and node.value is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assignments[target.id] = node.value
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            resolved = module.imports.resolve(dotted) if dotted else None
            if resolved not in ("open", "io.open", "os.open"):
                continue
            mode = _open_mode(node)
            if mode is None or not mode.startswith(_WRITE_MODES):
                continue
            path_arg = node.args[0] if node.args else None
            if path_arg is None or not _mentions_store_path(
                path_arg, assignments
            ):
                continue
            rule = get_rule("SVC402")
            diagnostics.append(
                Diagnostic(
                    code="SVC402",
                    message=(
                        f"raw open(..., {mode!r}) into service/campaign "
                        f"storage in {module.name}; the append-only stores "
                        "must go through their atomic helpers"
                    ),
                    severity=rule.severity,
                    path=module.path,
                    line=getattr(node, "lineno", None),
                    col=getattr(node, "col_offset", None),
                    hint=(
                        "use CampaignStore.create/append_cell, "
                        "JobQueue.submit/_transition, or ResultCache.put"
                    ),
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# SVC403 — order-sensitive consumption of parallel results.
# ---------------------------------------------------------------------------
class CompletionOrderPolicy(TaintPolicy):
    """Taint policy: pool results carry completion-order until sorted."""

    order_labels = frozenset({COMPLETION_ORDER})

    def __init__(self) -> None:
        self._sinks = DeterminismTaintPolicy()

    def source_taints(
        self, resolved: Optional[str], call: ast.Call, walker: TaintWalker
    ) -> Set[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            # WorkerPool.run is deliberately NOT here: it returns
            # outcomes in submission order (repro.service.pool contract).
            if func.attr in ("imap_unordered", "as_completed"):
                return {COMPLETION_ORDER}
        if resolved == "concurrent.futures.as_completed":
            return {COMPLETION_ORDER}
        return set()

    def sanitized_labels(
        self, resolved: Optional[str], call: ast.Call
    ) -> Set[str]:
        if resolved in ("sorted", "sum", "min", "max", "len", "any", "all"):
            return {COMPLETION_ORDER}
        return set()

    def sink_args(self, resolved, call, walker):
        triples = self._sinks.sink_args(resolved, call, walker)
        trigger = frozenset({COMPLETION_ORDER})
        return [(node, label, trigger) for node, label, _ in triples]


def check_completion_order(
    project: Project, sink: DiagnosticSink
) -> List[Diagnostic]:
    """SVC403: completion-order taint reaching store sinks."""
    hits = run_taint_analysis(project, CompletionOrderPolicy())
    diagnostics: List[Diagnostic] = []
    seen: Set[Tuple[str, Optional[int], Optional[int]]] = set()
    rule = get_rule("SVC403")
    for hit in hits:
        if COMPLETION_ORDER not in hit.labels:
            continue
        line = getattr(hit.node, "lineno", None)
        col = getattr(hit.node, "col_offset", None)
        key = (hit.module.path, line, col)
        if key in seen:
            continue
        seen.add(key)
        chain = f" {hit.via}" if hit.via else ""
        diagnostics.append(
            Diagnostic(
                code="SVC403",
                message=(
                    f"worker-pool results reach {hit.sink}{chain} in "
                    f"{hit.function}() without a deterministic sort"
                ),
                severity=rule.severity,
                path=hit.module.path,
                line=line,
                col=col,
                hint=(
                    "sort completed results by cell id before persisting "
                    "(sorted(cells, key=lambda c: c.cell_id))"
                ),
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------
def check_service_atomicity(
    project: Project, sink: Optional[DiagnosticSink] = None
) -> List[Diagnostic]:
    """Run all SVC4xx analyses over *project*; emits into *sink*."""
    sink = sink if sink is not None else DiagnosticSink()
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(check_shared_state(project, sink))
    diagnostics.extend(check_store_writes(project, sink))
    diagnostics.extend(check_completion_order(project, sink))
    by_path: Dict[str, List[Diagnostic]] = {}
    for diagnostic in diagnostics:
        by_path.setdefault(diagnostic.path or "", []).append(diagnostic)
    kept: List[Diagnostic] = []
    sources = {info.path: info.source for info in project.modules.values()}
    for path, entries in by_path.items():
        source = sources.get(path)
        kept.extend(
            filter_noqa(entries, source) if source is not None else entries
        )
    for diagnostic in sort_diagnostics(kept):
        sink.emit(diagnostic)
    return sink.diagnostics
