"""simlint — AST lint pass enforcing simulator-determinism invariants.

The scientific value of this reproduction rests on the discrete-event
simulator being *deterministic*: the same spec, configuration, and
calibration must produce byte-identical event traces.  That property is
easy to break silently — one ``time.time()`` for a "harmless" timestamp, a
module-level ``random.random()``, an ``==`` on a float virtual time that
happens to compare equal today — so this pass walks the source with
:mod:`ast` (stdlib only, no new dependencies) and flags:

``SIM101``
    Wall-clock sources (``time.time``, ``time.monotonic``,
    ``datetime.now``, ...) anywhere in the model/simulator code.  Virtual
    time comes from ``Engine.now``; the only package allowed to read the
    wall clock is :mod:`repro.runtime` (the real threaded executor).
``SIM102``
    Module-level ``random`` / ``numpy.random`` calls and unseeded RNG
    constructors.  Randomness is allowed only through an explicitly seeded
    generator passed in by the caller.
``SIM103``
    ``==`` / ``!=`` on float virtual timestamps (``engine.now``, ``start``,
    ``end``, ``*_seconds``, ...).  Use :func:`repro.sim.engine.times_close`.
``SIM104``
    Mutable default arguments — the shared instance leaks state between
    simulated runs.
``SIM105``
    Blocking I/O (``open``, ``time.sleep``, sockets, subprocesses) inside
    sim-process code (``repro.sim``, ``repro.workflow``, ``repro.storage``,
    ``repro.platform``, ``repro.pmem``).  Simulated processes advance by
    yielding events, never by blocking the interpreter.
``SIM106``
    Raw magic byte/bandwidth magnitude literals (powers of 1024, ``2**30``,
    ``1e9``...) where the :mod:`repro.units` constants exist.
``SIM108``
    Direct ``tracer.records.append(...)`` outside :mod:`repro.sim.trace`
    and :mod:`repro.obs`.  :meth:`~repro.sim.trace.Tracer.record` validates
    timestamps (finite, non-backwards); appending to the list bypasses
    that and can corrupt every aggregate built on the trace.
``SIM109``
    Host-clock reads (``time.perf_counter``, ``time.time``, ...) in code
    that is *exempt* from SIM101 but is still not a sanctioned wall-clock
    reader.  Only :mod:`repro.obs.hostmetrics` (host self-metrics for the
    campaign store) and the :mod:`repro.runtime` package may touch the
    host clock; anywhere else, a stray wall-clock read is how
    non-determinism leaks into payloads that are supposed to be
    byte-identical.
``SIM110``
    Host-concurrency imports (``multiprocessing``, ``concurrent.futures``,
    ``threading``, ``signal``, ``_thread``) outside :mod:`repro.service`
    (the worker pool and its CLI) and :mod:`repro.runtime` (the threaded
    executor).  The simulator is single-threaded by construction; a
    worker pool spun up inside model code would make event order depend
    on host scheduling.
``SIM111``
    ``dict()`` / ``{...}`` / ``ResourceLoad(...)`` / numpy array
    allocators (``np.zeros``, ``np.empty``, ``np.array``, ``np.full``,
    ``np.arange``, ``np.ones`` and their ``_like`` variants) constructed
    inside a ``for``/``while`` loop of a function marked with a
    ``# simlint: hotpath`` comment.  Hot solver loops (the flow network's
    fixed point, scalar or vectorized) run millions of iterations per
    campaign; per-iteration allocation churn is exactly the cost the fast
    path removed, and this rule keeps future edits from silently
    reintroducing it.  Allocate before the loop and reset in place.

A finding can be suppressed with a ``# noqa`` or ``# noqa: SIM103`` comment
on the offending line — but the default state of the tree is zero
suppressions; prefer fixing the construct.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink, sort_diagnostics
from repro.analysis.noqa import filter_noqa
from repro.analysis.rules import get_rule
from repro.units import KB, KiB

# ---------------------------------------------------------------------------
# Zones.  Package = first path component under ``repro``; top-level modules
# (errors.py, units.py) use their stem.
# ---------------------------------------------------------------------------
#: Packages exempt from the virtual-time rules: the threaded runtime really
#: runs on the wall clock, the scheduling service manages host processes,
#: and the analysis tooling is not simulator code.
WALLCLOCK_EXEMPT_PACKAGES: Set[str] = {"runtime", "analysis", "service"}

#: The sanctioned wall-clock readers (SIM109): the real threaded executor,
#: the scheduling service (queue deadlines, retry backoff, cache-lookup
#: timing), and the host self-metrics module feeding the campaign store.
#: Everything else — including the rest of :mod:`repro.obs` and the
#: SIM101-exempt analysis tooling — must not read the host clock.
HOST_CLOCK_ALLOWED_PACKAGES: Set[str] = {"runtime", "service"}
HOST_CLOCK_ALLOWED_MODULES: Set[str] = {
    "repro.obs.hostmetrics",
    # The wall-clock telemetry plane (PR 7): registry timestamps, span
    # recording, and uptime derivation are its contract.
    "repro.obs.telemetry",
}

#: Where host-concurrency imports are sanctioned (SIM110): the service's
#: worker pool / signal handling, and the real threaded executor.
CONCURRENCY_ALLOWED_PACKAGES: Set[str] = {"service", "runtime"}

#: Import roots that mean host concurrency (SIM110).
_CONCURRENCY_MODULES: Set[str] = {
    "multiprocessing",
    "concurrent",
    "threading",
    "_thread",
    "signal",
}

#: Packages whose code runs inside (or builds state for) simulated
#: processes, where blocking I/O is always a bug.
BLOCKING_IO_PACKAGES: Set[str] = {"sim", "workflow", "storage", "platform", "pmem"}

#: Module stems exempt from SIM106 (they *define* the unit constants).
UNITS_MODULES: Set[str] = {"units"}

#: Where appending to ``Tracer.records`` is legitimate (SIM108): the tracer
#: itself, and the observability layer that post-processes record lists.
TRACE_APPEND_ALLOWED_MODULES: Set[str] = {"repro.sim.trace"}
TRACE_APPEND_ALLOWED_PACKAGES: Set[str] = {"obs"}

# ---------------------------------------------------------------------------
# Name tables.
# ---------------------------------------------------------------------------
_WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
#: Accept both ``import datetime; datetime.datetime.now()`` and
#: ``from datetime import datetime; datetime.now()``.
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")

_BLOCKING_CALLS: Set[str] = {
    "open",
    "io.open",
    "os.open",
    "input",
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "urllib.request.urlopen",
}

#: RNG constructors that are fine *with* an explicit seed argument.
_SEEDABLE_CONSTRUCTORS: Set[str] = {
    "random.Random",
    "random.SystemRandom",  # never acceptable: re-seeds from the OS
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
}

#: Identifiers treated as float virtual timestamps in comparisons.
_TIME_NAMES: Set[str] = {
    "now",
    "_now",
    "t0",
    "t1",
    "start",
    "end",
    "start_time",
    "end_time",
    "makespan",
    "deadline",
    "virtual_time",
    "timestamp",
}
_TIME_SUFFIXES = ("_seconds", "_time", "_at")

_POW2_MAGNITUDES: Set[int] = {2**k for k in range(10, 41)}
_POW10_MAGNITUDES: Set[int] = {10**k for k in range(6, 16)}

#: Marker comment declaring a function allocation-sensitive (SIM111).
HOTPATH_MARKER = "simlint: hotpath"

#: Constructors that mean heap churn when called per loop iteration in a
#: hotpath function (SIM111).  ``ResourceLoad`` is matched by terminal
#: identifier so both plain and module-qualified spellings are caught;
#: the numpy allocators are matched by resolved dotted origin only (a
#: bare ``zeros()`` method on some other object is not an allocation),
#: so the vectorized solver's batch buffers must be built once per solve
#: and filled in place inside the fixed-point loop.
_HOTPATH_ALLOCATORS: Set[str] = {
    "dict",
    "ResourceLoad",
    "numpy.arange",
    "numpy.array",
    "numpy.empty",
    "numpy.empty_like",
    "numpy.full",
    "numpy.ones",
    "numpy.zeros",
    "numpy.zeros_like",
}


def _package_of(module: str) -> str:
    """First component under ``repro`` ("sim", "runtime", "errors", ...)."""
    parts = module.split(".")
    if "repro" in parts:
        index = parts.index("repro")
        if index + 1 < len(parts):
            return parts[index + 1]
    return parts[-1]


def _module_from_path(path: str) -> str:
    """Best-effort dotted module name from a file path."""
    normalized = path.replace(os.sep, "/")
    stem = normalized[:-3] if normalized.endswith(".py") else normalized
    parts = [p for p in stem.split("/") if p not in ("", ".", "src")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class _Imports:
    """Alias table mapping local names to fully dotted origins."""

    def __init__(self) -> None:
        self._aliases: Dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports stay within repro; nothing to resolve
        for alias in node.names:
            self._aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of *dotted* if one is known."""
        head, _, rest = dotted.partition(".")
        origin = self._aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """Rightmost identifier of a Name/Attribute expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_time_operand(node: ast.AST) -> bool:
    identifier = _terminal_identifier(node)
    if identifier is None:
        return False
    return identifier in _TIME_NAMES or identifier.endswith(_TIME_SUFFIXES)


def _is_magic_magnitude(value: object) -> bool:
    if isinstance(value, bool):
        return False
    # Integer powers of two >= 1024 are byte sizes in this codebase; powers
    # of ten are only treated as magnitudes when spelled as floats (1e9
    # bandwidth-style) — integer powers of ten are usually counts.
    if isinstance(value, int):
        return value in _POW2_MAGNITUDES
    if isinstance(value, float) and value.is_integer():
        return int(value) in _POW2_MAGNITUDES or int(value) in _POW10_MAGNITUDES
    return False


class _Linter(ast.NodeVisitor):
    """Single-walk visitor dispatching every simlint rule."""

    def __init__(
        self,
        path: str,
        module: str,
        sink: DiagnosticSink,
        hotpath_lines: Optional[Set[int]] = None,
    ) -> None:
        self.path = path
        self.module = module
        self.package = _package_of(module)
        self.sink = sink
        self.imports = _Imports()
        self.in_wallclock_zone = self.package not in WALLCLOCK_EXEMPT_PACKAGES
        self.in_blocking_zone = self.package in BLOCKING_IO_PACKAGES
        self.check_units = module.split(".")[-1] not in UNITS_MODULES
        self.hotpath_lines = hotpath_lines or set()

    # -- helpers -----------------------------------------------------------
    def _emit(self, code: str, node: ast.AST, message: str, hint: str) -> None:
        rule = get_rule(code)
        self.sink.emit(
            Diagnostic(
                code=code,
                message=message,
                severity=rule.severity,
                path=self.path,
                line=getattr(node, "lineno", None),
                col=getattr(node, "col_offset", None),
                hint=hint,
            )
        )

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.add_import(node)
        for alias in node.names:
            self._check_concurrency_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.add_import_from(node)
        if node.module is not None and not node.level:
            self._check_concurrency_import(node, node.module)
        self.generic_visit(node)

    def _check_concurrency_import(self, node: ast.AST, module: str) -> None:
        # SIM110: host-concurrency modules outside the sanctioned packages.
        if self.package in CONCURRENCY_ALLOWED_PACKAGES:
            return
        root = module.split(".")[0]
        if root in _CONCURRENCY_MODULES:
            self._emit(
                "SIM110",
                node,
                f"host-concurrency import {module!r} outside "
                "repro.service/repro.runtime",
                "route parallelism through repro.service.pool.WorkerPool "
                "(or move the code into repro.runtime)",
            )

    # -- SIM101 / SIM102 / SIM105: calls -----------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        resolved = self.imports.resolve(dotted) if dotted else None
        if resolved:
            self._check_wall_clock(node, resolved)
            self._check_random(node, resolved)
            self._check_blocking(node, resolved)
        self._check_trace_append(node)
        self.generic_visit(node)

    def _check_trace_append(self, node: ast.Call) -> None:
        # SIM108: ``<anything>.records.append(...)`` — the attribute chain
        # is matched structurally so aliasing the tracer doesn't hide it.
        if self.package in TRACE_APPEND_ALLOWED_PACKAGES:
            return
        for allowed in TRACE_APPEND_ALLOWED_MODULES:
            # Path-derived module names may carry a filesystem prefix
            # ("src.repro.sim.trace"); match on the repro-anchored tail.
            if self.module == allowed or self.module.endswith("." + allowed):
                return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "append"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "records"
        ):
            self._emit(
                "SIM108",
                node,
                "direct append to Tracer.records bypasses timestamp validation",
                "call Tracer.record(...) so intervals are checked",
            )

    def _module_is_allowed_host_clock_reader(self) -> bool:
        if self.package in HOST_CLOCK_ALLOWED_PACKAGES:
            return True
        for allowed in HOST_CLOCK_ALLOWED_MODULES:
            # Path-derived module names may carry a filesystem prefix
            # ("src.repro.obs.hostmetrics"); match on the anchored tail.
            if self.module == allowed or self.module.endswith("." + allowed):
                return True
        return False

    def _check_wall_clock(self, node: ast.Call, resolved: str) -> None:
        if not (
            resolved in _WALL_CLOCK_CALLS
            or resolved.endswith(_WALL_CLOCK_SUFFIXES)
        ):
            return
        if self._module_is_allowed_host_clock_reader():
            return
        if self.in_wallclock_zone:
            self._emit(
                "SIM101",
                node,
                f"wall-clock source {resolved}() in simulator code",
                "read virtual time from Engine.now (repro.sim.engine)",
            )
        else:
            self._emit(
                "SIM109",
                node,
                f"host-clock call {resolved}() outside the sanctioned readers",
                "measure host cost via repro.obs.hostmetrics.HostMeter "
                "(or move the code into repro.runtime)",
            )

    def _check_random(self, node: ast.Call, resolved: str) -> None:
        if not self.in_wallclock_zone:
            return
        if resolved in _SEEDABLE_CONSTRUCTORS:
            if resolved == "random.SystemRandom" or not (
                node.args or node.keywords
            ):
                self._emit(
                    "SIM102",
                    node,
                    f"unseeded RNG constructor {resolved}()",
                    "pass an explicit seed so runs are reproducible",
                )
            return
        if resolved.startswith("random.") or resolved.startswith("numpy.random."):
            self._emit(
                "SIM102",
                node,
                f"module-level RNG call {resolved}() shares unseeded global state",
                "use an explicitly seeded random.Random(seed) instance",
            )

    def _check_blocking(self, node: ast.Call, resolved: str) -> None:
        if not self.in_blocking_zone:
            return
        if resolved in _BLOCKING_CALLS:
            self._emit(
                "SIM105",
                node,
                f"blocking call {resolved}() inside sim-process code",
                "yield a Timeout/SimEvent instead of blocking the interpreter",
            )

    # -- SIM103: float time equality ---------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # Comparisons against integer sentinels (-1, 0 iteration
            # markers) are exact by construction; only flag pairs where a
            # time-like operand meets a float or another time-like value.
            time_like = [_is_time_operand(left), _is_time_operand(right)]
            if not any(time_like):
                continue
            other = right if time_like[0] else left
            if isinstance(other, ast.Constant) and isinstance(other.value, int):
                continue
            name = _terminal_identifier(left if time_like[0] else right)
            self._emit(
                "SIM103",
                node,
                f"exact equality on float virtual timestamp {name!r}",
                "use repro.sim.engine.times_close (epsilon comparison)",
            )
        self.generic_visit(node)

    # -- SIM104: mutable defaults ------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            )
            if isinstance(default, ast.Call):
                dotted = _dotted_name(default.func)
                resolved = self.imports.resolve(dotted) if dotted else ""
                mutable = resolved in {
                    "list",
                    "dict",
                    "set",
                    "bytearray",
                    "collections.defaultdict",
                    "collections.Counter",
                    "collections.deque",
                    "collections.OrderedDict",
                }
            if mutable:
                name = getattr(node, "name", "<lambda>")
                self._emit(
                    "SIM104",
                    default,
                    f"mutable default argument in {name}()",
                    "default to None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_hotpath(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_hotpath(node)
        self.generic_visit(node)

    # -- SIM111: allocation churn in marked hot loops ----------------------
    def _check_hotpath(self, node) -> None:
        """Flag per-iteration dict/ResourceLoad allocation in marked functions.

        A function is marked by a ``# simlint: hotpath`` comment anywhere in
        its body (matched against source lines, since comments don't survive
        into the AST).  Only statements inside ``for``/``while`` loops are
        flagged — comprehensions and one-shot setup allocations outside
        loops are fine.
        """
        if not self.hotpath_lines:
            return
        end = getattr(node, "end_lineno", None) or node.lineno
        if not any(node.lineno <= line <= end for line in self.hotpath_lines):
            return
        flagged: Set[int] = set()
        for loop in ast.walk(node):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for stmt in list(loop.body) + list(loop.orelse):
                for sub in ast.walk(stmt):
                    if id(sub) in flagged:
                        continue
                    label = None
                    if isinstance(sub, (ast.Dict, ast.DictComp)):
                        label = "dict literal"
                    elif isinstance(sub, ast.Call):
                        dotted = _dotted_name(sub.func)
                        resolved = self.imports.resolve(dotted) if dotted else None
                        terminal = _terminal_identifier(sub.func)
                        if (
                            resolved in _HOTPATH_ALLOCATORS
                            or terminal in _HOTPATH_ALLOCATORS
                        ):
                            label = f"{terminal}() call"
                    if label is not None:
                        flagged.add(id(sub))
                        self._emit(
                            "SIM111",
                            sub,
                            f"{label} allocated per loop iteration in hotpath "
                            f"function {node.name}()",
                            "hoist the allocation out of the loop and reset "
                            "fields in place",
                        )

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- SIM106: magic magnitude literals ----------------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        if self.check_units and _is_magic_magnitude(node.value):
            self._emit(
                "SIM106",
                node,
                f"magic size/bandwidth literal {node.value!r}",
                "use repro.units (KiB/MiB/GiB, KB/MB/GB, GIGA)",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            self.check_units
            and isinstance(node.op, ast.Pow)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.right, ast.Constant)
            and isinstance(node.left.value, int)
            and isinstance(node.right.value, int)
        ):
            base, exponent = node.left.value, node.right.value
            if (
                (base == 2 and exponent >= 10)
                or (base == 10 and exponent >= 6)
                or (base in (KiB, KB) and exponent >= 1)
            ):
                self._emit(
                    "SIM106",
                    node,
                    f"magic size expression {base}**{exponent}",
                    "use repro.units (KiB/MiB/GiB, KB/MB/GB, GIGA)",
                )
            return  # operands of a flagged power are part of one finding
        self.generic_visit(node)


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    sink: Optional[DiagnosticSink] = None,
) -> List[Diagnostic]:
    """Lint one module's source text; returns its diagnostics (sorted)."""
    sink = sink if sink is not None else DiagnosticSink()
    before = len(sink.diagnostics)
    module = module or _module_from_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        sink.emit(
            Diagnostic(
                code="SIM100",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno,
                col=exc.offset,
                hint="file must parse before it can be linted",
            )
        )
        return sink.diagnostics[before:]
    hotpath_lines = {
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if HOTPATH_MARKER in line.partition("#")[2]
    }
    _Linter(path, module, sink, hotpath_lines=hotpath_lines).visit(tree)
    kept = filter_noqa(sink.diagnostics[before:], source)
    del sink.diagnostics[before:]
    sink.diagnostics.extend(sort_diagnostics(kept))
    return sink.diagnostics[before:]


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                    and not d.endswith(".egg-info")
                )
                found.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".py")
                )
        else:
            found.append(path)
    return found


def lint_paths(
    paths: Iterable[str], sink: Optional[DiagnosticSink] = None
) -> List[Diagnostic]:
    """Lint every ``*.py`` under *paths*; returns all diagnostics (sorted)."""
    sink = sink if sink is not None else DiagnosticSink()
    for filename in iter_python_files(list(paths)):
        with open(filename, "r", encoding="utf-8") as handle:
            lint_source(handle.read(), path=filename, sink=sink)
    sink.diagnostics[:] = sort_diagnostics(sink.diagnostics)
    return sink.diagnostics
