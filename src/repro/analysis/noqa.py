"""Shared ``# noqa`` suppression parsing for every analysis pass.

The PR-1 parser lived inside :mod:`repro.analysis.simlint` and had two
real bugs this module fixes:

* **multi-comment lines** — ``x = f()  # type: ignore  # noqa`` split the
  comment at the *first* colon, so the bare ``noqa`` was parsed as the
  code list ``{"IGNORE", "#", "NOQA"}`` instead of suppress-everything;
* **multi-rule lists with prose** — ``# noqa: SIM104,SIM111 shared ring``
  treated every trailing word as a rule code.

The grammar here matches the conventional one: ``# noqa`` (case-
insensitive) suppresses every rule on the line; ``# noqa: CODE1,CODE2``
(comma- or space-separated, optionally followed by prose) suppresses
exactly those codes.  Several ``noqa`` comments on one line union their
code sets.  All dataflow analyzers and the linter share this parser, so a
suppression means the same thing to every rule family.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set

from repro.analysis.diagnostics import Diagnostic

#: ``# noqa`` or ``# noqa: SIM104, SVC401 free-form reason``.
_NOQA_RE = re.compile(
    r"#\s*noqa\b(?P<sep>\s*:\s*(?P<codes>[A-Za-z]+[0-9]+"
    r"(?:\s*[,\s]\s*[A-Za-z]+[0-9]+)*))?",
    re.IGNORECASE,
)

_CODE_RE = re.compile(r"[A-Za-z]+[0-9]+")

#: Sentinel meaning "every code is suppressed on this line".
ALL_CODES = "*"


def noqa_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> suppressed codes (``{"*"}`` for a bare noqa)."""
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        for match in _NOQA_RE.finditer(line):
            codes = match.group("codes")
            if codes:
                names = {c.upper() for c in _CODE_RE.findall(codes)}
            else:
                names = {ALL_CODES}
            suppressed.setdefault(lineno, set()).update(names)
    return suppressed


def is_suppressed(
    diagnostic: Diagnostic, suppressed: Dict[int, Set[str]]
) -> bool:
    """Whether *diagnostic* is silenced by a noqa comment on its line."""
    if diagnostic.line is None:
        return False
    codes = suppressed.get(diagnostic.line)
    if not codes:
        return False
    return ALL_CODES in codes or diagnostic.code in codes


def filter_noqa(
    diagnostics: Iterable[Diagnostic], source: str
) -> List[Diagnostic]:
    """Diagnostics from one file with its noqa suppressions applied."""
    suppressed = noqa_lines(source)
    return [d for d in diagnostics if not is_suppressed(d, suppressed)]
