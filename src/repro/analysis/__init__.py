"""Static analysis for the reproduction: determinism lint + spec validation.

Two passes keep the simulator trustworthy:

* :mod:`repro.analysis.simlint` — an AST linter (``SIM1xx`` rules)
  enforcing the determinism invariants of the discrete-event substrate:
  no wall-clock sources, no unseeded randomness, no float-time equality,
  no mutable default arguments, no blocking I/O in sim-process code, no
  magic size literals.
* :mod:`repro.analysis.validate` — a pre-simulation structural validator
  (``SPEC2xx`` / ``PLAT3xx`` rules) for workflow specs, placements, and
  platform/calibration tables, wired into
  :func:`repro.workflow.runner.run_workflow` so a bad configuration is
  rejected with structured diagnostics before any simulated event executes.

Run both from the command line with ``python -m repro.analysis src/``.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.rules import Rule, all_rules, get_rule, resolve_codes
from repro.analysis.simlint import lint_paths, lint_source
from repro.analysis.validate import (
    validate_calibration,
    validate_node,
    validate_placement,
    validate_run,
    validate_workflow,
)

__all__ = [
    "Diagnostic",
    "DiagnosticSink",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "resolve_codes",
    "validate_calibration",
    "validate_node",
    "validate_placement",
    "validate_run",
    "validate_workflow",
]
