"""SIM2xx — whole-program determinism-taint analysis.

The PR-1 rule SIM109 is syntactic: it flags a host-clock *call* in an
unsanctioned module.  It cannot see the actually dangerous pattern — a
helper that reads the clock (legally, in :mod:`repro.service`) and returns
the value to a caller that stores it in a byte-identical payload.  This
analyzer closes that gap by running the :mod:`repro.analysis.dataflow`
engine over the :mod:`repro.analysis.project` model with three taint
families and the repository's deterministic *sinks*:

``SIM201`` host-clock taint
    ``time.time()`` / ``perf_counter()`` / ``datetime.now()`` values —
    read anywhere except the sanctioned source modules
    (:mod:`repro.obs.hostmetrics`, :mod:`repro.runtime`) — reaching a
    trace record, store cell, manifest, or cell-id hash, including through
    chains of helper calls.
``SIM202`` RNG / host-entropy taint
    ``random.*`` / ``numpy.random.*`` / ``os.urandom`` / ``uuid.uuid4`` /
    ``secrets.*`` / ``os.getpid`` / builtin ``hash()`` (randomized per
    process for strings) values reaching the same sinks.
``SIM203`` iteration-order taint
    Values whose *order* is not deterministic — ``set``/``frozenset``
    iteration, ``os.listdir``/``glob`` results, unsorted ``dict`` views —
    accumulated into an order-preserving container that reaches a sink.
    Because every payload serializes with ``sort_keys=True``
    (:func:`repro.obs.store.canonical_json`), order taint dies when a
    value is stored *under a dict key* and survives when it is appended
    to a *list*; ``sorted()`` (and order-insensitive reductions such as
    ``sum``/``min``/``max``) sanitize it.

Sinks (the byte-identity surfaces of PRs 2–4):

* ``StoredCell(...)`` — the ``cell_id`` / ``key`` / ``deterministic``
  fields (``host=`` and ``provenance=`` are segregated by design);
* ``CampaignStore.append_cell(...)`` — the appended cell;
* ``cell_id_from_manifests(...)`` / ``cell_id_for_spec(...)`` — anything
  hashed into a cell id;
* ``Tracer.record(...)`` — simulated trace events;
* ``RunManifest(...)`` / ``build_manifest(...)`` — every field except the
  provenance trio (``git_sha`` / ``repro_version`` / ``python_version``).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow import (
    Hit,
    TaintPolicy,
    TaintWalker,
    run_taint_analysis,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticSink, sort_diagnostics
from repro.analysis.noqa import filter_noqa
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.rules import get_rule

#: Taint labels.
HOST_CLOCK = "host-clock"
RNG = "rng"
ITER_ORDER = "iter-order"

#: Labels that encode ordering (die at dict stores / sorted()).
ORDER_LABELS: FrozenSet[str] = frozenset({ITER_ORDER})

#: label -> rule code, in emission priority order.
LABEL_RULES: Tuple[Tuple[str, str], ...] = (
    (HOST_CLOCK, "SIM201"),
    (RNG, "SIM202"),
    (ITER_ORDER, "SIM203"),
)

#: The only modules whose host-clock use is part of their contract.
SANCTIONED_SOURCE_MODULES: FrozenSet[str] = frozenset(
    {"repro.obs.hostmetrics", "repro.obs.telemetry"}
)
SANCTIONED_SOURCE_PACKAGES: FrozenSet[str] = frozenset({"runtime"})

#: Host-clock call table (mirrors simlint's SIM101/SIM109 tables).
_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)
_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")

#: Host-entropy calls (SIM202).
_RNG_CALLS: FrozenSet[str] = frozenset(
    {
        "os.urandom",
        "os.getpid",
        "os.getppid",
        "uuid.uuid1",
        "uuid.uuid4",
        "hash",
        "id",
        "object",
    }
)
_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: Filesystem-enumeration calls whose result order is OS-dependent.
_FS_ORDER_CALLS: FrozenSet[str] = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)

#: Constructors of unordered containers.
_UNORDERED_CONSTRUCTORS: FrozenSet[str] = frozenset({"set", "frozenset"})

#: Order-insensitive reducers: consuming an unordered value through these
#: is deterministic.
_ORDER_SANITIZERS: FrozenSet[str] = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "frozenset", "set"}
)

#: Dict-view methods whose iteration order is insertion order — which, on
#: shared accumulators, can reflect completion order.
_DICT_VIEW_METHODS: FrozenSet[str] = frozenset({"items", "keys", "values"})

#: Manifest kwargs excluded from determinism (code provenance).
_MANIFEST_PROVENANCE = frozenset(
    {"git_sha", "repro_version", "python_version"}
)


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class DeterminismTaintPolicy(TaintPolicy):
    """Sources, sinks, and sanitizers for the SIM2xx family."""

    order_labels = ORDER_LABELS

    def module_exempt(self, module: ModuleInfo) -> bool:
        if module.name in SANCTIONED_SOURCE_MODULES or any(
            module.name.endswith("." + m) for m in SANCTIONED_SOURCE_MODULES
        ):
            return True
        return module.package in SANCTIONED_SOURCE_PACKAGES

    # -- sources -----------------------------------------------------------
    def source_taints(
        self, resolved: Optional[str], call: ast.Call, walker: TaintWalker
    ) -> Set[str]:
        if resolved is None:
            return set()
        if resolved in _CLOCK_CALLS or resolved.endswith(_CLOCK_SUFFIXES):
            return {HOST_CLOCK}
        if resolved in _RNG_CALLS or resolved.startswith(_RNG_PREFIXES):
            return {RNG}
        if resolved in _FS_ORDER_CALLS:
            return {ITER_ORDER}
        if resolved in _UNORDERED_CONSTRUCTORS:
            # The *container* is fine; iterating it is the hazard.  Let the
            # label ride the value so iteration and list() conversions
            # inherit it, while sorted()/reducers strip it again.
            return {ITER_ORDER}
        return set()

    # -- sanitizers --------------------------------------------------------
    def sanitized_labels(
        self, resolved: Optional[str], call: ast.Call
    ) -> Set[str]:
        if resolved in _ORDER_SANITIZERS and resolved not in (
            "set",
            "frozenset",
        ):
            return set(ORDER_LABELS)
        return set()

    # -- iteration ---------------------------------------------------------
    def iteration_taints(
        self, iter_expr: ast.AST, walker: TaintWalker
    ) -> Set[str]:
        if isinstance(iter_expr, ast.Call) and isinstance(
            iter_expr.func, ast.Attribute
        ):
            if iter_expr.func.attr in _DICT_VIEW_METHODS:
                return {ITER_ORDER}
        if isinstance(iter_expr, ast.Name):
            if walker.kinds.get(iter_expr.id) in ("dict", "set"):
                return {ITER_ORDER}
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            return {ITER_ORDER}
        return set()

    # -- sinks -------------------------------------------------------------
    def sink_args(
        self, resolved: Optional[str], call: ast.Call, walker: TaintWalker
    ) -> List[Tuple[ast.AST, str, FrozenSet[str]]]:
        trigger = frozenset({HOST_CLOCK, RNG, ITER_ORDER})
        terminal = _terminal(call.func)
        out: List[Tuple[ast.AST, str, FrozenSet[str]]] = []
        if terminal == "StoredCell":
            deterministic_kwargs = {"cell_id", "key", "deterministic"}
            for index, arg in enumerate(call.args):
                if index <= 2:
                    out.append((arg, "store cell record", trigger))
            for kw in call.keywords:
                if kw.arg in deterministic_kwargs:
                    out.append((kw.value, "store cell record", trigger))
        elif terminal == "append_cell":
            for arg in call.args[1:] if len(call.args) > 1 else call.args:
                out.append((arg, "campaign store append", trigger))
            for kw in call.keywords:
                if kw.arg == "cell":
                    out.append((kw.value, "campaign store append", trigger))
        elif terminal in ("cell_id_from_manifests", "cell_id_for_spec"):
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                out.append((arg, "cell-id hash", trigger))
        elif terminal == "record" and isinstance(call.func, ast.Attribute):
            receiver = _terminal(call.func.value)
            if receiver in ("tracer", "_tracer", "trace"):
                for arg in list(call.args) + [
                    kw.value for kw in call.keywords
                ]:
                    out.append((arg, "trace record", trigger))
        elif terminal in ("RunManifest", "build_manifest"):
            for arg in call.args:
                out.append((arg, "run manifest", trigger))
            for kw in call.keywords:
                if kw.arg not in _MANIFEST_PROVENANCE:
                    out.append((kw.value, "run manifest", trigger))
        return out


def hits_to_diagnostics(hits: List[Hit]) -> List[Diagnostic]:
    """Convert engine hits into deduplicated SIM2xx diagnostics."""
    seen: Set[Tuple[str, Optional[int], Optional[int], str]] = set()
    diagnostics: List[Diagnostic] = []
    for hit in hits:
        line = getattr(hit.node, "lineno", None)
        col = getattr(hit.node, "col_offset", None)
        for label, code in LABEL_RULES:
            if label not in hit.labels:
                continue
            key = (hit.module.path, line, col, code)
            if key in seen:
                continue
            seen.add(key)
            rule = get_rule(code)
            chain = f" {hit.via}" if hit.via else ""
            diagnostics.append(
                Diagnostic(
                    code=code,
                    message=(
                        f"{label} taint reaches {hit.sink}{chain} "
                        f"in {hit.function}()"
                    ),
                    severity=rule.severity,
                    path=hit.module.path,
                    line=line,
                    col=col,
                    hint=_HINTS[label],
                )
            )
    return diagnostics


_HINTS = {
    HOST_CLOCK: (
        "route wall-clock measurement through repro.obs.hostmetrics and "
        "keep it in the 'host' section of the record"
    ),
    RNG: (
        "derive the value deterministically from the spec/config (the "
        "simulator has no RNG by design)"
    ),
    ITER_ORDER: (
        "sort before accumulating (sorted(...) or .sort(key=...)) so the "
        "stored order is input-determined"
    ),
}


def check_determinism_taint(
    project: Project, sink: Optional[DiagnosticSink] = None
) -> List[Diagnostic]:
    """Run the SIM2xx analysis over *project*; emits into *sink*."""
    sink = sink if sink is not None else DiagnosticSink()
    hits = run_taint_analysis(project, DeterminismTaintPolicy())
    by_module: Dict[str, List[Diagnostic]] = {}
    for diagnostic in hits_to_diagnostics(hits):
        by_module.setdefault(diagnostic.path or "", []).append(diagnostic)
    kept: List[Diagnostic] = []
    for name in sorted(project.modules):
        module = project.modules[name]
        module_diags = by_module.pop(module.path, [])
        kept.extend(filter_noqa(module_diags, module.source))
    for leftovers in by_module.values():
        kept.extend(leftovers)
    for diagnostic in sort_diagnostics(kept):
        sink.emit(diagnostic)
    return sink.diagnostics
