"""Shared diagnostic model for the static-analysis passes.

Both analysis passes — the AST linter (:mod:`repro.analysis.simlint`) and
the spec/platform validator (:mod:`repro.analysis.validate`) — report
findings as :class:`Diagnostic` records: a stable rule code, a severity, an
optional ``file:line:col`` anchor, a human-readable message, and a fix hint.
The CLI renders them as text or JSON; the runtime hooks wrap error-severity
diagnostics in :class:`repro.errors.ValidationError`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the CLI and abort pre-run validation;
    ``WARNING`` findings are reported but never block.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass.

    Attributes
    ----------
    code:
        Stable rule code ("SIM101", "SPEC201", "PLAT301", ...).
    message:
        What is wrong, in prose, with the offending construct named.
    severity:
        :class:`Severity` of the finding.
    path:
        Source file the finding anchors to (``None`` for structural
        findings about in-memory objects such as a ``WorkflowSpec``).
    line / col:
        1-indexed line and 0-indexed column within *path*.
    hint:
        How to fix it (shown after the message).
    obj:
        Label of the validated object ("spec 'gtc+readonly@16'",
        "calibration", ...) for structural findings.
    """

    code: str
    message: str
    severity: Severity = Severity.ERROR
    path: Optional[str] = None
    line: Optional[int] = None
    col: Optional[int] = None
    hint: str = ""
    obj: str = ""

    @property
    def location(self) -> str:
        """``file:line:col`` anchor, or the object label, or ``"-"``."""
        if self.path is not None:
            parts = [self.path]
            if self.line is not None:
                parts.append(str(self.line))
                parts.append(str(self.col if self.col is not None else 0))
            return ":".join(parts)
        return self.obj or "-"

    def render(self) -> str:
        """One-line text rendering: ``loc: CODE severity: message [hint]``."""
        text = f"{self.location}: {self.code} {self.severity.value}: {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (used by ``--format json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "hint": self.hint,
            "obj": self.obj,
        }

    def sort_key(self) -> tuple:
        return (self.path or "", self.line or 0, self.col or 0, self.code)


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable file/line/code ordering for deterministic reports."""
    return sorted(diagnostics, key=Diagnostic.sort_key)


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line text report with a trailing summary line."""
    lines = [d.render() for d in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = len(diagnostics) - errors
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """JSON report: ``{"diagnostics": [...], "errors": N, "warnings": N}``."""
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    return json.dumps(
        {
            "diagnostics": [d.to_dict() for d in diagnostics],
            "errors": errors,
            "warnings": len(diagnostics) - errors,
        },
        indent=2,
    )


@dataclass
class DiagnosticSink:
    """Mutable collector the passes append to.

    Keeps rule filtering (``--select`` / ``--ignore``) in one place so
    individual checkers stay oblivious to CLI options.
    """

    select: Optional[frozenset] = None
    ignore: frozenset = frozenset()
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def emit(self, diagnostic: Diagnostic) -> None:
        """Record *diagnostic* unless filtered out."""
        if self.select is not None and diagnostic.code not in self.select:
            return
        if diagnostic.code in self.ignore:
            return
        self.diagnostics.append(diagnostic)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def sorted(self) -> List[Diagnostic]:
        return sort_diagnostics(self.diagnostics)
