"""Whole-program project model for the dataflow analyzers.

The PR-1 lint rules (``SIM1xx``) are strictly per-file: they see one AST at
a time and can only pattern-match syntax.  The dataflow rule families
(``SIM2xx`` determinism taint, ``SVC4xx`` service atomicity, ``UNIT6xx``
dimension checking) need to reason *across* files — a host-clock read in a
helper function is only a bug once some caller feeds the helper's return
value into a store record — so this module builds the shared project view
they all query:

* **modules** — every ``*.py`` file under the analyzed roots, parsed once,
  with a repro-anchored dotted name (``repro.sim.flow``), its source text,
  and its import alias table;
* **module graph** — which repro modules each module imports (including
  relative imports), plus :meth:`Project.import_cycles` over it;
* **symbol tables** — the top-level functions, classes, and assignments of
  each module, with ``from x import y`` re-exports through ``__init__.py``
  resolved to their defining module;
* **function index + call resolution** — a table of every function and
  method keyed by qualified name, and a best-effort resolver from a call
  expression to the :class:`FunctionInfo` it invokes, which is what lets
  the taint engine propagate through chained helper calls.

Everything here is stdlib-``ast`` only and read-only: the model is built
once per CLI invocation and shared by all dataflow analyzers.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


def module_name_from_path(path: str) -> str:
    """Dotted module name for *path*, anchored at ``repro`` when possible.

    ``src/repro/sim/flow.py`` -> ``repro.sim.flow``; paths outside a
    ``repro`` tree fall back to their path-derived name so ad-hoc test
    files still get stable, distinct names.
    """
    normalized = path.replace(os.sep, "/")
    stem = normalized[:-3] if normalized.endswith(".py") else normalized
    parts = [p for p in stem.split("/") if p not in ("", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    elif "src" in parts:
        parts = parts[parts.index("src") + 1:]
    return ".".join(parts) or "<unknown>"


def package_of(module: str) -> str:
    """First component under ``repro`` ("sim", "service", ...), else stem."""
    parts = module.split(".")
    if "repro" in parts:
        index = parts.index("repro")
        if index + 1 < len(parts):
            return parts[index + 1]
    return parts[-1]


@dataclass
class ImportTable:
    """Alias table for one module: local name -> fully dotted origin."""

    module: str
    aliases: Dict[str, str] = field(default_factory=dict)

    def _resolve_relative(self, level: int, target: Optional[str]) -> str:
        """Absolute dotted base for a ``from . import x``-style import."""
        parts = self.module.split(".")
        # level 1 = current package; the module's own name is not a package
        # component unless it *is* a package (__init__), which the loader
        # already normalized away.
        base = parts[: len(parts) - level] if level <= len(parts) else []
        if target:
            base = base + target.split(".")
        return ".".join(base)

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                self.aliases[head] = head

    def add_import_from(self, node: ast.ImportFrom) -> None:
        base = (
            self._resolve_relative(node.level, node.module)
            if node.level
            else (node.module or "")
        )
        if not base:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            self.aliases[alias.asname or alias.name] = f"{base}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of *dotted* if one is known."""
        head, _, rest = dotted.partition(".")
        origin = self.aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin

    def imported_modules(self) -> Set[str]:
        """Dotted module prefixes this module references (repro + stdlib)."""
        found: Set[str] = set()
        for origin in self.aliases.values():
            found.add(origin)
        return found


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str  #: ``repro.sim.flow.FlowNetwork._recompute`` style.
    module: str
    name: str
    node: ast.AST  #: FunctionDef / AsyncFunctionDef.
    cls: Optional[str] = None  #: Enclosing class name, if a method.

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    source: str
    tree: ast.Module
    imports: ImportTable
    #: Top-level name -> what it is bound to: a function/class qualname
    #: defined here, or a re-exported dotted origin.
    symbols: Dict[str, str] = field(default_factory=dict)
    #: Top-level assignments of mutable containers: name -> AST node.
    mutable_globals: Dict[str, ast.AST] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)

    @property
    def package(self) -> str:
        return package_of(self.name)


_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "collections.defaultdict",
    "collections.Counter",
    "collections.deque",
    "collections.OrderedDict",
}


def _is_mutable_literal(node: ast.AST, imports: ImportTable) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None and imports.resolve(dotted) in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Method names too generic to resolve by uniqueness — ``x.get(...)`` on a
#: plain dict must not accidentally bind to the one project method named
#: ``get``.
COMMON_METHOD_NAMES: Set[str] = {
    "get",
    "put",
    "pop",
    "append",
    "add",
    "extend",
    "update",
    "insert",
    "remove",
    "discard",
    "clear",
    "copy",
    "keys",
    "values",
    "items",
    "sort",
    "index",
    "count",
    "open",
    "close",
    "read",
    "write",
    "run",
    "start",
    "stop",
    "join",
    "submit",
    "send",
    "recv",
    "flush",
    "setdefault",
}


class Project:
    """The analyzed program: parsed modules, imports, symbols, functions."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> FunctionInfos sharing it (for attr-call fallback).
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}

    # -- construction ----------------------------------------------------
    @classmethod
    def load(cls, paths: Sequence[str]) -> "Project":
        """Parse every ``*.py`` file under *paths* into a project model."""
        from repro.analysis.simlint import iter_python_files

        project = cls()
        for filename in iter_python_files(list(paths)):
            try:
                with open(filename, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError:
                continue
            project.add_source(source, filename)
        project.finalize()
        return project

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from ``{path: source}`` (test convenience)."""
        project = cls()
        for path in sorted(sources):
            project.add_source(sources[path], path)
        project.finalize()
        return project

    def add_source(self, source: str, path: str) -> Optional[ModuleInfo]:
        """Parse and register one module; unparsable files are skipped
        (simlint reports SIM100 for them)."""
        name = module_name_from_path(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
        imports = ImportTable(module=name)
        info = ModuleInfo(
            name=name, path=path, source=source, tree=tree, imports=imports
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                imports.add_import(node)
            elif isinstance(node, ast.ImportFrom):
                imports.add_import_from(node)
        self._index_top_level(info)
        self._index_functions(info)
        self.modules[name] = info
        return info

    def _index_top_level(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                info.symbols[node.name] = f"{info.name}.{node.name}"
            elif isinstance(node, ast.ImportFrom) and not node.level:
                base = node.module or ""
                for alias in node.names:
                    if alias.name != "*" and base:
                        info.symbols[alias.asname or alias.name] = (
                            f"{base}.{alias.name}"
                        )
            elif isinstance(node, ast.ImportFrom) and node.level:
                base = info.imports._resolve_relative(node.level, node.module)
                for alias in node.names:
                    if alias.name != "*" and base:
                        info.symbols[alias.asname or alias.name] = (
                            f"{base}.{alias.name}"
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                value = node.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    info.symbols.setdefault(
                        target.id, f"{info.name}.{target.id}"
                    )
                    if value is not None and _is_mutable_literal(
                        value, info.imports
                    ):
                        info.mutable_globals[target.id] = node

    def _index_functions(self, info: ModuleInfo) -> None:
        def visit(body: Iterable[ast.stmt], cls: Optional[str]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = (
                        f"{info.name}.{cls}.{node.name}"
                        if cls
                        else f"{info.name}.{node.name}"
                    )
                    fn = FunctionInfo(
                        qualname=qual,
                        module=info.name,
                        name=node.name,
                        node=node,
                        cls=cls,
                    )
                    info.functions.append(fn)
                    self.functions[qual] = fn
                    self.methods_by_name.setdefault(node.name, []).append(fn)
                elif isinstance(node, ast.ClassDef):
                    visit(node.body, node.name)

        visit(info.tree.body, None)

    def finalize(self) -> None:
        """Hook for post-load passes (kept for symmetry; currently a no-op —
        symbol and function indexes are maintained incrementally)."""

    # -- module graph ----------------------------------------------------
    def module_graph(self) -> Dict[str, Set[str]]:
        """module name -> set of *project* modules it imports."""
        graph: Dict[str, Set[str]] = {}
        names = set(self.modules)
        for name, info in self.modules.items():
            edges: Set[str] = set()
            for origin in info.imports.imported_modules():
                target = self._owning_module(origin, names)
                if target is not None and target != name:
                    edges.add(target)
            graph[name] = edges
        return graph

    @staticmethod
    def _owning_module(dotted: str, names: Set[str]) -> Optional[str]:
        """Longest project module that is a prefix of *dotted*."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in names:
                return candidate
        return None

    def reachable_modules(self, roots: Iterable[str]) -> Set[str]:
        """Transitive import closure of *roots* over the module graph."""
        graph = self.module_graph()
        seen: Set[str] = set()
        stack = [root for root in roots if root in graph]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.get(current, ()) - seen)
        return seen

    def import_cycles(self) -> List[List[str]]:
        """Elementary import cycles (each reported once, rotation-normalized).

        Cycles are *tolerated* — lazy imports inside functions break them at
        runtime — but the analyzers need to know about them so reachability
        and summary fixpoints terminate; tests assert they are detected.
        """
        graph = self.module_graph()
        cycles: List[List[str]] = []
        seen_keys: Set[Tuple[str, ...]] = set()
        path: List[str] = []
        on_path: Set[str] = set()
        visited: Set[str] = set()

        def dfs(node: str) -> None:
            path.append(node)
            on_path.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ in on_path:
                    cycle = path[path.index(succ):]
                    pivot = cycle.index(min(cycle))
                    key = tuple(cycle[pivot:] + cycle[:pivot])
                    if key not in seen_keys:
                        seen_keys.add(key)
                        cycles.append(list(key))
                elif succ not in visited:
                    dfs(succ)
            on_path.discard(node)
            path.pop()
            visited.add(node)

        for node in sorted(graph):
            if node not in visited:
                dfs(node)
        return cycles

    # -- symbol / call resolution ----------------------------------------
    def resolve_symbol(self, dotted: str, _depth: int = 0) -> str:
        """Follow re-export chains (``repro.obs.store.canonical_json``
        imported through ``repro.obs.__init__``) to the defining module."""
        if _depth > 8:
            return dotted
        names = set(self.modules)
        owner = self._owning_module(dotted, names)
        if owner is None:
            return dotted
        remainder = dotted[len(owner) + 1:] if len(dotted) > len(owner) else ""
        if not remainder:
            return dotted
        head, _, rest = remainder.partition(".")
        target = self.modules[owner].symbols.get(head)
        if target is None:
            return dotted
        resolved = f"{target}.{rest}" if rest else target
        if resolved == dotted:
            return dotted
        return self.resolve_symbol(resolved, _depth + 1)

    def function_for_call(
        self, call: ast.Call, module: ModuleInfo
    ) -> Optional[FunctionInfo]:
        """Best-effort resolution of a call expression to a project function.

        Handles plain calls to module-level functions (through import
        aliases and ``__init__`` re-exports) and method calls resolved by
        *unique* method name — ambiguity returns ``None`` rather than
        guessing, so taint propagation errs toward silence, not noise.
        """
        dotted = dotted_name(call.func)
        if dotted is not None:
            resolved = self.resolve_symbol(module.imports.resolve(dotted))
            if resolved in self.functions:
                return self.functions[resolved]
            # ``module.Class.method`` spelled through an instance is not
            # resolvable by name; fall through to the method-name index.
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in COMMON_METHOD_NAMES:
                return None
            candidates = self.methods_by_name.get(call.func.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        elif isinstance(call.func, ast.Name):
            # A bare name defined in this module.
            local = module.symbols.get(call.func.id)
            if local is not None:
                resolved = self.resolve_symbol(local)
                if resolved in self.functions:
                    return self.functions[resolved]
        return None
