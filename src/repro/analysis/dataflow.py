"""Intra-procedural dataflow engine: reaching definitions + taint labels.

The engine is deliberately small and deliberately *may*-analysis: it walks
one function body at a time, tracking for every local variable (and every
``self.attr`` slot) the set of **taint labels** that may reach it.  Labels
are opaque strings owned by the analyzers ("host-clock", "rng",
"iter-order", ...), plus the reserved ``param:<name>`` labels the engine
seeds parameters with so it can summarize *flow-through*: if ``param:x``
reaches the function's return value, callers know an argument's taint
survives the call; if it reaches a sink, callers know the call site itself
feeds a sink.

Those :class:`Summary` records are what make the analysis whole-program
without whole-program cost: the driver (:func:`run_taint_analysis`)
iterates per-function walks to a fixpoint over the project's call graph —
monotone, because label sets only grow — then does one final pass that
emits :class:`Hit` records for tainted expressions reaching sinks.

Analyzer-specific knowledge (what is a source, a sink, a sanitizer, which
labels are order-sensitive vs value-sensitive) lives in a *policy* object
(see :class:`TaintPolicy`); the engine owns only the propagation rules:

* assignments, tuple unpacking, augmented assignment, ``with ... as``;
* branch joins (``if``/``try``) by label-set union, loops to a bounded
  fixpoint;
* container mutation (``x.append(v)`` taints ``x``), with the twist that
  **order labels die at dict stores** — this codebase serializes every
  payload with ``sort_keys=True`` (:func:`repro.obs.store.canonical_json`),
  so putting a value in a dict forgets iteration order, while appending to
  a list preserves it;
* calls, through the policy: intrinsic source labels, sanitizers
  (``sorted`` strips order labels), project-function summaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_name,
)

#: Reserved label prefix for parameter-flow tracking.
PARAM_PREFIX = "param:"

#: Upper bound on loop/fixpoint iterations inside one function body.
_MAX_LOOP_PASSES = 8

#: Upper bound on summary fixpoint rounds over the whole project.
_MAX_SUMMARY_ROUNDS = 12

#: Container methods that write their arguments into the receiver.
_LIST_MUTATORS = {"append", "extend", "insert", "appendleft", "add", "push"}
_DICT_MUTATORS = {"update", "setdefault"}

#: Methods that establish a deterministic order on the receiver.
_ORDERING_METHODS = {"sort"}


def param_label(name: str) -> str:
    return f"{PARAM_PREFIX}{name}"


def is_param_label(label: str) -> bool:
    return label.startswith(PARAM_PREFIX)


def real_labels(labels: Set[str]) -> Set[str]:
    return {label for label in labels if not is_param_label(label)}


@dataclass(frozen=True)
class Summary:
    """What a function does with taint, as seen from a call site."""

    #: Labels that may reach the return value.  ``param:<name>`` entries
    #: mean "whatever taint the corresponding argument carries".
    return_taints: FrozenSet[str] = frozenset()
    #: Parameter name -> sink label: passing a tainted argument here feeds
    #: a sink inside the callee (possibly through further calls).
    sink_params: Tuple[Tuple[str, str], ...] = ()

    def sink_map(self) -> Dict[str, str]:
        return dict(self.sink_params)


@dataclass
class Hit:
    """One tainted value reaching a sink."""

    module: ModuleInfo
    node: ast.AST
    labels: FrozenSet[str]
    sink: str
    #: Qualified name of the function containing the sink expression.
    function: str
    #: Human-readable chain note ("via helper repro.x.y") when the sink is
    #: inside a callee rather than at this expression.
    via: str = ""


class TaintPolicy:
    """Base policy: analyzers override the hooks they care about."""

    #: Labels that encode *ordering* rather than value nondeterminism —
    #: they are dropped at dict stores and by order-insensitive reducers.
    order_labels: FrozenSet[str] = frozenset()

    def module_exempt(self, module: ModuleInfo) -> bool:
        """Exempt modules produce no hits and empty summaries (their whole
        API is sanctioned)."""
        return False

    def source_taints(
        self, resolved: Optional[str], call: ast.Call, walker: "TaintWalker"
    ) -> Set[str]:
        """Labels this call introduces out of thin air."""
        return set()

    def sanitized_labels(
        self, resolved: Optional[str], call: ast.Call
    ) -> Set[str]:
        """Labels this call removes from its propagated result."""
        return set()

    def sink_args(
        self, resolved: Optional[str], call: ast.Call, walker: "TaintWalker"
    ) -> List[Tuple[ast.AST, str, FrozenSet[str]]]:
        """(argument expression, sink label, labels that trigger) triples."""
        return []

    def iteration_taints(
        self, iter_expr: ast.AST, walker: "TaintWalker"
    ) -> Set[str]:
        """Labels acquired by loop targets iterating *iter_expr*."""
        return set()

    def statement_check(
        self, stmt: ast.stmt, walker: "TaintWalker"
    ) -> None:
        """Arbitrary per-statement hook (e.g. file-write pattern checks)."""


class TaintWalker:
    """Walks one function (or module top level) propagating label sets."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        policy: TaintPolicy,
        summaries: Dict[str, Summary],
        function: Optional[FunctionInfo] = None,
    ) -> None:
        self.project = project
        self.module = module
        self.policy = policy
        self.summaries = summaries
        self.function = function
        self.env: Dict[str, Set[str]] = {}
        #: name -> "list" | "dict" | "set" when statically known.
        self.kinds: Dict[str, str] = {}
        self.return_taints: Set[str] = set()
        self.sink_params: Dict[str, str] = {}
        self.hits: List[Hit] = []
        if function is not None:
            for name in function.params:
                self.env[name] = {param_label(name)}

    # -- public ----------------------------------------------------------
    def run(self) -> None:
        body = (
            self.function.node.body
            if self.function is not None
            else self.module.tree.body
        )
        self._exec_block(body)

    def summary(self) -> Summary:
        return Summary(
            return_taints=frozenset(self.return_taints),
            sink_params=tuple(sorted(self.sink_params.items())),
        )

    # -- environment helpers ----------------------------------------------
    def _get(self, key: str) -> Set[str]:
        return self.env.get(key, set())

    def _bind(self, target: ast.AST, labels: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(labels)
        elif isinstance(target, ast.Attribute):
            key = dotted_name(target)
            if key is not None:
                self.env[key] = set(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels)
        elif isinstance(target, ast.Subscript):
            key = dotted_name(target.value)
            if key is None:
                return
            stored = set(labels)
            if self.kinds.get(key) == "dict":
                stored -= self.policy.order_labels
            self.env[key] = self._get(key) | stored
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)

    def _note_kind(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if not isinstance(target, ast.Name) or value is None:
            return
        kind = None
        if isinstance(value, (ast.Dict, ast.DictComp)):
            kind = "dict"
        elif isinstance(value, (ast.List, ast.ListComp)):
            kind = "list"
        elif isinstance(value, (ast.Set, ast.SetComp)):
            kind = "set"
        elif isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            resolved = (
                self.module.imports.resolve(dotted) if dotted else None
            )
            if resolved in ("dict", "collections.defaultdict", "collections.OrderedDict", "collections.Counter"):
                kind = "dict"
            elif resolved == "list":
                kind = "list"
            elif resolved in ("set", "frozenset"):
                kind = "set"
        if kind is not None:
            self.kinds[target.id] = kind

    # -- statements --------------------------------------------------------
    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        self.policy.statement_check(stmt, self)
        if isinstance(stmt, ast.Assign):
            labels = self.eval(stmt.value)
            for target in stmt.targets:
                self._note_kind(target, stmt.value)
                self._bind(target, labels)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._note_kind(stmt.target, stmt.value)
                self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            labels = self.eval(stmt.value)
            key = dotted_name(stmt.target)
            if key is not None:
                self.env[key] = self._get(key) | labels
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taints |= self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            before = {k: set(v) for k, v in self.env.items()}
            self.eval(stmt.test)
            self._exec_block(stmt.body)
            after_body = self.env
            self.env = before
            self._exec_block(stmt.orelse)
            self._merge(after_body)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_labels = self.eval(stmt.iter) | self.policy.iteration_taints(
                stmt.iter, self
            )
            for _ in range(_MAX_LOOP_PASSES):
                snapshot = self._snapshot()
                self._bind(stmt.target, iter_labels | self.eval(stmt.iter))
                self._exec_block(stmt.body)
                if self._snapshot() == snapshot:
                    break
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            for _ in range(_MAX_LOOP_PASSES):
                snapshot = self._snapshot()
                self.eval(stmt.test)
                self._exec_block(stmt.body)
                if self._snapshot() == snapshot:
                    break
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own walk
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _snapshot(self) -> Dict[str, FrozenSet[str]]:
        return {k: frozenset(v) for k, v in self.env.items()}

    def _merge(self, other: Dict[str, Set[str]]) -> None:
        for key, labels in other.items():
            self.env[key] = self._get(key) | labels

    # -- expressions -------------------------------------------------------
    def eval(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self._get(node.id))
        if isinstance(node, ast.Attribute):
            key = dotted_name(node)
            if key is not None and key in self.env:
                return set(self.env[key])
            return self.eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.BinOp,)):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.BoolOp):
            out: Set[str] = set()
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for comparator in node.comparators:
                out |= self.eval(comparator)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value) | self.eval(node.slice)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self.eval(element)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                out |= self.eval(key)
            for value in node.values:
                # Values stored under dict keys lose order sensitivity
                # (payloads serialize with sort_keys=True).
                out |= self.eval(value) - self.policy.order_labels
            return out
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.eval(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, node.elt)
        if isinstance(node, ast.DictComp):
            labels = self._eval_comprehension(node, node.value)
            return labels - self.policy.order_labels
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Slice):
            return self.eval(node.lower) | self.eval(node.upper) | self.eval(node.step)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        return set()

    def _eval_comprehension(self, node: ast.AST, elt: ast.expr) -> Set[str]:
        saved = {k: set(v) for k, v in self.env.items()}
        try:
            for generator in node.generators:
                labels = self.eval(generator.iter) | self.policy.iteration_taints(
                    generator.iter, self
                )
                self._bind(generator.target, labels)
                for condition in generator.ifs:
                    self.eval(condition)
            out = self.eval(elt)
            if isinstance(node, ast.DictComp):
                out |= self.eval(node.key)
            if isinstance(node, ast.SetComp):
                out -= self.policy.order_labels
            return out
        finally:
            self.env = saved

    # -- calls -------------------------------------------------------------
    def _eval_call(self, call: ast.Call) -> Set[str]:
        dotted = dotted_name(call.func)
        resolved = self.module.imports.resolve(dotted) if dotted else None
        arg_labels = [self.eval(arg) for arg in call.args]
        kwarg_labels = {
            kw.arg: self.eval(kw.value) for kw in call.keywords
        }
        combined: Set[str] = set()
        for labels in arg_labels:
            combined |= labels
        for labels in kwarg_labels.values():
            combined |= labels

        # Receiver mutation: x.append(v) taints x; x.sort() orders x.
        self._apply_mutators(call, combined)

        # Policy sinks at this very call.
        for arg_node, sink, trigger in self.policy.sink_args(
            resolved, call, self
        ):
            labels = self.eval(arg_node)
            hot = real_labels(labels) & trigger
            if hot:
                self._hit(arg_node, hot, sink)
            for label in labels:
                if is_param_label(label):
                    self.sink_params.setdefault(
                        label[len(PARAM_PREFIX):], sink
                    )

        # Project-function summary: substitute parameter flow.
        summary_result = self._apply_summary(call, arg_labels, kwarg_labels)
        if summary_result is not None:
            result = summary_result
        else:
            result = set(combined)

        # Method calls propagate the receiver's labels: ``future.result()``
        # on a completion-order future is still completion-ordered.
        if isinstance(call.func, ast.Attribute):
            receiver = dotted_name(call.func.value)
            if receiver is not None:
                result |= self._get(receiver)

        result |= self.policy.source_taints(resolved, call, self)
        result -= self.policy.sanitized_labels(resolved, call)
        return result

    def _apply_mutators(self, call: ast.Call, arg_taints: Set[str]) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = dotted_name(func.value)
        if receiver is None:
            return
        if func.attr in _LIST_MUTATORS:
            self.env[receiver] = self._get(receiver) | arg_taints
        elif func.attr in _DICT_MUTATORS:
            self.env[receiver] = self._get(receiver) | (
                arg_taints - self.policy.order_labels
            )
        elif func.attr in _ORDERING_METHODS:
            self.env[receiver] = (
                self._get(receiver) - self.policy.order_labels
            )

    def _apply_summary(
        self,
        call: ast.Call,
        arg_labels: List[Set[str]],
        kwarg_labels: Dict[Optional[str], Set[str]],
    ) -> Optional[Set[str]]:
        callee = self.project.function_for_call(call, self.module)
        if callee is None:
            return None
        summary = self.summaries.get(callee.qualname)
        if summary is None:
            return None
        params = callee.params
        offset = 0
        if params and params[0] in ("self", "cls") and isinstance(
            call.func, ast.Attribute
        ):
            offset = 1
        by_param: Dict[str, Tuple[ast.AST, Set[str]]] = {}
        for index, labels in enumerate(arg_labels):
            position = index + offset
            if position < len(params):
                by_param[params[position]] = (call.args[index], labels)
        for kw in call.keywords:
            if kw.arg is not None:
                by_param[kw.arg] = (kw.value, kwarg_labels.get(kw.arg, set()))

        # Sinks inside the callee: check the matching arguments here.
        for param, sink in summary.sink_map().items():
            entry = by_param.get(param)
            if entry is None:
                continue
            arg_node, labels = entry
            hot = real_labels(labels)
            if hot:
                self._hit(
                    arg_node,
                    hot,
                    sink,
                    via=f"via {callee.qualname}()",
                )
            for label in labels:
                if is_param_label(label):
                    self.sink_params.setdefault(
                        label[len(PARAM_PREFIX):], sink
                    )

        # Return taints: intrinsic labels plus substituted parameter flow.
        result: Set[str] = set()
        for label in summary.return_taints:
            if is_param_label(label):
                entry = by_param.get(label[len(PARAM_PREFIX):])
                if entry is not None:
                    result |= entry[1]
            else:
                result.add(label)
        return result

    def _hit(
        self, node: ast.AST, labels: Set[str], sink: str, via: str = ""
    ) -> None:
        qual = self.function.qualname if self.function else self.module.name
        self.hits.append(
            Hit(
                module=self.module,
                node=node,
                labels=frozenset(labels),
                sink=sink,
                function=qual,
                via=via,
            )
        )


def compute_summaries(
    project: Project, policy: TaintPolicy
) -> Dict[str, Summary]:
    """Fixpoint of per-function summaries over the whole project."""
    summaries: Dict[str, Summary] = {}
    order = sorted(project.functions)
    for _ in range(_MAX_SUMMARY_ROUNDS):
        changed = False
        for qualname in order:
            function = project.functions[qualname]
            module = project.modules[function.module]
            if policy.module_exempt(module):
                new = Summary()
            else:
                walker = TaintWalker(
                    project, module, policy, summaries, function
                )
                walker.run()
                new = walker.summary()
            if summaries.get(qualname) != new:
                summaries[qualname] = new
                changed = True
        if not changed:
            break
    return summaries


def run_taint_analysis(
    project: Project, policy: TaintPolicy
) -> List[Hit]:
    """Summaries to fixpoint, then one hit-collecting pass per function
    and per module top level."""
    summaries = compute_summaries(project, policy)
    hits: List[Hit] = []
    for name in sorted(project.modules):
        module = project.modules[name]
        if policy.module_exempt(module):
            continue
        top = TaintWalker(project, module, policy, summaries, None)
        top.run()
        hits.extend(top.hits)
        for function in module.functions:
            walker = TaintWalker(
                project, module, policy, summaries, function
            )
            walker.run()
            hits.extend(walker.hits)
    return hits
