"""UNIT6xx — lightweight unit/dimension inference for the model math.

The whole library runs on three physical dimensions (bytes, seconds,
bytes/second — see :mod:`repro.units`), carried by plain ``float``\\ s.  A
bytes-vs-seconds mixup in :mod:`repro.sim.flow` does not crash — it
produces a plausible-looking wrong makespan that only a campaign diff
catches a pipeline later.  This checker infers dimensions *statically*
from three cues and flags inconsistent arithmetic at the expression that
commits the mixup:

* **suffix conventions** — ``*_bytes`` / ``*_seconds`` / ``*_bps`` names
  (and a table of conventional bare names: ``latency``, ``makespan``,
  ``bandwidth``, ``dt``, ``rate`` ...);
* **the unit constants** — ``KiB``/``MiB``/``GB``... are bytes,
  ``MILLISECOND``/``SECOND``... are seconds, ``MEGA``/``GIGA`` are
  dimensionless scale factors;
* **propagation** — ``bytes / seconds`` is a rate, ``rate * seconds`` is
  bytes, ``bytes / rate`` is seconds; assignments carry dimensions into
  locals.

Rules:

``UNIT601``
    ``+`` / ``-`` between two different concrete dimensions
    (``op_bytes + latency_seconds``).
``UNIT602``
    Ordering/equality comparison between two different concrete
    dimensions (``chunk_bytes < duty_seconds``).
``UNIT603``
    A dimension-declaring name (suffix or convention) bound to a value of
    a *different* concrete dimension — assignments, keyword arguments,
    and returns from ``*_bytes``/``*_seconds``-named functions.

Scope is the numeric model code — :mod:`repro.sim.flow`,
:mod:`repro.pmem`, :mod:`repro.platform` — where dimensional bugs change
published numbers.  Dimensionless literals combine freely with every
dimension, so ``op_bytes / 2`` and ``0.5 * bandwidth`` never warn.

One documented idiom is exempt from ``UNIT603``: the calibration tables
write *rates* with byte-magnitude constants — ``upi_bandwidth = 30.0 *
GB`` means "30 GB **per second**" throughout the repo — so a
``bytes``-dimensioned value binding a ``bytes/second``-declaring name is
accepted (the reverse, and any seconds mixup, still fires).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink, sort_diagnostics
from repro.analysis.noqa import filter_noqa
from repro.analysis.project import ModuleInfo, Project, dotted_name
from repro.analysis.rules import get_rule

#: The dimension lattice: concrete dims + DIMLESS (combines with all) +
#: UNKNOWN (no information).
BYTES = "bytes"
SECONDS = "seconds"
BPS = "bytes/second"
DIMLESS = "dimensionless"
UNKNOWN = "unknown"

CONCRETE = (BYTES, SECONDS, BPS)

#: Modules the checker runs on (the numeric model).
def in_scope(module: ModuleInfo) -> bool:
    if module.package in ("pmem", "platform"):
        return module.name.split(".")[-1] != "__init__"
    return ".sim.flow" in module.name or module.name == "repro.sim.flow"


#: units.py constants by dimension.
_BYTE_CONSTANTS = {"KiB", "MiB", "GiB", "TiB", "KB", "MB", "GB", "TB"}
_SECOND_CONSTANTS = {"NANOSECOND", "MICROSECOND", "MILLISECOND", "SECOND"}
_DIMLESS_CONSTANTS = {"MEGA", "GIGA"}

#: Suffix conventions, checked on the terminal identifier.
_SUFFIX_DIMS: Tuple[Tuple[str, str], ...] = (
    ("_bytes", BYTES),
    ("_bps", BPS),
    ("_seconds", SECONDS),
    ("_latency", SECONDS),
    ("_bandwidth", BPS),
)

#: Conventional bare names.
_NAME_DIMS: Dict[str, str] = {
    "nbytes": BYTES,
    "latency": SECONDS,
    "makespan": SECONDS,
    "deadline": SECONDS,
    "duration": SECONDS,
    "elapsed": SECONDS,
    "timeout": SECONDS,
    "dt": SECONDS,
    "now": SECONDS,
    "bandwidth": BPS,
    "bw": BPS,
    "rate": BPS,
    "bytes_per_second": BPS,
}


def declared_dim(identifier: Optional[str]) -> Optional[str]:
    """Dimension an identifier *declares* by its name, if any."""
    if identifier is None:
        return None
    for suffix, dim in _SUFFIX_DIMS:
        if identifier.endswith(suffix) and identifier != suffix.lstrip("_"):
            return dim
    return _NAME_DIMS.get(identifier)


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _combine_add(left: str, right: str) -> Tuple[str, bool]:
    """Result dim of ``left + right`` and whether it is an error."""
    if left == right:
        return left, False
    if left == DIMLESS:
        return right, False
    if right == DIMLESS:
        return left, False
    if UNKNOWN in (left, right):
        return UNKNOWN, False
    return UNKNOWN, True


def _combine_mult(left: str, right: str) -> str:
    if DIMLESS in (left, right):
        return right if left == DIMLESS else left
    if {left, right} == {BPS, SECONDS}:
        return BYTES
    if UNKNOWN in (left, right):
        # Suffix-convention inference: an unadorned scalar is a count,
        # so ``n * SECOND`` carries seconds even when ``n`` is untyped.
        other = right if left == UNKNOWN else left
        if other in CONCRETE:
            return other
    return UNKNOWN


def _binding_ok(declared: str, actual: str) -> bool:
    """Whether *actual* may bind a name declaring *declared*.

    ``BYTES -> BPS`` is the sanctioned rate-magnitude idiom
    (``bandwidth = 30.0 * GB`` meaning GB/s).
    """
    if actual not in CONCRETE or actual == declared:
        return True
    return declared == BPS and actual == BYTES


def _combine_div(left: str, right: str) -> str:
    if right == DIMLESS:
        return left
    if left == right and left in CONCRETE:
        return DIMLESS
    if left == BYTES and right == SECONDS:
        return BPS
    if left == BYTES and right == BPS:
        return SECONDS
    return UNKNOWN


class _UnitChecker(ast.NodeVisitor):
    """Per-function (and module-top-level) dimension inference walk."""

    def __init__(self, module: ModuleInfo, diagnostics: List[Diagnostic]) -> None:
        self.module = module
        self.diagnostics = diagnostics
        self.env: Dict[str, str] = {}
        self.current_function: Optional[str] = None

    # -- inference ---------------------------------------------------------
    def dim_of(self, node: Optional[ast.AST]) -> str:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return UNKNOWN
            return DIMLESS
        if isinstance(node, (ast.Name, ast.Attribute)):
            identifier = _terminal(node)
            if identifier is None:
                return UNKNOWN
            resolved = (
                self.module.imports.resolve(identifier)
                if isinstance(node, ast.Name)
                else identifier
            )
            tail = resolved.split(".")[-1]
            if tail in _BYTE_CONSTANTS:
                return BYTES
            if tail in _SECOND_CONSTANTS:
                return SECONDS
            if tail in _DIMLESS_CONSTANTS:
                return DIMLESS
            if isinstance(node, ast.Name) and node.id in self.env:
                return self.env[node.id]
            declared = declared_dim(identifier)
            return declared if declared is not None else UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._dim_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.dim_of(node.operand)
        if isinstance(node, ast.IfExp):
            body, orelse = self.dim_of(node.body), self.dim_of(node.orelse)
            return body if body == orelse else UNKNOWN
        if isinstance(node, ast.Call):
            return self._dim_call(node)
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return DIMLESS
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.dim_of(value)
            return UNKNOWN
        return UNKNOWN

    def _dim_binop(self, node: ast.BinOp) -> str:
        left = self.dim_of(node.left)
        right = self.dim_of(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            result, bad = _combine_add(left, right)
            if bad:
                self._emit(
                    "UNIT601",
                    node,
                    f"{left} {'+' if isinstance(node.op, ast.Add) else '-'} "
                    f"{right} mixes dimensions",
                    "convert one operand explicitly (repro.units) so both "
                    "sides share a dimension",
                )
            return result
        if isinstance(node.op, ast.Mult):
            return _combine_mult(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return _combine_div(left, right)
        if isinstance(node.op, ast.Mod):
            return left
        if isinstance(node.op, ast.Pow):
            return DIMLESS if left == DIMLESS else UNKNOWN
        return UNKNOWN

    def _dim_call(self, node: ast.Call) -> str:
        for arg in node.args:
            self.dim_of(arg)
        for kw in node.keywords:
            self._check_kwarg(kw)
        dotted = dotted_name(node.func)
        resolved = self.module.imports.resolve(dotted) if dotted else None
        if resolved in ("abs", "float", "int", "round"):
            return self.dim_of(node.args[0]) if node.args else UNKNOWN
        if resolved in ("min", "max", "sum"):
            dims = {
                self.dim_of(arg)
                for arg in node.args
                if not isinstance(arg, ast.Starred)
            }
            dims.discard(UNKNOWN)
            if len(dims) == 1:
                return next(iter(dims))
            return UNKNOWN
        if resolved == "len":
            return DIMLESS
        declared = declared_dim(_terminal(node.func))
        return declared if declared is not None else UNKNOWN

    # -- checks ------------------------------------------------------------
    def _emit(self, code: str, node: ast.AST, message: str, hint: str) -> None:
        rule = get_rule(code)
        where = (
            f" in {self.current_function}()" if self.current_function else ""
        )
        self.diagnostics.append(
            Diagnostic(
                code=code,
                message=message + where,
                severity=rule.severity,
                path=self.module.path,
                line=getattr(node, "lineno", None),
                col=getattr(node, "col_offset", None),
                hint=hint,
            )
        )

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        dims = [self.dim_of(operand) for operand in operands]
        for index, op in enumerate(node.ops):
            left, right = dims[index], dims[index + 1]
            if (
                left in CONCRETE
                and right in CONCRETE
                and left != right
            ):
                self._emit(
                    "UNIT602",
                    node,
                    f"comparison between {left} and {right}",
                    "compare like with like; convert via repro.units first",
                )

    def _check_kwarg(self, kw: ast.keyword) -> None:
        declared = declared_dim(kw.arg)
        if declared is None:
            return
        actual = self.dim_of(kw.value)
        if not _binding_ok(declared, actual):
            self._emit(
                "UNIT603",
                kw.value,
                f"argument {kw.arg}= declares {declared} but receives "
                f"{actual}",
                "convert the value to the declared dimension",
            )

    def _check_bind(self, target: ast.AST, value_dim: str) -> None:
        identifier = _terminal(target)
        declared = declared_dim(identifier)
        if declared is None:
            if (
                isinstance(target, ast.Name)
                and value_dim in CONCRETE + (DIMLESS,)
            ):
                self.env[target.id] = value_dim
            return
        if not _binding_ok(declared, value_dim):
            self._emit(
                "UNIT603",
                target,
                f"{identifier!r} declares {declared} but is bound to "
                f"{value_dim}",
                "rename the variable or convert the value",
            )
        elif isinstance(target, ast.Name):
            self.env[target.id] = declared

    # -- statements --------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        value_dim = self.dim_of(node.value)
        for target in node.targets:
            if isinstance(target, (ast.Name, ast.Attribute)):
                self._check_bind(target, value_dim)
        self.generic_visit_exclude_value(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_bind(node.target, self.dim_of(node.value))
        self.generic_visit_exclude_value(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target_dim = self.dim_of(node.target)
        value_dim = self.dim_of(node.value)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            _, bad = _combine_add(target_dim, value_dim)
            if bad:
                self._emit(
                    "UNIT601",
                    node,
                    f"{target_dim} {'+=' if isinstance(node.op, ast.Add) else '-='} "
                    f"{value_dim} mixes dimensions",
                    "convert the right-hand side to the target's dimension",
                )

    def visit_Return(self, node: ast.Return) -> None:
        declared = declared_dim(self.current_function)
        if declared is not None and node.value is not None:
            actual = self.dim_of(node.value)
            if not _binding_ok(declared, actual):
                self._emit(
                    "UNIT603",
                    node,
                    f"function declares {declared} but returns {actual}",
                    "convert the return value to the declared dimension",
                )
        elif node.value is not None:
            self.dim_of(node.value)

    def visit_Expr(self, node: ast.Expr) -> None:
        self.dim_of(node.value)

    def visit_If(self, node: ast.If) -> None:
        self.dim_of(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:
        self.dim_of(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def generic_visit_exclude_value(self, node: ast.AST) -> None:
        """Nothing further to visit: expression checks happened in dim_of."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._walk_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_function(node)

    def _walk_function(self, node: ast.AST) -> None:
        saved_env = self.env
        saved_name = self.current_function
        self.env = {}
        self.current_function = node.name
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            declared = declared_dim(arg.arg)
            if declared is not None:
                self.env[arg.arg] = declared
        for stmt in node.body:
            self.visit(stmt)
        self.env = saved_env
        self.current_function = saved_name

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            self.visit(stmt)


def check_units(
    project: Project, sink: Optional[DiagnosticSink] = None
) -> List[Diagnostic]:
    """Run the UNIT6xx dimension checks over the in-scope modules."""
    sink = sink if sink is not None else DiagnosticSink()
    kept: List[Diagnostic] = []
    for name in sorted(project.modules):
        module = project.modules[name]
        if not in_scope(module):
            continue
        diagnostics: List[Diagnostic] = []
        checker = _UnitChecker(module, diagnostics)
        for stmt in module.tree.body:
            checker.visit(stmt)
        kept.extend(filter_noqa(diagnostics, module.source))
    for diagnostic in sort_diagnostics(kept):
        sink.emit(diagnostic)
    return sink.diagnostics
