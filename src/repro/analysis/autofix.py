"""``--fix`` — mechanical autofix for the magic-literal rule (SIM106).

The one simlint rule whose fix is purely mechanical is SIM106: a raw
magnitude literal (``4096``, ``2**30``, ``1e9``) has exactly one
idiomatic spelling in terms of the :mod:`repro.units` constants
(``4 * KiB``, ``GiB``, ``GIGA``).  The fixer

* finds the same nodes the linter flags (same predicates, same
  ``units.py`` exemption, same ``# noqa`` suppressions),
* rewrites each span right-to-left so earlier offsets stay valid,
  parenthesizing compound replacements (``x / 4096`` must become
  ``x / (4 * KiB)``, not ``x / 4 * KiB``),
* and ensures ``from repro.units import ...`` covers the names it used —
  extending an existing import line or inserting one after the last
  top-level import.

The transformation is **idempotent**: the rewritten spellings contain no
magic literals, so a second pass finds nothing to do.  Anything
non-mechanical (which unit family a strange constant belongs to) is out
of scope — the literal is left alone and keeps its diagnostic.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.noqa import ALL_CODES, noqa_lines
from repro.analysis.simlint import (
    UNITS_MODULES,
    _is_magic_magnitude,
    _module_from_path,
    iter_python_files,
)
from repro.units import KB, KiB

#: (line, col, end_line, end_col) -> replacement text.
_Span = Tuple[int, int, int, int]

_POW2_UNITS = ("KiB", "MiB", "GiB", "TiB")
_POW10_UNITS = ("KB", "MB", "GB", "TB")


def _pow2_spelling(value: int) -> Optional[Tuple[str, List[str]]]:
    """Spelling for an exact power of two >= 1024, or None."""
    exponent = value.bit_length() - 1
    if value != 1 << exponent or exponent < 10:
        return None
    tier = min(exponent // 10, len(_POW2_UNITS))
    unit = _POW2_UNITS[tier - 1]
    multiplier = 1 << (exponent - 10 * tier)
    if multiplier == 1:
        return unit, [unit]
    return f"{multiplier} * {unit}", [unit]


def _pow10_spelling(value: int, as_float: bool) -> Optional[Tuple[str, List[str]]]:
    """Spelling for an exact power of ten >= 1e6, or None.

    Integer powers of ten become the SI byte constants (``GB``); float
    spellings (``1e9``) become the scale factors ``MEGA``/``GIGA`` the
    bandwidth code uses.
    """
    text = str(value)
    if set(text[1:]) != {"0"} or text[0] != "1":
        return None
    exponent = len(text) - 1
    if exponent < 6:
        return None
    if as_float:
        base, base_exp = ("GIGA", 9) if exponent >= 9 else ("MEGA", 6)
        multiplier = 10 ** (exponent - base_exp)
        if multiplier == 1:
            return base, [base]
        return f"{multiplier} * {base}", [base]
    tier = min(exponent // 3, len(_POW10_UNITS))
    unit = _POW10_UNITS[tier - 1]
    multiplier = 10 ** (exponent - 3 * tier)
    if multiplier == 1:
        return unit, [unit]
    return f"{multiplier} * {unit}", [unit]


def _spelling_for_constant(value: object) -> Optional[Tuple[str, List[str]]]:
    if isinstance(value, bool) or not _is_magic_magnitude(value):
        return None
    if isinstance(value, int):
        return _pow2_spelling(value)
    as_int = int(value)
    return _pow2_spelling(as_int) or _pow10_spelling(as_int, as_float=True)


def _spelling_for_power(base: int, exponent: int) -> Optional[Tuple[str, List[str]]]:
    if base == 2 and exponent >= 10:
        return _pow2_spelling(2**exponent)
    if base == 10 and exponent >= 6:
        return _pow10_spelling(10**exponent, as_float=False)
    if base == KiB and 1 <= exponent <= len(_POW2_UNITS):
        return _POW2_UNITS[exponent - 1], [_POW2_UNITS[exponent - 1]]
    if base == KB and 1 <= exponent <= len(_POW10_UNITS):
        return _POW10_UNITS[exponent - 1], [_POW10_UNITS[exponent - 1]]
    return None


class _FixCollector(ast.NodeVisitor):
    def __init__(self, suppressed: Dict[int, set]) -> None:
        self.suppressed = suppressed
        self.spans: List[Tuple[_Span, str]] = []
        self.names: List[str] = []

    def _suppressed(self, node: ast.AST) -> bool:
        codes = self.suppressed.get(node.lineno, set())
        return ALL_CODES in codes or "SIM106" in codes

    def _add(self, node: ast.AST, spelling: Tuple[str, List[str]]) -> None:
        if node.lineno != node.end_lineno:  # multi-line spans: leave alone
            return
        text, names = spelling
        if " " in text:
            text = f"({text})"
        self.spans.append(
            (
                (node.lineno, node.col_offset, node.end_lineno, node.end_col_offset),
                text,
            )
        )
        self.names.extend(names)

    def visit_Constant(self, node: ast.Constant) -> None:
        if self._suppressed(node):
            return
        spelling = _spelling_for_constant(node.value)
        if spelling is not None:
            self._add(node, spelling)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, ast.Pow)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.right, ast.Constant)
            and isinstance(node.left.value, int)
            and isinstance(node.right.value, int)
            and not self._suppressed(node)
        ):
            spelling = _spelling_for_power(node.left.value, node.right.value)
            if spelling is not None:
                self._add(node, spelling)
                return  # the operand constants are part of this fix
        self.generic_visit(node)


_IMPORT_RE = re.compile(r"^from repro\.units import (?P<names>[\w, ]+)$")


def _ensure_import(source: str, names: List[str]) -> str:
    """Make ``from repro.units import ...`` cover *names*."""
    wanted = sorted(set(names))
    if not wanted:
        return source
    lines = source.splitlines(keepends=True)
    for index, line in enumerate(lines):
        match = _IMPORT_RE.match(line.rstrip("\n"))
        if match:
            existing = [n.strip() for n in match.group("names").split(",")]
            merged = sorted(set(existing) | set(wanted))
            if merged == sorted(existing):
                return source
            newline = "\n" if line.endswith("\n") else ""
            lines[index] = f"from repro.units import {', '.join(merged)}{newline}"
            return "".join(lines)
    # No existing import line: insert after the last top-level import.
    tree = ast.parse(source)
    insert_after = 0
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            insert_after = stmt.end_lineno or stmt.lineno
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            insert_after = max(insert_after, stmt.end_lineno or stmt.lineno)
        else:
            break
    new_line = f"from repro.units import {', '.join(wanted)}\n"
    lines.insert(insert_after, new_line)
    return "".join(lines)


def fix_source(source: str, module: str) -> Tuple[str, int]:
    """``(fixed_source, fix_count)`` for one module's source."""
    if module.split(".")[-1] in UNITS_MODULES:
        return source, 0
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    collector = _FixCollector(noqa_lines(source))
    collector.visit(tree)
    if not collector.spans:
        return source, 0
    lines = source.splitlines(keepends=True)
    for (line, col, _end_line, end_col), text in sorted(
        collector.spans, reverse=True
    ):
        row = lines[line - 1]
        lines[line - 1] = row[:col] + text + row[end_col:]
    return _ensure_import("".join(lines), collector.names), len(collector.spans)


def fix_paths(paths: Sequence[str]) -> Dict[str, int]:
    """Apply SIM106 fixes in place; ``{path: fixes}`` for changed files."""
    changed: Dict[str, int] = {}
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        fixed, count = fix_source(source, _module_from_path(path))
        if count and fixed != source:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(fixed)
            changed[path] = count
    return changed
