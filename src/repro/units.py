"""Unit constants and formatting helpers.

All sizes inside the library are plain ``int``/``float`` **bytes**, all times
are ``float`` **seconds**, and all rates are ``float`` **bytes/second**.
This module centralizes the conversion constants and pretty-printers so the
rest of the code never hand-rolls ``1024 ** 3`` arithmetic.

The paper mixes decimal (GB/s bandwidth figures quoted from Yang et al. /
Izraelevitz et al.) and binary (object sizes like "64 MB", "2 KB") units.  We
follow the same convention: device bandwidths are decimal (``GB``), object
and snapshot sizes are binary (``MiB``), matching how the original numbers
were reported.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Binary sizes (object / snapshot sizes).
# --------------------------------------------------------------------------
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

# --------------------------------------------------------------------------
# Decimal sizes (device bandwidth figures from the literature).
# --------------------------------------------------------------------------
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB
TB: int = 1000 * GB

# --------------------------------------------------------------------------
# Dimensionless SI magnitudes (FLOP rates and similar non-byte quantities).
# --------------------------------------------------------------------------
MEGA: float = 1e6
GIGA: float = 1e9

# --------------------------------------------------------------------------
# Times.
# --------------------------------------------------------------------------
NANOSECOND: float = 1e-9
MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3
SECOND: float = 1.0

_SIZE_STEPS = (
    (TiB, "TiB"),
    (GiB, "GiB"),
    (MiB, "MiB"),
    (KiB, "KiB"),
)

_TIME_STEPS = (
    (1.0, "s"),
    (MILLISECOND, "ms"),
    (MICROSECOND, "us"),
    (NANOSECOND, "ns"),
)


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(2048) == '2.0 KiB'``."""
    sign = "-" if nbytes < 0 else ""
    nbytes = abs(nbytes)
    for step, suffix in _SIZE_STEPS:
        if nbytes >= step:
            return f"{sign}{nbytes / step:.1f} {suffix}"
    return f"{sign}{nbytes:.0f} B"


def fmt_rate(bytes_per_second: float) -> str:
    """Format a bandwidth in decimal GB/s (the convention used by the paper)."""
    return f"{bytes_per_second / GB:.2f} GB/s"


def fmt_time(seconds: float) -> str:
    """Format a duration with an appropriate suffix, e.g. ``fmt_time(0.25) == '250.0 ms'``."""
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    if seconds == 0:
        return "0 s"
    for step, suffix in _TIME_STEPS:
        if seconds >= step:
            return f"{sign}{seconds / step:.1f} {suffix}"
    return f"{sign}{seconds / NANOSECOND:.2f} ns"


def parse_size(text: str) -> int:
    """Parse a human-readable size such as ``"64MB"``, ``"2 KiB"`` or ``"4096"``.

    Decimal suffixes (KB/MB/GB) are treated as their *binary* equivalents
    when parsing workload descriptions, matching the paper's loose usage
    ("64MB objects" means ``64 * 2**20`` bytes in the benchmark sources).
    Returns a byte count as ``int``.
    """
    text = text.strip()
    multipliers = {
        "B": 1,
        "KB": KiB,
        "KIB": KiB,
        "K": KiB,
        "MB": MiB,
        "MIB": MiB,
        "M": MiB,
        "GB": GiB,
        "GIB": GiB,
        "G": GiB,
        "TB": TiB,
        "TIB": TiB,
        "T": TiB,
    }
    upper = text.upper().replace(" ", "")
    for suffix in sorted(multipliers, key=len, reverse=True):
        if upper.endswith(suffix):
            number = upper[: -len(suffix)]
            if number:
                return int(float(number) * multipliers[suffix])
    return int(float(upper))
