"""Execute a workflow on the simulated platform under one configuration.

This is where the scheduling decisions become mechanism:

* **Placement** decides which socket's PMEM hosts the streaming channel;
  writer ranks always run on socket 0 and reader ranks on socket 1 (§II-A:
  components are placed on distinct sockets), so one component's transfers
  are local and the other's traverse the UPI link.
* **Execution mode** decides whether reader ranks start at time zero
  (parallel — their transfers overlap the writer's in the flow network) or
  only after every writer rank has finished (serial).

Each rank is a simulated process alternating compute phases (plain delays)
and I/O phases (fluid flows through the device resources).  The versioned
channel enforces the data dependency: version *v* cannot be read before it
is published.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, List, Optional

from repro.errors import ConfigurationError
from repro.metrics.results import PhaseBreakdown, RunResult
from repro.platform.builder import paper_testbed
from repro.platform.topology import Node
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration
from repro.sim.engine import Engine
from repro.sim.events import AllOf, SimEvent, Timeout
from repro.sim.flow import Flow, FlowNetwork
from repro.sim.resources import Barrier
from repro.sim.trace import Tracer
from repro.storage import StorageStack, stack_by_name
from repro.storage.channel import StreamChannel
from repro.workflow.spec import WorkflowSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.configs import SchedulerConfig
    from repro.obs.capture import Observation


@dataclass
class _ComponentStats:
    """Mutable per-component accumulators filled in by rank processes."""

    starts: List[float] = field(default_factory=list)
    ends: List[float] = field(default_factory=list)
    compute: float = 0.0
    io: float = 0.0
    wait: float = 0.0
    payload_bytes: float = 0.0

    def breakdown(self, ranks: int) -> PhaseBreakdown:
        return PhaseBreakdown(
            compute=self.compute / ranks,
            io=self.io / ranks,
            wait=self.wait / ranks,
        )

    def span(self) -> tuple:
        if not self.starts:
            return (0.0, 0.0)
        return (min(self.starts), max(self.ends))


#: Default deterministic per-rank compute-time spread (±3 %): real MPI
#: ranks never iterate in perfect lockstep, and the resulting phase drift
#: is what exposes parallel-mode I/O collisions for bursty workloads.
DEFAULT_COMPUTE_JITTER = 0.01


def _rank_jitter_factor(rank: int, ranks: int, jitter: float) -> float:
    """Deterministic, mean-preserving per-rank compute multiplier."""
    if ranks <= 1 or jitter <= 0:
        return 1.0
    return 1.0 + jitter * (2.0 * rank / (ranks - 1) - 1.0)


class _WorkflowExecution:
    """One workflow run: wiring of engine, network, node, channel, ranks."""

    def __init__(
        self,
        spec: WorkflowSpec,
        config: SchedulerConfig,
        cal: OptaneCalibration,
        node: Node,
        stack: StorageStack,
        trace: bool,
        writer_socket: int = 0,
        reader_socket: int = 1,
        compute_jitter: float = DEFAULT_COMPUTE_JITTER,
        observation: Optional["Observation"] = None,
    ) -> None:
        if writer_socket == reader_socket:
            raise ConfigurationError(
                "writer and reader must be on distinct sockets (§II-A)"
            )
        self.spec = spec
        self.config = config
        self.cal = cal
        self.node = node
        self.stack = stack
        self.engine = Engine()
        self.network = FlowNetwork(self.engine)
        self.observation = observation
        self.tracer = Tracer(enabled=trace or observation is not None)
        self.writer_socket = writer_socket
        self.reader_socket = reader_socket
        self.compute_jitter = compute_jitter
        self.channel_socket = writer_socket if config.writer_local else reader_socket
        self.writer_stats = _ComponentStats()
        self.reader_stats = _ComponentStats()
        # MPI simulations synchronize every iteration through collectives
        # (ghost exchange / reductions), so checkpoint bursts stay aligned
        # across ranks; the barrier models that lockstep.
        self.writer_barrier = Barrier(self.engine, spec.ranks, name="sim-collective")

        # Pin ranks to cores (raises PlacementError if oversubscribed).
        node.socket(writer_socket).cores.allocate(spec.ranks, owner="writer")
        node.socket(reader_socket).cores.allocate(spec.ranks, owner="reader")

        # Serial execution must retain every snapshot version in PMEM (no
        # reader consumes anything until all writers finish), which is the
        # real capacity cost of serial scheduling; parallel mode recycles a
        # small ring.
        # Observability: attach probe adapters before any event executes so
        # the instruments see the whole run.  All handles stay ``None`` on
        # the unobserved path (a single branch per emission site).
        self._obs_write_bytes = self._obs_read_bytes = None
        self._obs_consumed = None
        channel_hooks = None
        if observation is not None:
            observation.tracer = self.tracer
            self.engine.hooks = observation.engine_hooks()
            self.network.hooks = observation.network_hooks()
            channel_hooks = observation.channel_hooks()
            probes = observation.probes
            self._obs_write_bytes = probes.counter(
                "pmem.payload_bytes", socket=self.channel_socket, direction="write"
            )
            self._obs_read_bytes = probes.counter(
                "pmem.payload_bytes", socket=self.channel_socket, direction="read"
            )
            self._obs_consumed = probes.counter("channel.versions_consumed")

        self.channel = StreamChannel(
            engine=self.engine,
            node=node,
            pmem_socket=self.channel_socket,
            stack=stack,
            n_streams=spec.ranks,
            snapshot=spec.snapshot,
            retained_versions=spec.iterations if not config.parallel else 2,
            hooks=channel_hooks,
        )

    # ------------------------------------------------------------------
    def _make_flow(self, kind: str, cpu_socket: int, label: str) -> Flow:
        snapshot = self.spec.snapshot
        op_bytes = float(snapshot.object_bytes)
        path, remote = self.node.flow_path(cpu_socket, self.channel_socket)
        self_cap = self.stack.self_cap(self.cal, kind, op_bytes, remote)
        amplification = self.stack.amplification(kind, op_bytes, remote)
        # A software-bound flow's issue rate is capped regardless of device
        # queueing; this bounds its congestion contribution (see flow.py).
        single_thread = (
            self.cal.single_thread_write()
            if kind == "write"
            else self.cal.single_thread_read()
        )
        issue_weight = self_cap / (self_cap + single_thread)
        return Flow(
            nbytes=snapshot.snapshot_bytes * amplification,
            kind=kind,
            remote=remote,
            resources=path,
            self_cap=self_cap,
            # The device sees the stack's access granularity (coalesced for
            # log-structured streaming), not the logical object size.
            op_bytes=self.stack.device_access_bytes(kind, op_bytes),
            issue_weight=issue_weight,
            label=label,
        )

    # ------------------------------------------------------------------
    def writer_process(self, rank: int) -> Generator:
        spec, engine = self.spec, self.engine
        component = spec.writer
        stats = self.writer_stats
        stats.starts.append(engine.now)
        compute_seconds = component.compute_seconds * _rank_jitter_factor(
            rank, spec.ranks, self.compute_jitter
        )
        overhead = self.stack.snapshot_overhead(
            "write", spec.snapshot.objects_per_snapshot
        )
        for iteration in range(spec.iterations):
            if compute_seconds > 0:
                t0 = engine.now
                yield Timeout(compute_seconds)
                stats.compute += engine.now - t0
                self.tracer.record(
                    "writer", rank, "compute", t0, engine.now, iteration
                )
                # Per-iteration collective: ranks re-align before I/O.
                t0 = engine.now
                yield self.writer_barrier.arrive()
                if engine.now > t0:
                    stats.wait += engine.now - t0
                    self.tracer.record(
                        "writer", rank, "barrier", t0, engine.now, iteration
                    )
            t0 = engine.now
            if overhead > 0:
                yield Timeout(overhead)
            flow = self._make_flow(
                "write", self.writer_socket, f"w{rank}.v{iteration}"
            )
            yield self.network.transfer(flow)
            stats.io += engine.now - t0
            stats.payload_bytes += spec.snapshot.snapshot_bytes
            if self._obs_write_bytes is not None:
                self._obs_write_bytes.add(engine.now, spec.snapshot.snapshot_bytes)
            self.channel.publish(rank, iteration, nbytes=spec.snapshot.snapshot_bytes)
            self.tracer.record(
                "writer",
                rank,
                "write",
                t0,
                engine.now,
                iteration,
                bytes=spec.snapshot.snapshot_bytes,
            )
        stats.ends.append(engine.now)

    def reader_process(self, rank: int, start_gate: Optional[SimEvent]) -> Generator:
        spec, engine = self.spec, self.engine
        component = spec.reader
        stats = self.reader_stats
        if start_gate is not None:
            yield start_gate
        stats.starts.append(engine.now)
        compute_seconds = component.compute_seconds * _rank_jitter_factor(
            rank, spec.ranks, self.compute_jitter
        )
        overhead = self.stack.snapshot_overhead(
            "read", spec.snapshot.objects_per_snapshot
        )
        device = self.node.socket(self.channel_socket).pmem.resource
        poller_remote = self.reader_socket != self.channel_socket
        for iteration in range(spec.iterations):
            t0 = engine.now
            version_event = self.channel.wait_version(rank, iteration)
            if not version_event.triggered:
                # Blocked: busy-poll the channel's version metadata in
                # PMEM, which interferes with concurrent writes (§VI).
                # Targeted poke: only the device's share-state token moved,
                # so components not affected by it (e.g. read-only phases)
                # skip their solve entirely.
                device.add_poller(poller_remote)
                self.network.poke(device)
                yield version_event
                device.remove_poller(poller_remote)
                self.network.poke(device)
            if engine.now > t0:
                stats.wait += engine.now - t0
                self.tracer.record("reader", rank, "wait", t0, engine.now, iteration)
            t0 = engine.now
            if overhead > 0:
                yield Timeout(overhead)
            flow = self._make_flow("read", self.reader_socket, f"r{rank}.v{iteration}")
            yield self.network.transfer(flow)
            stats.io += engine.now - t0
            stats.payload_bytes += spec.snapshot.snapshot_bytes
            if self._obs_read_bytes is not None:
                self._obs_read_bytes.add(engine.now, spec.snapshot.snapshot_bytes)
                self._obs_consumed.add(engine.now, 1)
            self.tracer.record(
                "reader",
                rank,
                "read",
                t0,
                engine.now,
                iteration,
                bytes=spec.snapshot.snapshot_bytes,
            )
            if compute_seconds > 0:
                t0 = engine.now
                yield Timeout(compute_seconds)
                stats.compute += engine.now - t0
                self.tracer.record(
                    "reader", rank, "compute", t0, engine.now, iteration
                )
        stats.ends.append(engine.now)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        spec = self.spec
        writers = [
            self.engine.spawn(self.writer_process(rank), name=f"writer-{rank}")
            for rank in range(spec.ranks)
        ]
        if self.config.parallel:
            start_gate: Optional[SimEvent] = None
        else:
            start_gate = AllOf(
                [w.completed for w in writers], name="writers-complete"
            )
        for rank in range(spec.ranks):
            self.engine.spawn(
                self.reader_process(rank, start_gate), name=f"reader-{rank}"
            )
        makespan = self.engine.run()
        self.channel.close()
        result = RunResult(
            workflow_name=spec.name,
            config_label=self.config.label,
            makespan=makespan,
            writer_span=self.writer_stats.span(),
            reader_span=self.reader_stats.span(),
            writer_phases=self.writer_stats.breakdown(spec.ranks),
            reader_phases=self.reader_stats.breakdown(spec.ranks),
            bytes_written=self.writer_stats.payload_bytes,
            bytes_read=self.reader_stats.payload_bytes,
            tracer=self.tracer if self.tracer.enabled else None,
            observation=self.observation,
        )
        if self.observation is not None:
            self.observation.finalize(self.engine, result, network=self.network)
        return result


def run_workflow(
    spec: WorkflowSpec,
    config: SchedulerConfig,
    cal: OptaneCalibration = DEFAULT_CALIBRATION,
    node_factory: Callable[..., Node] = None,
    trace: bool = False,
    compute_jitter: float = DEFAULT_COMPUTE_JITTER,
    writer_socket: int = 0,
    reader_socket: int = 1,
    validate: bool = True,
    observation: Optional["Observation"] = None,
) -> RunResult:
    """Simulate *spec* under *config* and return the run result.

    A fresh platform is built per run (runs never share device state).

    Parameters
    ----------
    spec:
        The workflow to execute.
    config:
        One of the four Table I configurations.
    cal:
        Optane calibration (defaults to the first-generation constants).
    node_factory:
        Callable building the platform; defaults to the paper's dual-socket
        testbed with the given calibration.
    trace:
        Collect a full phase timeline in ``result.tracer``.
    compute_jitter:
        Deterministic per-rank compute-time spread (0 disables it).
    writer_socket / reader_socket:
        Sockets hosting the two components (defaults match §II-A).
    validate:
        Run the :mod:`repro.analysis.validate` structural checks first; a
        cyclic coupling graph, an out-of-range socket, an oversubscribed
        core pool, or an inconsistent calibration table raises
        :class:`repro.errors.ValidationError` with structured diagnostics
        before any simulated event executes.
    observation:
        Optional :class:`repro.obs.capture.Observation` to record the run
        into (forces tracing on and attaches the probe hooks).  When
        omitted and a :func:`repro.obs.capture.capture_runs` context is
        active, an observation is created automatically and collected by
        the enclosing session; otherwise the run is unobserved and the
        instrumentation is a handful of ``is None`` branches.
    """
    if node_factory is None:
        node = paper_testbed(cal=cal)
    else:
        node = node_factory(cal=cal)
    if validate:
        from repro.analysis.validate import validate_run

        validate_run(
            spec,
            config,
            node,
            cal,
            writer_socket=writer_socket,
            reader_socket=reader_socket,
        )
    stack = stack_by_name(spec.stack_name)
    if observation is None:
        # Imported here, not at module top, to keep the workflow layer free
        # of a hard obs dependency (obs imports metrics, which workflow
        # also imports); after the first call this is a dict lookup.
        from repro.obs.capture import active_session

        session = active_session()
        if session is not None:
            observation = session.begin_run()
    if observation is not None:
        from repro.obs.manifest import build_manifest

        observation.manifest = build_manifest(
            spec,
            config,
            cal,
            writer_socket=writer_socket,
            reader_socket=reader_socket,
            compute_jitter=compute_jitter,
        )
    execution = _WorkflowExecution(
        spec=spec,
        config=config,
        cal=cal,
        node=node,
        stack=stack,
        trace=trace,
        writer_socket=writer_socket,
        reader_socket=reader_socket,
        compute_jitter=compute_jitter,
        observation=observation,
    )
    return execution.run()


def probe_component(
    spec: WorkflowSpec,
    role: str,
    cal: OptaneCalibration = DEFAULT_CALIBRATION,
    node_factory: Callable[..., Node] = None,
) -> RunResult:
    """Standalone run of one component with node-local PMEM, no contention.

    This is the measurement the paper's I/O index is defined on (§IV-A):
    the component executes as in serial mode, alone on the machine, with
    the channel in its own socket's PMEM.  For the analytics component all
    snapshot versions are pre-published so reads never block.
    """
    if role not in ("simulation", "analytics"):
        raise ConfigurationError(
            f"role must be 'simulation' or 'analytics', got {role!r}"
        )
    if node_factory is None:
        node = paper_testbed(cal=cal)
    else:
        node = node_factory(cal=cal)
    stack = stack_by_name(spec.stack_name)
    # Channel local to the probed component; the other side is absent.
    from repro.core.configs import S_LOCR, S_LOCW

    config = S_LOCW if role == "simulation" else S_LOCR
    execution = _WorkflowExecution(
        spec=spec, config=config, cal=cal, node=node, stack=stack, trace=False
    )
    if role == "simulation":
        for rank in range(spec.ranks):
            execution.engine.spawn(
                execution.writer_process(rank), name=f"probe-writer-{rank}"
            )
    else:
        for rank in range(spec.ranks):
            for version in range(spec.iterations):
                execution.channel.publish(rank, version)
            execution.engine.spawn(
                execution.reader_process(rank, None), name=f"probe-reader-{rank}"
            )
    makespan = execution.engine.run()
    execution.channel.close()
    stats = (
        execution.writer_stats if role == "simulation" else execution.reader_stats
    )
    empty = _ComponentStats()
    writer_stats = stats if role == "simulation" else empty
    reader_stats = stats if role == "analytics" else empty
    return RunResult(
        workflow_name=f"{spec.name}:probe-{role}",
        config_label=config.label,
        makespan=makespan,
        writer_span=writer_stats.span(),
        reader_span=reader_stats.span(),
        writer_phases=writer_stats.breakdown(spec.ranks),
        reader_phases=reader_stats.breakdown(spec.ranks),
        bytes_written=writer_stats.payload_bytes,
        bytes_read=reader_stats.payload_bytes,
    )
