"""Workflow component specification.

A component is one side of the in situ pipeline: the *simulation* (writer)
or the *analytics* (reader).  It is described by its concurrency (MPI
ranks), iteration count, per-iteration compute kernel, and its per-rank
snapshot I/O signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.storage.objects import SnapshotSpec
from repro.workflow.kernels import ComputeKernel

_ROLES = ("simulation", "analytics")


@dataclass(frozen=True)
class ComponentSpec:
    """One workflow component.

    Attributes
    ----------
    role:
        ``"simulation"`` (writes snapshots) or ``"analytics"`` (reads them).
    ranks:
        Number of MPI ranks / threads (the paper uses the terms
        interchangeably, §IV-C).
    iterations:
        Iterations each rank executes.
    snapshot:
        Per-rank per-iteration payload (shared with the paired component:
        both sides access complete objects at the same granularity, §IV-C).
    compute:
        Per-iteration compute kernel.
    """

    role: str
    ranks: int
    iterations: int
    snapshot: SnapshotSpec
    compute: ComputeKernel

    def __post_init__(self) -> None:
        if self.role not in _ROLES:
            raise ConfigurationError(f"role must be one of {_ROLES}, got {self.role!r}")
        if self.ranks <= 0:
            raise ConfigurationError(f"ranks must be positive, got {self.ranks}")
        if self.iterations <= 0:
            raise ConfigurationError(
                f"iterations must be positive, got {self.iterations}"
            )

    @property
    def io_kind(self) -> str:
        """The PMEM operation kind this component performs."""
        return "write" if self.role == "simulation" else "read"

    @property
    def compute_seconds(self) -> float:
        """Per-rank per-iteration compute time."""
        return self.compute.iteration_seconds()

    def total_payload_bytes(self) -> int:
        """Bytes this component moves over the whole run (all ranks)."""
        return self.snapshot.total_bytes(self.ranks, self.iterations)
