"""Compute-kernel cost models for workflow components.

Each kernel answers one question: how many seconds of pure computation does
one rank spend per iteration?  Kernels never touch the device — the paper's
"interleaved compute hides contention" effect (§VIII) follows from compute
phases not pressuring PMEM at all.

Kernels are parameterized in problem terms (particles, mesh blocks, matrix
dimensions) and converted to seconds through an effective per-core
computation rate, so workloads weak-scale the way the applications do.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GIGA

#: Effective per-core floating-point rate used to convert kernel work to
#: time (a few GFLOP/s of *achieved* throughput on a Xeon core, memory
#: traffic included).  Only ratios between kernels matter to the study.
DEFAULT_CORE_GFLOPS: float = 4.0


class ComputeKernel(ABC):
    """Abstract per-iteration compute cost model for one rank."""

    @abstractmethod
    def iteration_seconds(self) -> float:
        """Pure compute time of one rank for one iteration, in seconds."""

    @property
    def is_null(self) -> bool:
        """True when the component has no compute phase at all."""
        return self.iteration_seconds() == 0.0


@dataclass(frozen=True)
class NullKernel(ComputeKernel):
    """No compute phase (the I/O-only microbenchmark and Read-Only kernel)."""

    def iteration_seconds(self) -> float:
        return 0.0


@dataclass(frozen=True)
class FixedWorkKernel(ComputeKernel):
    """A kernel with an explicitly specified per-iteration duration."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError(f"kernel seconds must be >= 0, got {self.seconds}")

    def iteration_seconds(self) -> float:
        return self.seconds


@dataclass(frozen=True)
class MatrixMultKernel(ComputeKernel):
    """Dense matrix-multiplication analytics kernel (§IV-B).

    ``multiplies`` products of ``dim x dim`` matrices at ``2 * dim**3``
    flops each.  The GTC variant performs many multiplies of large arrays
    per iteration; see :mod:`repro.apps.analytics` for the concrete
    parameterizations.
    """

    multiplies: int
    dim: int
    gflops: float = DEFAULT_CORE_GFLOPS

    def __post_init__(self) -> None:
        if self.multiplies < 0 or self.dim <= 0 or self.gflops <= 0:
            raise ConfigurationError("invalid MatrixMultKernel parameters")

    def iteration_seconds(self) -> float:
        flops = 2.0 * self.multiplies * float(self.dim) ** 3
        return flops / (self.gflops * GIGA)


@dataclass(frozen=True)
class PerObjectKernel(ComputeKernel):
    """Compute proportional to the number of streamed objects.

    Used for the miniAMR + MatrixMult analytics kernel: 5 small matrix
    multiplications on *each* of the snapshot's many small objects — cheap
    per object, large in aggregate (§IV-B).
    """

    objects: int
    seconds_per_object: float

    def __post_init__(self) -> None:
        if self.objects < 0 or self.seconds_per_object < 0:
            raise ConfigurationError("invalid PerObjectKernel parameters")

    def iteration_seconds(self) -> float:
        return self.objects * self.seconds_per_object


@dataclass(frozen=True)
class ParticlePushKernel(ComputeKernel):
    """Particle-in-cell push/scatter step (the GTC simulation kernel).

    ``particles`` particles advanced per iteration at ``flops_per_particle``
    fused operations each (field interpolation, push, charge deposition).
    """

    particles: int
    flops_per_particle: float = 360.0
    gflops: float = DEFAULT_CORE_GFLOPS

    def __post_init__(self) -> None:
        if self.particles < 0 or self.flops_per_particle < 0 or self.gflops <= 0:
            raise ConfigurationError("invalid ParticlePushKernel parameters")

    def iteration_seconds(self) -> float:
        return self.particles * self.flops_per_particle / (self.gflops * GIGA)


@dataclass(frozen=True)
class StencilKernel(ComputeKernel):
    """Seven-point stencil over mesh blocks (the miniAMR simulation kernel).

    ``blocks`` blocks of ``cells_per_block`` cells, ``flops_per_cell`` fused
    operations per cell per sweep, ``sweeps`` sweeps per iteration.
    """

    blocks: int
    cells_per_block: int
    flops_per_cell: float = 8.0
    sweeps: int = 1
    gflops: float = DEFAULT_CORE_GFLOPS

    def __post_init__(self) -> None:
        if min(self.blocks, self.cells_per_block, self.sweeps) < 0 or self.gflops <= 0:
            raise ConfigurationError("invalid StencilKernel parameters")

    def iteration_seconds(self) -> float:
        flops = (
            float(self.blocks)
            * self.cells_per_block
            * self.flops_per_cell
            * self.sweeps
        )
        return flops / (self.gflops * GIGA)
