"""Workflow model: components, compute kernels, specs, and the runner.

A workflow couples a *simulation* component (writer) and an *analytics*
component (reader) through a PMEM streaming channel, rank-paired 1:1, both
iterating compute + I/O phases (§IV).  The
:func:`~repro.workflow.runner.run_workflow` entry point executes a
:class:`~repro.workflow.spec.WorkflowSpec` on the simulated platform under
one of the paper's four scheduling configurations and returns a
:class:`~repro.metrics.results.RunResult`.
"""

from repro.workflow.component import ComponentSpec
from repro.workflow.iteration import IterationProfile, component_iteration_profile
from repro.workflow.kernels import (
    ComputeKernel,
    FixedWorkKernel,
    MatrixMultKernel,
    NullKernel,
    ParticlePushKernel,
    PerObjectKernel,
    StencilKernel,
)
from repro.workflow.runner import run_workflow
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "ComponentSpec",
    "ComputeKernel",
    "FixedWorkKernel",
    "IterationProfile",
    "MatrixMultKernel",
    "NullKernel",
    "ParticlePushKernel",
    "PerObjectKernel",
    "StencilKernel",
    "WorkflowSpec",
    "component_iteration_profile",
    "run_workflow",
]
