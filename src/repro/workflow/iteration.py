"""Analytic per-iteration profile of a component (standalone, serial).

The paper's **I/O index** (§IV-A) is defined on a *standalone* execution:
the ratio of I/O time to iteration time when the component runs alone with
node-local PMEM.  This module computes that profile in closed form from the
same model the simulator uses — a useful cross-check on the discrete-event
engine (the two must agree for contention-free homogeneous runs; tests
enforce this), the cheap path for feature extraction, and the basis of the
static cost-model recommender in :mod:`repro.core.recommend`.

The closed form mirrors the simulator's duty-cycle fixed point
(:mod:`repro.sim.flow`) for the homogeneous case: *n* identical ranks,
one operation kind, one locality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pmem.bandwidth import (
    access_efficiency,
    read_bandwidth_total,
    remote_read_factor,
    remote_write_factor,
    sustained_congestion_factor,
    write_bandwidth_total,
)
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration
from repro.storage import stack_by_name
from repro.storage.base import StorageStack
from repro.workflow.component import ComponentSpec

_FIXED_POINT_ITERATIONS = 40
_FIXED_POINT_DAMPING = 0.6


@dataclass(frozen=True)
class IterationProfile:
    """Phase composition of one standalone iteration of one rank.

    Attributes
    ----------
    compute_seconds:
        Pure compute phase.
    io_seconds:
        Wall time of the I/O phase (software + device, interleaved per op).
    rate_bytes_per_s:
        Achieved per-rank throughput during the I/O phase.
    self_cap_bytes_per_s / device_share_bytes_per_s:
        The two throughput terms whose harmonic mean is the achieved rate.
    duty:
        Converged device duty cycle of the I/O phase (1.0 = device-bound,
        near 0 = software-bound).
    effective_concurrency:
        Duty-weighted device concurrency ``ranks * duty`` — the paper's
        "actual level of concurrency experienced by PMEM" (§VIII).
    """

    compute_seconds: float
    io_seconds: float
    rate_bytes_per_s: float
    self_cap_bytes_per_s: float
    device_share_bytes_per_s: float
    duty: float
    effective_concurrency: float

    @property
    def iteration_seconds(self) -> float:
        return self.compute_seconds + self.io_seconds

    @property
    def io_index(self) -> float:
        """I/O time / iteration time, the paper's workflow parameter."""
        total = self.iteration_seconds
        return self.io_seconds / total if total > 0 else 0.0

    @property
    def software_fraction(self) -> float:
        """Share of the I/O phase spent CPU-side (1 - duty)."""
        return 1.0 - self.duty

    @property
    def device_pressure(self) -> float:
        """Average device occupancy contributed over the whole iteration:
        effective concurrency scaled by the I/O share of the iteration."""
        return self.effective_concurrency * self.io_index


def component_iteration_profile(
    component: ComponentSpec,
    cal: OptaneCalibration = DEFAULT_CALIBRATION,
    stack: "StorageStack | str" = "nvstream",
    remote: bool = False,
) -> IterationProfile:
    """Standalone profile of one rank's iteration.

    Assumes all ``component.ranks`` ranks are active concurrently with no
    *other* traffic — the configuration the paper's I/O-index definition
    prescribes (with ``remote=False``).  With ``remote=True`` the same
    component is profiled accessing the other socket's PMEM, which is what
    the static recommender uses to estimate placement penalties.
    """
    if isinstance(stack, str):
        stack = stack_by_name(stack)
    kind = component.io_kind
    snapshot = component.snapshot
    op_bytes = float(snapshot.object_bytes)
    n = float(component.ranks)

    self_cap = stack.self_cap(cal, kind, op_bytes, remote)
    amplification = stack.amplification(kind, op_bytes, remote)
    moved_bytes = snapshot.snapshot_bytes * amplification
    device_bytes = stack.device_access_bytes(kind, op_bytes)
    size_eff = access_efficiency(cal, kind, device_bytes, component.ranks)

    # Duty fixed point, mirroring repro.sim.flow.solve_rates for the
    # homogeneous single-kind case.
    if kind == "write":
        single_thread = cal.single_thread_write()
    else:
        single_thread = cal.single_thread_read()
    issue_weight = self_cap / (self_cap + single_thread)
    compute_seconds = component.compute_seconds
    duty = 1.0
    rate = self_cap
    share = self_cap
    for _ in range(_FIXED_POINT_ITERATIONS):
        n_eff = max(1.0, n * duty)
        if kind == "write":
            total = write_bandwidth_total(cal, n_eff)
            if remote:
                # Knee on the raw writer thread count (per-thread WC /
                # coherence streams), steady-state congestion on the
                # time-averaged issue-capable occupancy.
                streams = min(n, cal.remote_write_knee_duty_factor * n * duty)
                total *= remote_write_factor(cal, max(1.0, streams), device_bytes)
                io_estimate = moved_bytes / rate if rate > 0 else 0.0
                io_fraction = (
                    io_estimate / (io_estimate + compute_seconds)
                    if io_estimate + compute_seconds > 0
                    else 0.0
                )
                sustained = n * min(duty, issue_weight) * io_fraction
                total *= sustained_congestion_factor(cal, sustained)
        else:
            total = read_bandwidth_total(cal, n_eff)
            if remote:
                total *= remote_read_factor(cal, n_eff)
        total *= size_eff
        share = total / n_eff
        if kind == "write" and remote:
            share = min(share, cal.remote_write_thread_cap)
        rate = 1.0 / (1.0 / self_cap + 1.0 / share)
        new_duty = min(1.0, max(1e-6, 1.0 - rate / self_cap))
        if abs(new_duty - duty) < 1e-7:
            duty = new_duty
            break
        duty += _FIXED_POINT_DAMPING * (new_duty - duty)

    io_seconds = moved_bytes / rate + stack.snapshot_overhead(
        kind, snapshot.objects_per_snapshot
    )
    return IterationProfile(
        compute_seconds=component.compute_seconds,
        io_seconds=io_seconds,
        rate_bytes_per_s=rate,
        self_cap_bytes_per_s=self_cap,
        device_share_bytes_per_s=share,
        duty=duty,
        effective_concurrency=n * duty,
    )
