"""Whole-workflow specification: simulation + analytics + transport.

The paper's workflows are rank-paired 1:1 with identical I/O granularity on
both sides (§IV-C); :class:`WorkflowSpec` enforces exactly that shape and is
the unit the scheduler, the recommendation engine, and the experiment
harness all operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.storage.objects import SnapshotSpec
from repro.workflow.component import ComponentSpec
from repro.workflow.kernels import ComputeKernel, NullKernel


@dataclass(frozen=True)
class WorkflowSpec:
    """An in situ workflow: writer and reader coupled through a channel.

    Attributes
    ----------
    name:
        Label used in reports ("gtc+readonly@24", ...).
    ranks:
        Concurrency of *each* component (1:1 pairing).
    iterations:
        Snapshot versions streamed end to end.
    snapshot:
        Per-rank per-iteration payload.
    sim_compute / analytics_compute:
        Compute kernels of the two components.
    stack_name:
        Storage stack used for the channel ("nvstream" or "novafs").
    couplings:
        Directed producer/consumer edges between component roles.  The
        default is the paper's single writer->reader channel; richer
        topologies (fan-out analytics, feedback loops) can be declared and
        are structurally checked by :mod:`repro.analysis.validate` — the
        coupling graph must be an acyclic graph over the declared roles.
    """

    name: str
    ranks: int
    iterations: int
    snapshot: SnapshotSpec
    sim_compute: ComputeKernel = field(default_factory=NullKernel)
    analytics_compute: ComputeKernel = field(default_factory=NullKernel)
    stack_name: str = "nvstream"
    couplings: Tuple[Tuple[str, str], ...] = (("simulation", "analytics"),)

    def __post_init__(self) -> None:
        if self.ranks <= 0:
            raise ConfigurationError(f"ranks must be positive, got {self.ranks}")
        if self.iterations <= 0:
            raise ConfigurationError(
                f"iterations must be positive, got {self.iterations}"
            )
        if not self.name:
            raise ConfigurationError("workflow needs a non-empty name")

    # ------------------------------------------------------------------
    @property
    def writer(self) -> ComponentSpec:
        """The simulation component."""
        return ComponentSpec(
            role="simulation",
            ranks=self.ranks,
            iterations=self.iterations,
            snapshot=self.snapshot,
            compute=self.sim_compute,
        )

    @property
    def reader(self) -> ComponentSpec:
        """The analytics component."""
        return ComponentSpec(
            role="analytics",
            ranks=self.ranks,
            iterations=self.iterations,
            snapshot=self.snapshot,
            compute=self.analytics_compute,
        )

    @property
    def roles(self) -> Tuple[str, ...]:
        """Component roles that exist in this workflow (coupling endpoints)."""
        return (self.writer.role, self.reader.role)

    def total_data_bytes(self) -> int:
        """Data volume streamed through the channel over the full run."""
        return self.snapshot.total_bytes(self.ranks, self.iterations)

    def with_ranks(self, ranks: int, name: Optional[str] = None) -> "WorkflowSpec":
        """A copy at a different concurrency level (weak scaling: per-rank
        snapshot and compute stay fixed, total data grows with ranks)."""
        return replace(self, ranks=ranks, name=name or f"{self.name}@{ranks}")

    def with_stack(self, stack_name: str) -> "WorkflowSpec":
        """A copy using a different storage stack."""
        return replace(self, stack_name=stack_name)
