"""Table II: configuration recommendations for workflows.

The paper's deliverable: ten rows mapping workflow characteristics to the
configuration a scheduler should pick.  We validate the rule engine three
ways per suite workflow:

* the Table II rule engine's pick (the literal paper artifact);
* the quantified cost-model recommender (the §VIII logic);
* the exhaustive oracle (ground truth under our simulator).

Claims: the rule engine picks the paper's configuration for every
illustrative workload, and its regret vs the oracle is small.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.apps.suite import workflow_suite
from repro.core.autotune import ExhaustiveTuner
from repro.core.recommend import RecommendationEngine
from repro.experiments.common import Claim, ExperimentResult
from repro.metrics.report import format_table
from repro.metrics.results import RunResult
from repro.obs.explain import attribution_from_phases, why_line
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration

EXPERIMENT_ID = "table02"
TITLE = "Configuration recommendations for workflows"


def _why(result: RunResult) -> str:
    """The oracle winner's dominant blame bucket, from phase breakdowns.

    Uses the estimator (no extra simulation): the tuner keeps phase
    averages but not traces.  The ``(est.)`` tag the estimator appends is
    dropped here — every row of this column is estimated the same way.
    """
    attribution = attribution_from_phases(
        result.config_label,
        result.makespan,
        {
            "writer": dataclasses.asdict(result.writer_phases),
            "reader": dataclasses.asdict(result.reader_phases),
        },
    )
    return why_line(attribution).replace(" (est.)", "")


def run(
    cal: Optional[OptaneCalibration] = None, engine: str = "heuristic"
) -> ExperimentResult:
    """Regenerate Table II.

    ``engine`` selects the path that fills the recommendation column:
    ``"heuristic"`` (the Table II rule engine — the paper artifact) or
    ``"optimize"`` (the global optimizer's simulation-priced candidate
    argmin, fed from the tuner results already computed for the oracle
    column, so it costs nothing extra).  With ``"optimize"`` a diff
    artifact lists every panel where the two paths disagree.
    """
    cal = cal or DEFAULT_CALIBRATION
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, description=__doc__.strip()
    )
    table_engine = RecommendationEngine(strategy="hybrid", cal=cal)
    model_engine = RecommendationEngine(strategy="model", cal=cal)
    tuner = ExhaustiveTuner(cal=cal)
    optimize = engine == "optimize"

    rows = []
    table_hits = 0
    model_hits = 0
    oracle_hits = 0
    regrets = []
    engine_diffs = []
    entries = workflow_suite()
    for entry in entries:
        table_rec = table_engine.recommend(entry.spec)
        model_rec = model_engine.recommend(entry.spec)
        report = tuner.tune(entry.spec)
        oracle_best = report.comparison.best_label
        pick_label = table_rec.config.label
        pick_note = (
            f" (row {table_rec.matched_rule})" if table_rec.matched_rule else ""
        )
        pick_config = table_rec.config
        if optimize:
            from repro.core.configs import SchedulerConfig
            from repro.core.optimize.pricing import SimulationPricer

            key = f"{entry.family}@{entry.ranks}"
            pricer = SimulationPricer(
                cal=cal,
                precomputed={
                    key: {
                        label: run_result.makespan
                        for label, run_result in report.results.items()
                    }
                },
            )
            best = pricer.price(entry.spec, entry.family, entry.ranks).makespan_best
            if best.key != table_rec.config.label:
                engine_diffs.append(
                    f"{entry.spec.name}: heuristic {table_rec.config.label} "
                    f"vs optimize {best.key} "
                    f"({report.regret_of(table_rec.config):+.1%} makespan "
                    f"left on the table)"
                )
            pick_label, pick_note = best.key, ""
            pick_config = SchedulerConfig.from_label(best.key)
        table_hits += pick_label == entry.paper_best
        model_hits += model_rec.config.label == entry.paper_best
        oracle_hits += oracle_best == entry.paper_best
        regrets.append(report.regret_of(pick_config))
        rows.append(
            (
                entry.spec.name,
                entry.paper_best,
                f"{pick_label}{pick_note}",
                model_rec.config.label,
                oracle_best,
                f"{report.regret_of(pick_config):.1%}",
                _why(report.results[oracle_best]),
            )
        )
    result.artifacts.append(
        format_table(
            [
                "workflow",
                "paper",
                "optimizer" if optimize else "Table II engine",
                "cost model",
                "oracle",
                "engine regret",
                "why",
            ],
            rows,
        )
    )
    if optimize:
        result.artifacts.append(
            "engine diff (heuristic vs optimize):\n"
            + (
                "\n".join(f"  {line}" for line in engine_diffs)
                if engine_diffs
                else "  all 18 panels agree"
            )
        )
    n = len(entries)
    result.data["table_hits"] = table_hits
    result.data["model_hits"] = model_hits
    result.data["oracle_hits"] = oracle_hits
    result.data["total"] = n
    result.data["max_regret"] = max(regrets)
    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.rule_engine",
            description=(
                "the optimizer re-derives the paper's configuration"
                if optimize
                else "the Table II rule engine picks the paper's configuration"
            ),
            paper_value="10/10 rows (18/18 suite workflows)",
            measured_value=f"{table_hits}/{n}",
            holds=table_hits >= n - 2,
            note="near-miss panels are documented in EXPERIMENTS.md",
        )
    )
    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.engine_regret",
            description="following the rule engine costs little vs the oracle",
            paper_value="recommendations maximize PMEM benefit",
            measured_value=f"max regret {max(regrets):.1%}",
            holds=max(regrets) <= 0.25,
        )
    )
    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.model_agreement",
            description="the quantified §VIII cost model agrees on most workflows",
            paper_value="static rules capture the decision",
            measured_value=f"{model_hits}/{n}",
            holds=model_hits >= int(0.6 * n),
        )
    )
    return result
