"""Figure 5: microbenchmark with 2 KB objects.

Paper findings: the 2K workflow never saturates write bandwidth (per-object
software overhead dominates), so reads should be prioritized — local-read
placements win.  At low/medium concurrency parallel execution is 10-14 %
faster than serial (P-LocR, §VI-D); at 24 threads contention for the Optane
internal cache makes serial 11.5 % faster (S-LocR, §VI-B).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.autotune import TuningReport
from repro.experiments.common import Claim, ExperimentResult, gap_claim
from repro.experiments.family_figure import run_family_figure
from repro.metrics.analysis import gap_between
from repro.pmem.calibration import OptaneCalibration

EXPERIMENT_ID = "fig05"
TITLE = "Benchmark Writer + Reader with 2K objects: Runtime"


def _claims(reports: Dict[int, TuningReport]) -> List[Claim]:
    claims: List[Claim] = []
    for ranks, paper_gap in ((8, 0.12), (16, 0.12)):
        measured = gap_between(reports[ranks].results, "P-LocR", "S-LocR")
        claims.append(
            gap_claim(
                f"{EXPERIMENT_ID}.parallel_gain.{ranks}",
                f"P-LocR 10-14 % faster than S-LocR at {ranks} threads",
                paper_gap=paper_gap,
                measured_gap=measured,
                rel_tolerance=1.2,
            )
        )
    # At 24 threads serial wins over the best parallel configuration.
    results_24 = reports[24].results
    best_parallel = min(
        results_24["P-LocW"].makespan, results_24["P-LocR"].makespan
    )
    measured = best_parallel / results_24["S-LocR"].makespan - 1.0
    claims.append(
        gap_claim(
            f"{EXPERIMENT_ID}.serial_gain.24",
            "S-LocR 11.5 % faster than parallel at 24 threads",
            paper_gap=0.115,
            measured_gap=measured,
            rel_tolerance=6.0,
        )
    )
    return claims


def run(cal: Optional[OptaneCalibration] = None) -> ExperimentResult:
    return run_family_figure(
        EXPERIMENT_ID,
        TITLE,
        __doc__.strip(),
        family="micro-2k",
        panels=(8, 16, 24),
        extra_claims=_claims,
        cal=cal,
    )
