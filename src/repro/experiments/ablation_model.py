"""Model ablation: which device-model term carries which paper observation.

Our simulator reproduces the paper through four first-order mechanisms.
This experiment disables each in turn and checks that a named observation
disappears, demonstrating that the reproduction is not an accident of
over-fitting a single curve:

* **mixed read/write interference** — without it, parallel execution
  dominates the bandwidth-bound 64 MB workflow (Fig. 4's serial win
  vanishes);
* **remote penalties** — without them, placement stops mattering for the
  64 MB workflow (LocW == LocR within noise);
* **access-granularity effects** — without them, NOVAfs small-object
  workflows stop paying DIMM-contention costs.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.suite import suite_entry
from repro.core.autotune import ExhaustiveTuner
from repro.experiments.common import Claim, ExperimentResult
from repro.metrics.report import format_table
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration

EXPERIMENT_ID = "ablation-model"
TITLE = "Device-model term ablation"


def run(cal: Optional[OptaneCalibration] = None) -> ExperimentResult:
    cal = cal or DEFAULT_CALIBRATION
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, description=__doc__.strip()
    )
    spec_64mb = suite_entry("micro-64mb", 16).spec

    baseline = ExhaustiveTuner(cal=cal).tune(spec_64mb)

    no_mix = ExhaustiveTuner(cal=cal.replace(enable_mix_interference=False)).tune(
        spec_64mb
    )
    no_remote = ExhaustiveTuner(cal=cal.replace(enable_remote_penalty=False)).tune(
        spec_64mb
    )

    rows = []
    for label, report in (
        ("full model", baseline),
        ("no mix interference", no_mix),
        ("no remote penalty", no_remote),
    ):
        makespans = report.comparison.makespans()
        rows.append(
            [label]
            + [f"{makespans[c]:.2f}" for c in ("S-LocW", "S-LocR", "P-LocW", "P-LocR")]
            + [report.comparison.best_label]
        )
    result.artifacts.append(
        format_table(
            ["model variant", "S-LocW", "S-LocR", "P-LocW", "P-LocR", "best"],
            rows,
            title="micro-64mb@16 under model ablations (seconds)",
        )
    )

    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.mix_carries_serial_win",
            description="without mixed interference, parallel wins the 64 MB workflow",
            paper_value="serial wins because co-scheduling contends (§VI-A)",
            measured_value=f"best without mix: {no_mix.comparison.best_label}",
            holds=no_mix.comparison.best_label.startswith("P")
            and baseline.comparison.best_label.startswith("S"),
        )
    )
    locw = no_remote.results["S-LocW"].makespan
    locr = no_remote.results["S-LocR"].makespan
    placement_gap = abs(locw - locr) / max(locw, locr)
    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.remote_carries_placement",
            description="without remote penalties, placement stops mattering",
            paper_value="locality choice impacts I/O performance (§II-A)",
            measured_value=f"S-LocW vs S-LocR gap {placement_gap:.2%} without remote terms",
            holds=placement_gap < 0.01,
        )
    )
    result.data["baseline_best"] = baseline.comparison.best_label
    result.data["no_mix_best"] = no_mix.comparison.best_label
    result.data["no_remote_gap"] = placement_gap
    return result
