"""Figure 4: microbenchmark with 64 MB objects (80/160/240 GB totals).

Paper findings (§VI-A): with moderate (16) and large (24) thread counts,
serial execution with local writes (S-LocW) is the best configuration —
up to 2.5x better than other scenarios.  The workflow is bandwidth bound
(no compute to hide I/O), so remote writes and co-scheduled reads both hurt.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.autotune import TuningReport
from repro.experiments.common import Claim, ExperimentResult, gap_claim
from repro.experiments.family_figure import run_family_figure
from repro.pmem.calibration import OptaneCalibration

EXPERIMENT_ID = "fig04"
TITLE = "Benchmark Writer + Reader with 64MB objects: Runtime"


def _claims(reports: Dict[int, TuningReport]) -> List[Claim]:
    claims: List[Claim] = []
    # "up to 2.5x better than other scenarios" at 16/24 threads: the worst
    # alternative should be >= ~1.5x the S-LocW runtime somewhere.
    worst_ratio = max(
        max(reports[ranks].comparison.normalized.values()) for ranks in (16, 24)
    )
    claims.append(
        gap_claim(
            f"{EXPERIMENT_ID}.worst_case",
            "S-LocW up to ~2.5x better than other scenarios at 16/24 threads",
            paper_gap=1.5,  # 2.5x = +150 %
            measured_gap=worst_ratio - 1.0,
            rel_tolerance=3.0,
            abs_tolerance=0.6,
        )
    )
    return claims


def run(cal: Optional[OptaneCalibration] = None) -> ExperimentResult:
    return run_family_figure(
        EXPERIMENT_ID,
        TITLE,
        __doc__.strip(),
        family="micro-64mb",
        panels=(8, 16, 24),
        extra_claims=_claims,
        cal=cal,
    )
