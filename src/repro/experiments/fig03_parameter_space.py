"""Figure 3: the workflow parameter space.

The paper characterizes its suite along four workload axes — simulation I/O
index, concurrency, object size, analytics I/O index — plus the two
scheduling axes, and argues the suite spans a wide spectrum with a fan-out
of at least two at every axis node (no single parameter determines the
scheduling decision).  We compute the same characterization from the static
feature extractor and verify the fan-out property.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.apps.suite import workflow_suite
from repro.core.features import extract_features
from repro.experiments.common import Claim, ExperimentResult
from repro.metrics.report import format_table
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration

EXPERIMENT_ID = "fig03"
TITLE = "Workflow parameter space"


def run(cal: Optional[OptaneCalibration] = None) -> ExperimentResult:
    cal = cal or DEFAULT_CALIBRATION
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, description=__doc__.strip()
    )
    rows: List[Tuple] = []
    axis_values: Dict[str, set] = defaultdict(set)
    # (sim axis value, analytics axis value) pairs per workflow, for the
    # fan-out check: each observed axis value must recur in >= 2 workflows.
    axis_points: Dict[Tuple[str, str], int] = defaultdict(int)
    for entry in workflow_suite():
        features = extract_features(entry.spec, cal)
        sim_idx = f"{features.sim_io_index:.2f}"
        ana_idx = f"{features.analytics_io_index:.2f}"
        rows.append(
            (
                entry.spec.name,
                sim_idx,
                features.concurrency.value,
                features.object_size.value,
                ana_idx,
                entry.paper_best,
            )
        )
        axis_values["sim_io_index_class"].add(features.sim_write_class.value)
        axis_values["concurrency"].add(features.concurrency.value)
        axis_values["object_size"].add(features.object_size.value)
        axis_values["analytics_io_index_class"].add(
            features.analytics_read_class.value
        )
        for axis, value in (
            ("sim", features.sim_write_class.value),
            ("conc", features.concurrency.value),
            ("size", features.object_size.value),
            ("ana", features.analytics_read_class.value),
        ):
            axis_points[(axis, value)] += 1
    result.artifacts.append(
        format_table(
            [
                "workflow",
                "sim I/O index",
                "concurrency",
                "object size",
                "analytics I/O index",
                "paper config",
            ],
            rows,
            title="Workflow suite parameter characterization",
        )
    )
    result.data["axis_values"] = {k: sorted(v) for k, v in axis_values.items()}
    min_fanout = min(axis_points.values())
    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.fanout",
            description="each node on each axis has a fan-out of at least 2",
            paper_value=">= 2 workflows per axis node",
            measured_value=f"min fan-out {min_fanout}",
            holds=min_fanout >= 2,
        )
    )
    spectrum = len(axis_values["concurrency"]) >= 3 and len(
        axis_values["object_size"]
    ) >= 2
    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.spectrum",
            description="the suite spans a wide spectrum of parameter combinations",
            paper_value="3 concurrency levels, small+large objects, varied I/O indexes",
            measured_value=str({k: len(v) for k, v in axis_values.items()}),
            holds=spectrum,
        )
    )
    return result
