"""Figure 1: motivation — one configuration does not fit a workflow family.

The paper opens by showing two miniAMR workflows (Read-Only vs MatrixMult
analytics) run under two fixed configurations: although the simulation
component is identical, swapping the analytics kernel without adjusting the
configuration loses 1.4-1.6x.  We reproduce it by running both workflows at
16 ranks under each workflow's *other-workflow-optimal* configuration and
normalizing to its own best.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.suite import suite_entry
from repro.core.autotune import ExhaustiveTuner
from repro.experiments.common import Claim, ExperimentResult, gap_claim
from repro.metrics.report import format_table
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration

EXPERIMENT_ID = "fig01"
TITLE = "Performance of miniAMR workflows with different configurations"

RANKS = 16


def run(cal: Optional[OptaneCalibration] = None) -> ExperimentResult:
    cal = cal or DEFAULT_CALIBRATION
    tuner = ExhaustiveTuner(cal=cal)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, description=__doc__.strip()
    )
    reports = {}
    for family in ("miniamr+readonly", "miniamr+matmult"):
        entry = suite_entry(family, RANKS)
        reports[family] = tuner.tune(entry.spec)

    ro = reports["miniamr+readonly"]
    mm = reports["miniamr+matmult"]
    ro_best = ro.comparison.best_label
    mm_best = mm.comparison.best_label

    rows = []
    for family, report in reports.items():
        for config in (ro_best, mm_best):
            normalized = report.comparison.normalized[config]
            rows.append((family, config, f"{report.results[config].makespan:.2f} s", f"{normalized:.2f}x"))
    result.artifacts.append(
        format_table(
            ["workflow", "configuration", "runtime", "vs own best"],
            rows,
            title=f"miniAMR workflows at {RANKS} ranks under each other's best configuration",
        )
    )
    result.data["ro_normalized_under_mm_best"] = ro.comparison.normalized[mm_best]
    result.data["mm_normalized_under_ro_best"] = mm.comparison.normalized[ro_best]

    # The paper's 1.4-1.6x loss when the configuration is not adjusted.
    worst_cross = max(
        ro.comparison.normalized[mm_best], mm.comparison.normalized[ro_best]
    )
    result.claims.append(
        gap_claim(
            f"{EXPERIMENT_ID}.cross_loss",
            "changing the analytics kernel under a fixed configuration "
            "loses 1.4-1.6x",
            paper_gap=0.5,  # 1.5x = +50 %
            measured_gap=worst_cross - 1.0,
            rel_tolerance=1.2,
            abs_tolerance=0.15,
        )
    )
    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.different_best",
            description="the two workflows prefer different configurations",
            paper_value="different optima",
            measured_value=f"{ro_best} vs {mm_best}",
            holds=ro_best != mm_best,
        )
    )
    return result
