"""Headline claim: up to 69-70 % performance swing from configuration choice.

§I: "We demonstrated up to 69 % performance improvement, measured by
end-to-end workflow execution runtime"; §X: "achieved performance can vary
up to 70 % depending on how workflow components are configured".  We
measure, over the full suite, the largest improvement obtained by moving
from the worst to the best configuration (1 - best/worst).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.suite import workflow_suite
from repro.core.autotune import ExhaustiveTuner
from repro.experiments.common import Claim, ExperimentResult, gap_claim
from repro.metrics.report import format_table
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration

EXPERIMENT_ID = "headline"
TITLE = "Maximum configuration-choice impact across the suite"


def run(cal: Optional[OptaneCalibration] = None) -> ExperimentResult:
    cal = cal or DEFAULT_CALIBRATION
    tuner = ExhaustiveTuner(cal=cal)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, description=__doc__.strip()
    )
    rows = []
    best_improvement = 0.0
    app_improvement = 0.0
    for entry in workflow_suite():
        report = tuner.tune(entry.spec)
        makespans = report.comparison.makespans()
        worst = max(makespans.values())
        best = min(makespans.values())
        improvement = 1.0 - best / worst
        best_improvement = max(best_improvement, improvement)
        if not entry.family.startswith("micro"):
            app_improvement = max(app_improvement, improvement)
        rows.append(
            (
                entry.spec.name,
                f"{best:.2f} s",
                f"{worst:.2f} s",
                f"{improvement:.1%}",
            )
        )
    result.artifacts.append(
        format_table(
            ["workflow", "best config", "worst config", "improvement"],
            rows,
            title="Best-vs-worst configuration improvement per workflow",
        )
    )
    result.data["max_improvement"] = best_improvement
    result.data["max_app_improvement"] = app_improvement
    result.claims.append(
        gap_claim(
            f"{EXPERIMENT_ID}.improvement",
            "up to ~69-70 % end-to-end improvement from configuration choice",
            paper_gap=0.69,
            measured_gap=best_improvement,
            rel_tolerance=0.5,
        )
    )
    return result
