"""Figure 10: workflow runtime normalized to the fastest configuration.

The paper's capstone figure: for the four application workflows (GTC and
miniAMR with each analytics kernel) at every concurrency, normalize each
configuration's runtime to that workload's best.  Claims reproduced:

* no single configuration is optimal across workflows;
* keeping GTC's Read-Only-optimal configuration when switching to the
  MatrixMult analytics at 16 threads loses ~24 %;
* misconfiguring miniAMR can cost up to ~70 %.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.suite import CONCURRENCY_LEVELS, suite_entry
from repro.core.autotune import ExhaustiveTuner, TuningReport
from repro.experiments.common import Claim, ExperimentResult, gap_claim
from repro.metrics.report import format_table
from repro.pmem.calibration import DEFAULT_CALIBRATION, OptaneCalibration

EXPERIMENT_ID = "fig10"
TITLE = "Workflow runtime normalized to the fastest configuration"

FAMILIES = (
    "gtc+readonly",
    "gtc+matmult",
    "miniamr+readonly",
    "miniamr+matmult",
)
PANEL_IDS = {"gtc+readonly": "10a", "gtc+matmult": "10b",
             "miniamr+readonly": "10c", "miniamr+matmult": "10d"}
CONFIG_ORDER = ("S-LocW", "S-LocR", "P-LocW", "P-LocR")


def run(cal: Optional[OptaneCalibration] = None) -> ExperimentResult:
    cal = cal or DEFAULT_CALIBRATION
    tuner = ExhaustiveTuner(cal=cal)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, description=__doc__.strip()
    )
    reports: Dict[str, Dict[int, TuningReport]] = {}
    winners = set()
    for family in FAMILIES:
        reports[family] = {}
        rows = []
        for ranks in CONCURRENCY_LEVELS:
            report = tuner.tune(suite_entry(family, ranks).spec)
            reports[family][ranks] = report
            normalized = report.comparison.normalized
            winners.add(report.comparison.best_label)
            rows.append(
                [ranks]
                + [f"{normalized[c]:.2f}" for c in CONFIG_ORDER]
                + [report.comparison.best_label]
            )
            result.data[f"{family}@{ranks}"] = normalized
        result.artifacts.append(
            format_table(
                ["ranks"] + list(CONFIG_ORDER) + ["best"],
                rows,
                title=f"Fig {PANEL_IDS[family]} — {family} (normalized to best)",
            )
        )

    result.claims.append(
        Claim(
            claim_id=f"{EXPERIMENT_ID}.no_single_optimum",
            description="no single configuration is optimal across workflows",
            paper_value=">= 3 distinct winners across the application suite",
            measured_value=", ".join(sorted(winners)),
            holds=len(winners) >= 3,
        )
    )

    # GTC @16: keep the Read-Only winner, switch analytics to MatrixMult.
    ro_best_16 = reports["gtc+readonly"][16].comparison.best_label
    mm_norm = reports["gtc+matmult"][16].comparison.normalized[ro_best_16]
    result.claims.append(
        gap_claim(
            f"{EXPERIMENT_ID}.gtc_swap_loss",
            "keeping GTC+RO's configuration for GTC+MM at 16 threads loses ~24 %",
            paper_gap=0.24,
            measured_gap=mm_norm - 1.0,
            rel_tolerance=1.0,
        )
    )

    # miniAMR misconfiguration: worst normalized runtime across panels.
    worst = max(
        max(reports[f][r].comparison.normalized.values())
        for f in ("miniamr+readonly", "miniamr+matmult")
        for r in CONCURRENCY_LEVELS
    )
    result.claims.append(
        gap_claim(
            f"{EXPERIMENT_ID}.miniamr_misconfig",
            "misconfiguring miniAMR loses up to ~70 %",
            paper_gap=0.70,
            measured_gap=worst - 1.0,
            rel_tolerance=2.5,
        )
    )
    result.data["winners"] = sorted(winners)
    return result
