"""``python -m repro.experiments`` dispatches to the CLI runner."""

import sys

from repro.experiments.runner import main

sys.exit(main())
