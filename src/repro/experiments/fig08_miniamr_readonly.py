"""Figure 8: miniAMR + Read-Only analytics.

Paper findings: small objects with an I/O-heavy simulation.  At 8 threads
parallel wins (P-LocR); at 16 serial local-read wins, ~6 % over the second
best P-LocR (§VI-B); at 24 threads the simulation begins to saturate write
bandwidth and S-LocW is 25 % faster than S-LocR (§VI-A).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.autotune import TuningReport
from repro.experiments.common import Claim, ExperimentResult, gap_claim
from repro.experiments.family_figure import run_family_figure
from repro.metrics.analysis import gap_between
from repro.pmem.calibration import OptaneCalibration

EXPERIMENT_ID = "fig08"
TITLE = "miniAMR + Read only: Runtime"


def _claims(reports: Dict[int, TuningReport]) -> List[Claim]:
    claims: List[Claim] = []
    measured = gap_between(reports[16].results, "S-LocR", "P-LocR")
    claims.append(
        gap_claim(
            f"{EXPERIMENT_ID}.serial_gain.16",
            "S-LocR ~6 % faster than the second best (P-LocR) at 16 threads",
            paper_gap=0.06,
            measured_gap=measured,
            rel_tolerance=2.5,
        )
    )
    measured = gap_between(reports[24].results, "S-LocW", "S-LocR")
    claims.append(
        gap_claim(
            f"{EXPERIMENT_ID}.locw_gain.24",
            "S-LocW 25 % faster than S-LocR at 24 threads",
            paper_gap=0.25,
            measured_gap=measured,
            rel_tolerance=1.0,
        )
    )
    return claims


def run(cal: Optional[OptaneCalibration] = None) -> ExperimentResult:
    return run_family_figure(
        EXPERIMENT_ID,
        TITLE,
        __doc__.strip(),
        family="miniamr+readonly",
        panels=(8, 16, 24),
        extra_claims=_claims,
        cal=cal,
    )
